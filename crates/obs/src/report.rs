//! Trace reduction: per-worker utilization, stall attribution, and an
//! ASCII timeline — the machine-checkable form of the paper's Fig 9.
//!
//! A [`TraceReport`] decomposes every worker's wall time into per-kind
//! work and stall buckets plus an explicit idle remainder, so the buckets
//! sum *exactly* to wall time by construction. [`TraceReport::check`]
//! re-verifies that accounting (±1%) along with the structural span
//! invariants, which is what CI's trace smoke step runs.

use crate::trace::{Trace, TraceKind, ALL_KINDS};

/// One worker's time accounting.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct WorkerReport {
    /// Worker name (`parser-0`, `driver`, `cpu-0`, `gpu-1`, …).
    pub name: String,
    /// Recorded wall time: last span end − first span start, ns.
    pub wall_ns: u64,
    /// Time inside work-kind spans, ns.
    pub busy_ns: u64,
    /// Time inside stall-kind spans, ns.
    pub stall_ns: u64,
    /// Wall time covered by no span at all, ns.
    pub idle_ns: u64,
    /// Per-kind totals in [`ALL_KINDS`] order, ns.
    pub by_kind_ns: [u64; ALL_KINDS.len()],
    /// Number of recorded spans.
    pub spans: usize,
    /// Bytes attributed to work spans.
    pub bytes: u64,
    /// Events lost to ring overflow on this worker.
    pub dropped: u64,
    /// Exact p999 of work-span durations, ns (0 if no work spans). Unlike
    /// the registry histograms this is computed from the raw event
    /// durations, so there is no bucket rounding.
    pub p999_ns: u64,
}

impl WorkerReport {
    /// busy / wall, in `[0, 1]` (0 for an empty worker).
    pub fn utilization(&self) -> f64 {
        if self.wall_ns == 0 {
            0.0
        } else {
            self.busy_ns as f64 / self.wall_ns as f64
        }
    }

    /// The work kind this worker spent the most time in, if any.
    pub fn dominant_kind(&self) -> Option<TraceKind> {
        ALL_KINDS
            .iter()
            .enumerate()
            .filter(|(_, k)| !k.is_stall())
            .max_by_key(|(i, _)| self.by_kind_ns[*i])
            .filter(|(i, _)| self.by_kind_ns[*i] > 0)
            .map(|(_, k)| *k)
    }
}

/// The reduced trace: every worker's accounting plus cross-worker
/// aggregates.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct TraceReport {
    /// Per-worker accounting, in trace order.
    pub workers: Vec<WorkerReport>,
    /// The work kind with the largest total busy time across all workers
    /// — the pipeline's critical stage (the paper's "slowest stage"
    /// bound).
    pub critical_stage: Option<TraceKind>,
    /// Summed busy ns per kind across workers, [`ALL_KINDS`] order.
    pub total_by_kind_ns: [u64; ALL_KINDS.len()],
    /// Peak sampled depth per gauge, `(name, peak)`.
    pub gauge_peaks: Vec<(String, i64)>,
    /// Total events lost to ring overflow.
    pub dropped: u64,
    /// Earliest span start across workers, ns (timeline origin).
    pub t0_ns: u64,
    /// Latest span end across workers, ns.
    pub t1_ns: u64,
}

impl TraceReport {
    /// Reduce a merged trace.
    pub fn from_trace(trace: &Trace) -> TraceReport {
        let mut workers = Vec::with_capacity(trace.workers.len());
        let mut total_by_kind_ns = [0u64; ALL_KINDS.len()];
        let mut t0 = u64::MAX;
        let mut t1 = 0u64;
        for w in &trace.workers {
            let mut r = WorkerReport {
                name: w.name.clone(),
                spans: w.events.len(),
                dropped: w.dropped,
                ..Default::default()
            };
            if let Some((start, end)) = w.lifetime_ns() {
                r.wall_ns = end - start;
                t0 = t0.min(start);
                t1 = t1.max(end);
            }
            let mut work_durs = Vec::new();
            for e in &w.events {
                let slot = ALL_KINDS.iter().position(|k| *k == e.kind).unwrap();
                r.by_kind_ns[slot] += e.dur_ns();
                if e.kind.is_stall() {
                    r.stall_ns += e.dur_ns();
                } else {
                    r.busy_ns += e.dur_ns();
                    r.bytes += e.bytes;
                    total_by_kind_ns[slot] += e.dur_ns();
                    work_durs.push(e.dur_ns());
                }
            }
            if !work_durs.is_empty() {
                work_durs.sort_unstable();
                let rank = ((0.999 * work_durs.len() as f64).ceil() as usize)
                    .clamp(1, work_durs.len());
                r.p999_ns = work_durs[rank - 1];
            }
            // Validated traces have non-overlapping spans, so covered time
            // never exceeds wall and idle is the exact remainder.
            r.idle_ns = r.wall_ns.saturating_sub(r.busy_ns + r.stall_ns);
            workers.push(r);
        }
        let critical_stage = ALL_KINDS
            .iter()
            .enumerate()
            .filter(|(_, k)| !k.is_stall())
            .max_by_key(|(i, _)| total_by_kind_ns[*i])
            .filter(|(i, _)| total_by_kind_ns[*i] > 0)
            .map(|(_, k)| *k);
        let gauge_peaks = trace
            .gauges
            .iter()
            .map(|g| {
                (g.name.clone(), g.samples.iter().map(|(_, v)| *v).max().unwrap_or(0))
            })
            .collect();
        TraceReport {
            workers,
            critical_stage,
            total_by_kind_ns,
            gauge_peaks,
            dropped: trace.dropped,
            t0_ns: if t0 == u64::MAX { 0 } else { t0 },
            t1_ns: t1,
        }
    }

    /// Machine-checkable acceptance: structural validity, every worker
    /// did some work, and each worker's buckets sum to its wall time
    /// within 1%.
    pub fn check(&self, trace: &Trace) -> Result<(), String> {
        trace.validate()?;
        if self.workers.is_empty() {
            return Err("trace has no workers".into());
        }
        for w in &self.workers {
            if w.busy_ns == 0 {
                return Err(format!("worker '{}' recorded no work", w.name));
            }
            let accounted = w.busy_ns + w.stall_ns + w.idle_ns;
            let err = (accounted as f64 - w.wall_ns as f64).abs();
            if w.wall_ns > 0 && err > w.wall_ns as f64 * 0.01 {
                return Err(format!(
                    "worker '{}': busy+stall+idle = {} ns but wall = {} ns",
                    w.name, accounted, w.wall_ns
                ));
            }
        }
        Ok(())
    }

    /// Render the human-readable report: utilization/attribution table,
    /// critical stage, queue peaks, and an ASCII timeline `width` columns
    /// wide.
    pub fn render(&self, trace: &Trace, width: usize) -> String {
        let width = width.clamp(20, 200);
        let mut o = String::new();
        let name_w = self.workers.iter().map(|w| w.name.len()).max().unwrap_or(6).max(6);
        let span_ns = self.t1_ns.saturating_sub(self.t0_ns).max(1);
        o.push_str(&format!(
            "trace: {} workers, {} spans, {:.3} s span{}\n\n",
            self.workers.len(),
            self.workers.iter().map(|w| w.spans).sum::<usize>(),
            span_ns as f64 / 1e9,
            if self.dropped > 0 {
                format!(", {} events dropped", self.dropped)
            } else {
                String::new()
            }
        ));
        o.push_str(&format!(
            "{:<name_w$}  {:>8}  {:>6}  {:>9} {:>9} {:>9} {:>9} {:>9} {:>9}  dominant\n",
            "worker", "wall s", "util%", "work s", "read-wait", "queue-full", "parser-wait",
            "mem-wait", "p999 ms"
        ));
        let col = |ns: u64| format!("{:.3}", ns as f64 / 1e9);
        for w in &self.workers {
            let k = |kind: TraceKind| {
                w.by_kind_ns[ALL_KINDS.iter().position(|x| *x == kind).unwrap()]
            };
            o.push_str(&format!(
                "{:<name_w$}  {:>8}  {:>5.1}%  {:>9} {:>9} {:>10} {:>11} {:>9} {:>9.3}  {}\n",
                w.name,
                col(w.wall_ns),
                w.utilization() * 100.0,
                col(w.busy_ns),
                col(k(TraceKind::DiskWait)),
                col(k(TraceKind::QueueFull)),
                col(k(TraceKind::ParserWait)),
                col(k(TraceKind::MemoryWait)),
                w.p999_ns as f64 / 1e6,
                w.dominant_kind().map(|d| d.label()).unwrap_or("-"),
            ));
        }
        if let Some(c) = self.critical_stage {
            let total =
                self.total_by_kind_ns[ALL_KINDS.iter().position(|x| *x == c).unwrap()];
            o.push_str(&format!(
                "\ncritical stage: {} ({:.3} s total busy across workers)\n",
                c.label(),
                total as f64 / 1e9
            ));
        }
        for (name, peak) in &self.gauge_peaks {
            o.push_str(&format!("queue peak: {name} = {peak}\n"));
        }
        // ASCII timeline: one row per worker, dominant kind per column.
        o.push_str(&format!(
            "\ntimeline ({} columns x {:.1} ms/col):\n",
            width,
            span_ns as f64 / width as f64 / 1e6
        ));
        for (wi, w) in self.workers.iter().enumerate() {
            let events = &trace.workers[wi].events;
            let mut row = String::with_capacity(width);
            for c in 0..width {
                let lo = self.t0_ns + (span_ns as u128 * c as u128 / width as u128) as u64;
                let hi =
                    self.t0_ns + (span_ns as u128 * (c as u128 + 1) / width as u128) as u64;
                // Dominant kind within [lo, hi): most covered ns wins.
                let mut cover = [0u64; ALL_KINDS.len()];
                for e in events {
                    if e.t_start_ns >= hi {
                        break;
                    }
                    let ov = e.t_end_ns.min(hi).saturating_sub(e.t_start_ns.max(lo));
                    if ov > 0 {
                        cover[ALL_KINDS.iter().position(|k| *k == e.kind).unwrap()] += ov;
                    }
                }
                let best = (0..ALL_KINDS.len()).max_by_key(|i| cover[*i]).unwrap();
                row.push(if cover[best] == 0 { '·' } else { ALL_KINDS[best].glyph() });
            }
            o.push_str(&format!("{:<name_w$}  {row}\n", w.name));
        }
        o.push_str(
            "legend: R read  D decompress  P parse  I index  F flush  K checkpoint  \
             C dict_combine  W dict_write  S sample\n        \
             d disk-wait  q queue-full  w parser-wait  m mem-wait  · idle\n",
        );
        o
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::trace::{GpuSpanArgs, TraceEvent, WorkerTrace, NO_ID};

    fn ev(kind: TraceKind, start: u64, end: u64, bytes: u64) -> TraceEvent {
        TraceEvent {
            kind,
            t_start_ns: start,
            t_end_ns: end,
            bytes,
            batch_id: NO_ID,
            trie_lo: NO_ID,
            trie_hi: NO_ID,
            gpu: None,
        }
    }

    fn sample_trace() -> Trace {
        let mut tr = Trace::default();
        tr.workers.push(WorkerTrace {
            name: "parser-0".into(),
            events: vec![
                ev(TraceKind::Read, 0, 300, 1000),
                ev(TraceKind::Parse, 300, 800, 0),
                ev(TraceKind::QueueFull, 800, 1000, 0),
            ],
            dropped: 0,
        });
        tr.workers.push(WorkerTrace {
            name: "driver".into(),
            events: vec![
                ev(TraceKind::ParserWait, 0, 400, 0),
                ev(TraceKind::Index, 400, 900, 0),
            ],
            dropped: 0,
        });
        tr
    }

    #[test]
    fn attribution_sums_to_wall_exactly() {
        let tr = sample_trace();
        let rep = TraceReport::from_trace(&tr);
        for w in &rep.workers {
            assert_eq!(w.busy_ns + w.stall_ns + w.idle_ns, w.wall_ns, "{}", w.name);
        }
        let p = &rep.workers[0];
        assert_eq!(p.wall_ns, 1000);
        assert_eq!(p.busy_ns, 800);
        assert_eq!(p.stall_ns, 200);
        assert_eq!(p.idle_ns, 0);
        assert_eq!(p.bytes, 1000);
        assert!((p.utilization() - 0.8).abs() < 1e-9);
        let d = &rep.workers[1];
        assert_eq!(d.busy_ns, 500);
        assert_eq!(d.stall_ns, 400);
        // p999 over the exact work-span durations: parser [300, 500] and
        // driver [500] both land on 500 ns; stalls are excluded.
        assert_eq!(p.p999_ns, 500);
        assert_eq!(d.p999_ns, 500);
        rep.check(&tr).unwrap();
    }

    #[test]
    fn critical_stage_is_largest_work_kind() {
        let tr = sample_trace();
        let rep = TraceReport::from_trace(&tr);
        // parse 500 vs read 300 vs index 500 — tie broken by kind order is
        // fine, but here index(500) == parse(500); max_by_key keeps the
        // *last* max, which is Index in ALL_KINDS order.
        assert_eq!(rep.critical_stage, Some(TraceKind::Index));
        assert_eq!(rep.workers[1].dominant_kind(), Some(TraceKind::Index));
    }

    #[test]
    fn check_flags_idle_workers() {
        let mut tr = sample_trace();
        tr.workers.push(WorkerTrace {
            name: "gpu-0".into(),
            events: vec![ev(TraceKind::ParserWait, 0, 100, 0)],
            dropped: 0,
        });
        let rep = TraceReport::from_trace(&tr);
        let err = rep.check(&tr).unwrap_err();
        assert!(err.contains("gpu-0"), "{err}");
    }

    #[test]
    fn render_includes_table_timeline_and_legend() {
        let mut tr = sample_trace();
        tr.workers[1].events[1].gpu = Some(GpuSpanArgs::default());
        tr.gauges.push(crate::trace::GaugeTrack {
            name: "queue.parser-0".into(),
            samples: vec![(0, 1), (500, 3), (900, 0)],
        });
        let rep = TraceReport::from_trace(&tr);
        let out = rep.render(&tr, 40);
        assert!(out.contains("parser-0"));
        assert!(out.contains("critical stage: index"));
        assert!(out.contains("queue peak: queue.parser-0 = 3"));
        assert!(out.contains("p999 ms"));
        assert!(out.contains("legend:"));
        // Timeline rows contain work glyphs.
        assert!(out.contains('P') && out.contains('I'), "{out}");
    }
}
