//! Minimal `std::net` HTTP endpoint serving the OpenMetrics exposition.
//!
//! [`MetricsServer::serve`] binds a TCP listener (`127.0.0.1:0` picks a
//! free port — [`MetricsServer::addr`] reports it) and answers every
//! request with a fresh [`crate::openmetrics::render`] of the registry.
//! One accept thread, one connection at a time, no keep-alive: a scraper
//! or `ii top` polls at sub-Hz cadence, so simplicity beats throughput.
//! Dropping the server stops the thread (a self-connection unblocks the
//! blocking `accept`).
//!
//! [`fetch`] is the matching one-shot client used by `ii top` and tests.

use crate::openmetrics;
use crate::Registry;
use std::io::{self, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

/// Content-Type of the exposition responses.
pub const CONTENT_TYPE: &str = "application/openmetrics-text; version=1.0.0; charset=utf-8";

/// A background metrics endpoint bound for the lifetime of a build.
#[derive(Debug)]
pub struct MetricsServer {
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
    handle: Option<JoinHandle<()>>,
}

impl MetricsServer {
    /// Bind `addr` (e.g. `127.0.0.1:9100`, or port `0` for an ephemeral
    /// one) and serve `registry` snapshots until dropped.
    pub fn serve(addr: &str, registry: Arc<Registry>) -> io::Result<MetricsServer> {
        let listener = TcpListener::bind(addr)?;
        let local = listener.local_addr()?;
        let stop = Arc::new(AtomicBool::new(false));
        let thread_stop = Arc::clone(&stop);
        let handle = std::thread::Builder::new().name("ii-metrics".into()).spawn(move || {
            for conn in listener.incoming() {
                if thread_stop.load(Ordering::SeqCst) {
                    break;
                }
                let Ok(mut stream) = conn else { continue };
                let _ = respond(&mut stream, &registry);
            }
        })?;
        Ok(MetricsServer { addr: local, stop, handle: Some(handle) })
    }

    /// The bound address (resolves port `0` requests).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    fn shutdown(&mut self) {
        if self.stop.swap(true, Ordering::SeqCst) {
            return;
        }
        // Unblock the accept loop so the thread notices the stop flag.
        let _ = TcpStream::connect_timeout(&self.addr, Duration::from_millis(200));
        if let Some(h) = self.handle.take() {
            let _ = h.join();
        }
    }
}

impl Drop for MetricsServer {
    fn drop(&mut self) {
        self.shutdown();
    }
}

fn respond(stream: &mut TcpStream, registry: &Registry) -> io::Result<()> {
    stream.set_read_timeout(Some(Duration::from_millis(500)))?;
    stream.set_write_timeout(Some(Duration::from_secs(2)))?;
    // Drain the request line + headers; any path gets the exposition.
    let mut buf = [0u8; 4096];
    let mut req = Vec::new();
    loop {
        match stream.read(&mut buf) {
            Ok(0) => break,
            Ok(n) => {
                req.extend_from_slice(&buf[..n]);
                if req.windows(4).any(|w| w == b"\r\n\r\n") || req.len() > 64 * 1024 {
                    break;
                }
            }
            Err(_) => break,
        }
    }
    let body = openmetrics::render(&registry.snapshot());
    let resp = format!(
        "HTTP/1.1 200 OK\r\nContent-Type: {CONTENT_TYPE}\r\nContent-Length: {}\r\nConnection: close\r\n\r\n{body}",
        body.len()
    );
    stream.write_all(resp.as_bytes())
}

/// One-shot scrape: GET `http://{addr}/metrics` and return the body.
pub fn fetch(addr: &str, timeout: Duration) -> io::Result<String> {
    let sock: SocketAddr = addr
        .parse()
        .map_err(|e| io::Error::new(io::ErrorKind::InvalidInput, format!("bad address '{addr}': {e}")))?;
    let mut stream = TcpStream::connect_timeout(&sock, timeout)?;
    stream.set_read_timeout(Some(timeout))?;
    stream.set_write_timeout(Some(timeout))?;
    stream.write_all(
        format!("GET /metrics HTTP/1.1\r\nHost: {addr}\r\nConnection: close\r\n\r\n").as_bytes(),
    )?;
    let mut raw = String::new();
    stream.read_to_string(&mut raw)?;
    match raw.split_once("\r\n\r\n") {
        Some((head, body)) if head.starts_with("HTTP/1.1 200") => Ok(body.to_string()),
        Some((head, _)) => Err(io::Error::other(format!(
            "unexpected status: {}",
            head.lines().next().unwrap_or("")
        ))),
        None => Err(io::Error::other("malformed HTTP response")),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::openmetrics::{lint, parse};

    #[test]
    fn serves_lintable_exposition_and_stops_cleanly() {
        let registry = Arc::new(Registry::new());
        registry.counter("pipeline.docs").add(7);
        let server = MetricsServer::serve("127.0.0.1:0", Arc::clone(&registry)).expect("bind");
        let addr = server.addr().to_string();
        let body = fetch(&addr, Duration::from_secs(5)).expect("scrape");
        lint(&body).expect("exposition must lint clean");
        let docs = parse(&body)
            .unwrap()
            .into_iter()
            .find(|p| p.name == "ii_counter_total" && p.label("name") == Some("pipeline.docs"))
            .expect("pipeline.docs sample");
        assert_eq!(docs.value, 7.0);

        // A second scrape sees live updates.
        registry.counter("pipeline.docs").add(1);
        let body = fetch(&addr, Duration::from_secs(5)).expect("second scrape");
        assert!(body.contains("ii_counter_total{name=\"pipeline.docs\"} 8"));

        drop(server);
        // Port is released after shutdown: a rebind must succeed.
        let rebind = MetricsServer::serve(&addr, registry);
        assert!(rebind.is_ok(), "rebind after drop failed: {:?}", rebind.err());
    }
}
