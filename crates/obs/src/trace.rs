//! Event-level pipeline tracing (the Fig 9 substrate).
//!
//! The aggregate stage metrics in this crate answer "how much time went to
//! each stage"; they cannot answer *why* a worker was idle or which queue
//! backed up. This module records individual spans — one [`TraceEvent`] per
//! unit of work or wait, per worker — into lock-light per-worker ring
//! buffers, merges them into a [`Trace`], exports Chrome/Perfetto
//! `trace.json`, parses it back, and reduces it to a [`TraceReport`] with
//! per-worker utilization, stall attribution, and an ASCII timeline.
//!
//! Design points:
//! * **Disabled is near-free.** A [`TraceSink`] is an `Option` internally;
//!   with tracing off, `span()` reads no clock and touches no memory beyond
//!   one branch. The `obs_overhead` bench prices this path.
//! * **Lock-light when enabled.** Each worker owns its own buffer; the only
//!   mutex is per-buffer and uncontended (a worker records only into its
//!   own buffer — cross-thread access happens once, at merge time).
//! * **Bounded ring.** Each buffer holds at most `capacity` events; when
//!   full, the oldest event is overwritten and a drop counter ticks, so a
//!   pathological build degrades the timeline's tail instead of memory.

use crate::json::{parse_json, JsonValue};
use std::sync::atomic::{AtomicU64, Ordering::Relaxed};
use std::sync::{Arc, Mutex};
use std::time::Instant;

/// Sentinel for "no batch / no trie range" on a [`TraceEvent`].
pub const NO_ID: u32 = u32::MAX;

/// Tracing knobs carried on the pipeline configuration.
///
/// Excluded from checkpoint config fingerprints by design: tracing never
/// changes index bytes, so a traced build may resume an untraced one.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct TraceConfig {
    /// Record events (default: off).
    pub enabled: bool,
    /// Ring capacity per worker, in events. At ~96 B/event the default
    /// (65536) bounds a worker's buffer to ~6 MB.
    pub capacity_per_worker: usize,
}

impl Default for TraceConfig {
    fn default() -> Self {
        TraceConfig { enabled: false, capacity_per_worker: 65_536 }
    }
}

/// What a span was doing. Work kinds accrue *busy* time; wait kinds accrue
/// *stall* time attributed to a cause (the paper's Fig 9 question: is the
/// pipeline bound by reads, parsing, or indexing?).
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub enum TraceKind {
    /// Serialized disk read (parser, under the disk-scheduler lock).
    Read,
    /// In-memory decompression (parser).
    Decompress,
    /// Container parse + tokenize/stem/stop/regroup (parser).
    Parse,
    /// Indexing a batch (driver span) or a batch slice (cpu-N / gpu-N).
    Index,
    /// Run flush: encoding postings into a run file.
    Flush,
    /// Committing a build checkpoint (driver).
    Checkpoint,
    /// Dictionary combine (driver, end of build).
    DictCombine,
    /// Dictionary serialization (driver, end of build).
    DictWrite,
    /// The sampling pre-pass (driver, before streaming starts).
    Sample,
    /// Stall: waiting for the disk-scheduler lock (waiting-on-read).
    DiskWait,
    /// Stall: producer blocked on a full output buffer (queue-full).
    QueueFull,
    /// Stall: consumer blocked on an empty parser buffer
    /// (waiting-on-parser).
    ParserWait,
    /// Stall: producer blocked on the memory governor's byte-credit gate
    /// (over the `--mem-budget` in-flight allowance).
    MemoryWait,
}

/// Every kind, in rendering order (work first, stalls last).
pub const ALL_KINDS: [TraceKind; 13] = [
    TraceKind::Read,
    TraceKind::Decompress,
    TraceKind::Parse,
    TraceKind::Index,
    TraceKind::Flush,
    TraceKind::Checkpoint,
    TraceKind::DictCombine,
    TraceKind::DictWrite,
    TraceKind::Sample,
    TraceKind::DiskWait,
    TraceKind::QueueFull,
    TraceKind::ParserWait,
    TraceKind::MemoryWait,
];

impl TraceKind {
    /// True for stall kinds (time attributed to a wait cause, not work).
    pub fn is_stall(self) -> bool {
        matches!(
            self,
            TraceKind::DiskWait
                | TraceKind::QueueFull
                | TraceKind::ParserWait
                | TraceKind::MemoryWait
        )
    }

    /// Stable label used in exported traces and reports.
    pub fn label(self) -> &'static str {
        match self {
            TraceKind::Read => "read",
            TraceKind::Decompress => "decompress",
            TraceKind::Parse => "parse",
            TraceKind::Index => "index",
            TraceKind::Flush => "flush",
            TraceKind::Checkpoint => "checkpoint",
            TraceKind::DictCombine => "dict_combine",
            TraceKind::DictWrite => "dict_write",
            TraceKind::Sample => "sample",
            TraceKind::DiskWait => "disk_wait",
            TraceKind::QueueFull => "queue_full",
            TraceKind::ParserWait => "parser_wait",
            TraceKind::MemoryWait => "memory_wait",
        }
    }

    /// Inverse of [`Self::label`].
    pub fn from_label(s: &str) -> Option<TraceKind> {
        ALL_KINDS.iter().copied().find(|k| k.label() == s)
    }

    /// One-character timeline glyph (work upper-case, stalls lower-case).
    pub fn glyph(self) -> char {
        match self {
            TraceKind::Read => 'R',
            TraceKind::Decompress => 'D',
            TraceKind::Parse => 'P',
            TraceKind::Index => 'I',
            TraceKind::Flush => 'F',
            TraceKind::Checkpoint => 'K',
            TraceKind::DictCombine => 'C',
            TraceKind::DictWrite => 'W',
            TraceKind::Sample => 'S',
            TraceKind::DiskWait => 'd',
            TraceKind::QueueFull => 'q',
            TraceKind::ParserWait => 'w',
            TraceKind::MemoryWait => 'm',
        }
    }
}

/// Simulated-kernel counters attached to a GPU indexing span (deltas for
/// that span only, not lifetime totals).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct GpuSpanArgs {
    /// Simulated device nanoseconds for the span's kernel grid.
    pub device_ns: u64,
    /// Simulated PCIe nanoseconds for the span's input upload.
    pub transfer_ns: u64,
    /// Warp-wide key comparisons issued.
    pub warp_comparisons: u64,
    /// Global-memory transactions.
    pub global_transactions: u64,
    /// Bytes moved to/from global memory.
    pub global_bytes: u64,
    /// Warp instructions issued.
    pub instructions: u64,
}

/// One recorded span on one worker's timeline. Times are nanoseconds since
/// the tracer's epoch.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct TraceEvent {
    /// What the worker was doing.
    pub kind: TraceKind,
    /// Span start (ns since epoch).
    pub t_start_ns: u64,
    /// Span end (ns since epoch, `>= t_start_ns`).
    pub t_end_ns: u64,
    /// Payload bytes attributed to the span (0 when not applicable).
    pub bytes: u64,
    /// Batch / container-file id ([`NO_ID`] when not applicable).
    pub batch_id: u32,
    /// Lowest trie slot touched ([`NO_ID`] when not applicable).
    pub trie_lo: u32,
    /// Highest trie slot touched ([`NO_ID`] when not applicable).
    pub trie_hi: u32,
    /// Kernel counters (GPU indexing spans only).
    pub gpu: Option<GpuSpanArgs>,
}

impl TraceEvent {
    /// Span duration in nanoseconds.
    pub fn dur_ns(&self) -> u64 {
        self.t_end_ns.saturating_sub(self.t_start_ns)
    }
}

/// One worker's bounded ring of events. Shared between the worker's
/// [`TraceSink`] (writes) and the [`Tracer`] (merge at end of build).
struct TraceBuffer {
    name: String,
    capacity: usize,
    /// Ring storage + write cursor. The mutex is per-worker and therefore
    /// uncontended on the hot path; merge locks it once at the end.
    ring: Mutex<(Vec<TraceEvent>, usize)>,
    dropped: AtomicU64,
}

impl TraceBuffer {
    fn push(&self, ev: TraceEvent) {
        let mut g = self.ring.lock().unwrap();
        let (ring, cursor) = &mut *g;
        if ring.len() < self.capacity {
            ring.push(ev);
        } else {
            // Overwrite the oldest event (ring semantics): a runaway build
            // keeps the newest `capacity` events and counts what it lost.
            ring[*cursor] = ev;
            *cursor = (*cursor + 1) % self.capacity;
            self.dropped.fetch_add(1, Relaxed);
        }
    }

    /// Events in record order (oldest first even after wrap-around).
    fn drain_ordered(&self) -> (Vec<TraceEvent>, u64) {
        let g = self.ring.lock().unwrap();
        let (ring, cursor) = &*g;
        let mut out = Vec::with_capacity(ring.len());
        out.extend_from_slice(&ring[*cursor..]);
        out.extend_from_slice(&ring[..*cursor]);
        (out, self.dropped.load(Relaxed))
    }
}

/// A sampled gauge series (queue depths): `(t_ns, value)` pairs for one
/// named channel, exported as Chrome counter events.
struct GaugeBuffer {
    name: String,
    capacity: usize,
    samples: Mutex<Vec<(u64, i64)>>,
    dropped: AtomicU64,
}

/// The per-build trace collector. Cloning shares the underlying state;
/// a disabled tracer (the default) makes every operation a no-op.
#[derive(Clone, Default)]
pub struct Tracer {
    inner: Option<Arc<TracerInner>>,
}

struct TracerInner {
    epoch: Instant,
    capacity: usize,
    buffers: Mutex<Vec<Arc<TraceBuffer>>>,
    gauges: Mutex<Vec<Arc<GaugeBuffer>>>,
}

impl Tracer {
    /// A tracer that records nothing (every sink/span is a no-op).
    pub fn disabled() -> Tracer {
        Tracer { inner: None }
    }

    /// An enabled tracer with the given per-worker ring capacity.
    pub fn new(capacity_per_worker: usize) -> Tracer {
        Tracer {
            inner: Some(Arc::new(TracerInner {
                epoch: Instant::now(),
                capacity: capacity_per_worker.max(16),
                buffers: Mutex::new(Vec::new()),
                gauges: Mutex::new(Vec::new()),
            })),
        }
    }

    /// Build a tracer from configuration (disabled config → disabled
    /// tracer).
    pub fn from_config(cfg: &TraceConfig) -> Tracer {
        if cfg.enabled {
            Tracer::new(cfg.capacity_per_worker)
        } else {
            Tracer::disabled()
        }
    }

    /// Whether spans will actually be recorded.
    pub fn is_enabled(&self) -> bool {
        self.inner.is_some()
    }

    /// Register a worker timeline and return its recording handle. Workers
    /// appear in the merged trace in registration order.
    pub fn sink(&self, worker: &str) -> TraceSink {
        match &self.inner {
            None => TraceSink::disabled(),
            Some(inner) => {
                let buf = Arc::new(TraceBuffer {
                    name: worker.to_string(),
                    capacity: inner.capacity,
                    ring: Mutex::new((Vec::new(), 0)),
                    dropped: AtomicU64::new(0),
                });
                inner.buffers.lock().unwrap().push(Arc::clone(&buf));
                TraceSink { shared: Some(SinkShared { epoch: inner.epoch, buf }), heartbeat: None }
            }
        }
    }

    /// Register a sampled gauge series (e.g. one per inter-stage channel).
    pub fn gauge(&self, name: &str) -> GaugeSeries {
        match &self.inner {
            None => GaugeSeries { shared: None },
            Some(inner) => {
                let buf = Arc::new(GaugeBuffer {
                    name: name.to_string(),
                    capacity: inner.capacity,
                    samples: Mutex::new(Vec::new()),
                    dropped: AtomicU64::new(0),
                });
                inner.gauges.lock().unwrap().push(Arc::clone(&buf));
                GaugeSeries { shared: Some(GaugeShared { epoch: inner.epoch, buf }) }
            }
        }
    }

    /// Merge every worker's buffer into a [`Trace`] (`None` when
    /// disabled). Events are sorted by start time per worker; sinks may
    /// keep recording afterwards but those events are lost.
    pub fn finish(&self) -> Option<Trace> {
        let inner = self.inner.as_ref()?;
        let mut workers = Vec::new();
        let mut total_dropped = 0u64;
        for buf in inner.buffers.lock().unwrap().iter() {
            let (mut events, dropped) = buf.drain_ordered();
            events.sort_by_key(|e| (e.t_start_ns, e.t_end_ns));
            total_dropped += dropped;
            workers.push(WorkerTrace { name: buf.name.clone(), events, dropped });
        }
        let mut gauges = Vec::new();
        for buf in inner.gauges.lock().unwrap().iter() {
            let samples = buf.samples.lock().unwrap().clone();
            total_dropped += buf.dropped.load(Relaxed);
            gauges.push(GaugeTrack { name: buf.name.clone(), samples });
        }
        Some(Trace { workers, gauges, dropped: total_dropped })
    }
}

struct SinkShared {
    epoch: Instant,
    buf: Arc<TraceBuffer>,
}

/// One worker's recording handle. Clone-able; clones share the buffer
/// (safe as long as the clones record sequentially, i.e. stay on one
/// logical timeline).
pub struct TraceSink {
    shared: Option<SinkShared>,
    heartbeat: Option<Arc<crate::Heartbeat>>,
}

impl Clone for TraceSink {
    fn clone(&self) -> Self {
        TraceSink {
            shared: self
                .shared
                .as_ref()
                .map(|s| SinkShared { epoch: s.epoch, buf: Arc::clone(&s.buf) }),
            heartbeat: self.heartbeat.clone(),
        }
    }
}

impl Default for TraceSink {
    fn default() -> Self {
        TraceSink::disabled()
    }
}

impl TraceSink {
    /// A sink that records nothing.
    pub fn disabled() -> TraceSink {
        TraceSink { shared: None, heartbeat: None }
    }

    /// Whether spans on this sink are recorded.
    #[inline]
    pub fn is_enabled(&self) -> bool {
        self.shared.is_some()
    }

    /// Attach a liveness beacon: every span opened on the sink (recorded
    /// or not) bumps `hb`, so the existing span instrumentation doubles as
    /// the worker's heartbeat feed. Independent of whether tracing is
    /// enabled.
    pub fn with_heartbeat(mut self, hb: Arc<crate::Heartbeat>) -> TraceSink {
        self.heartbeat = Some(hb);
        self
    }

    /// Bump the attached heartbeat without opening a span. For code that
    /// blocks legitimately inside one long span (e.g. a parser parked on
    /// the memory-credit gate) and must keep proving liveness to the
    /// watchdog without flooding the trace ring.
    #[inline]
    pub fn beat(&self) {
        if let Some(hb) = &self.heartbeat {
            hb.beat();
        }
    }

    /// Open a span of `kind`; recorded into the worker's ring on drop.
    /// Disabled sinks read no clock and record nothing (a sink with no
    /// heartbeat pays only one `Option` check).
    #[inline]
    pub fn span(&self, kind: TraceKind) -> TraceSpan<'_> {
        if let Some(hb) = &self.heartbeat {
            hb.beat();
        }
        let t_start_ns = match &self.shared {
            Some(s) => s.epoch.elapsed().as_nanos() as u64,
            None => 0,
        };
        TraceSpan {
            sink: self,
            kind,
            t_start_ns,
            bytes: 0,
            batch_id: NO_ID,
            trie_lo: NO_ID,
            trie_hi: NO_ID,
            gpu: None,
        }
    }
}

/// Scoped trace span: measures from creation to drop, then records one
/// [`TraceEvent`] on the owning sink's worker timeline.
pub struct TraceSpan<'a> {
    sink: &'a TraceSink,
    kind: TraceKind,
    t_start_ns: u64,
    bytes: u64,
    batch_id: u32,
    trie_lo: u32,
    trie_hi: u32,
    gpu: Option<GpuSpanArgs>,
}

impl TraceSpan<'_> {
    /// Attribute `n` payload bytes to the span.
    #[inline]
    pub fn add_bytes(&mut self, n: u64) {
        self.bytes += n;
    }

    /// Tag the span with a batch / container-file id.
    #[inline]
    pub fn set_batch(&mut self, id: u32) {
        self.batch_id = id;
    }

    /// Tag the span with the trie-slot range it touched.
    #[inline]
    pub fn set_tries(&mut self, lo: u32, hi: u32) {
        self.trie_lo = lo;
        self.trie_hi = hi;
    }

    /// Attach GPU kernel counters (deltas for this span).
    #[inline]
    pub fn set_gpu(&mut self, args: GpuSpanArgs) {
        self.gpu = Some(args);
    }
}

impl Drop for TraceSpan<'_> {
    fn drop(&mut self) {
        if let Some(s) = &self.sink.shared {
            let t_end_ns = s.epoch.elapsed().as_nanos() as u64;
            s.buf.push(TraceEvent {
                kind: self.kind,
                t_start_ns: self.t_start_ns,
                t_end_ns: t_end_ns.max(self.t_start_ns),
                bytes: self.bytes,
                batch_id: self.batch_id,
                trie_lo: self.trie_lo,
                trie_hi: self.trie_hi,
                gpu: self.gpu,
            });
        }
    }
}

struct GaugeShared {
    epoch: Instant,
    buf: Arc<GaugeBuffer>,
}

/// Recording handle for one sampled gauge (queue depth) series.
pub struct GaugeSeries {
    shared: Option<GaugeShared>,
}

impl GaugeSeries {
    /// Record one sample at "now". No-op when tracing is disabled.
    #[inline]
    pub fn sample(&self, value: i64) {
        if let Some(s) = &self.shared {
            let mut samples = s.buf.samples.lock().unwrap();
            if samples.len() < s.buf.capacity {
                samples.push((s.epoch.elapsed().as_nanos() as u64, value));
            } else {
                s.buf.dropped.fetch_add(1, Relaxed);
            }
        }
    }
}

/// One worker's merged timeline.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct WorkerTrace {
    /// Worker name (`parser-0`, `driver`, `cpu-0`, `gpu-1`, …).
    pub name: String,
    /// Spans sorted by start time.
    pub events: Vec<TraceEvent>,
    /// Events overwritten because the ring filled.
    pub dropped: u64,
}

impl WorkerTrace {
    /// `(first start, last end)` of the worker's recorded lifetime, or
    /// `None` with no events.
    pub fn lifetime_ns(&self) -> Option<(u64, u64)> {
        let first = self.events.first()?.t_start_ns;
        let last = self.events.iter().map(|e| e.t_end_ns).max()?;
        Some((first, last))
    }
}

/// One sampled gauge series in a merged trace.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct GaugeTrack {
    /// Series name (`queue.parser-0`, `recycler.pool`, …).
    pub name: String,
    /// `(t_ns, value)` samples in record order.
    pub samples: Vec<(u64, i64)>,
}

/// A merged multi-worker trace: the unit that is exported, re-imported,
/// and reduced to a [`TraceReport`].
#[derive(Clone, Debug, Default, PartialEq)]
pub struct Trace {
    /// Worker timelines in registration order.
    pub workers: Vec<WorkerTrace>,
    /// Sampled gauge series (queue depths).
    pub gauges: Vec<GaugeTrack>,
    /// Total events lost to ring overflow across all workers.
    pub dropped: u64,
}

/// Microsecond timestamp with exact nanosecond precision (Chrome's `ts`
/// unit is µs; three decimals preserve the ns).
fn us(ns: u64) -> String {
    format!("{}.{:03}", ns / 1000, ns % 1000)
}

impl Trace {
    /// Total spans across all workers.
    pub fn num_events(&self) -> usize {
        self.workers.iter().map(|w| w.events.len()).sum()
    }

    /// Render as Chrome/Perfetto `trace.json` (the JSON-object form with a
    /// `traceEvents` array; loads directly in `ui.perfetto.dev` or
    /// `chrome://tracing`).
    pub fn to_chrome_json(&self) -> String {
        let mut o = String::with_capacity(256 + self.num_events() * 160);
        o.push_str("{\"schema_version\": 1, \"displayTimeUnit\": \"ms\",\n\"traceEvents\": [\n");
        o.push_str(
            "{\"ph\":\"M\",\"pid\":1,\"tid\":0,\"name\":\"process_name\",\
             \"args\":{\"name\":\"ii build\"}}",
        );
        for (tid0, w) in self.workers.iter().enumerate() {
            let tid = tid0 + 1;
            o.push_str(&format!(
                ",\n{{\"ph\":\"M\",\"pid\":1,\"tid\":{tid},\"name\":\"thread_name\",\
                 \"args\":{{\"name\":\"{}\",\"dropped\":{}}}}}",
                w.name, w.dropped
            ));
            for e in &w.events {
                o.push_str(&format!(
                    ",\n{{\"ph\":\"X\",\"pid\":1,\"tid\":{tid},\"name\":\"{}\",\"cat\":\"{}\",\
                     \"ts\":{},\"dur\":{},\"args\":{{\"bytes\":{}",
                    e.kind.label(),
                    if e.kind.is_stall() { "stall" } else { "work" },
                    us(e.t_start_ns),
                    us(e.dur_ns()),
                    e.bytes,
                ));
                if e.batch_id != NO_ID {
                    o.push_str(&format!(",\"batch\":{}", e.batch_id));
                }
                if e.trie_lo != NO_ID {
                    o.push_str(&format!(",\"trie_lo\":{},\"trie_hi\":{}", e.trie_lo, e.trie_hi));
                }
                if let Some(g) = &e.gpu {
                    o.push_str(&format!(
                        ",\"gpu_device_ns\":{},\"gpu_transfer_ns\":{},\
                         \"gpu_warp_comparisons\":{},\"gpu_global_transactions\":{},\
                         \"gpu_global_bytes\":{},\"gpu_instructions\":{}",
                        g.device_ns,
                        g.transfer_ns,
                        g.warp_comparisons,
                        g.global_transactions,
                        g.global_bytes,
                        g.instructions
                    ));
                }
                o.push_str("}}");
            }
        }
        for t in &self.gauges {
            for (t_ns, v) in &t.samples {
                o.push_str(&format!(
                    ",\n{{\"ph\":\"C\",\"pid\":1,\"tid\":0,\"name\":\"{}\",\"ts\":{},\
                     \"args\":{{\"depth\":{v}}}}}",
                    t.name,
                    us(*t_ns),
                ));
            }
        }
        o.push_str("\n]}\n");
        o
    }

    /// Parse a Chrome trace produced by [`Self::to_chrome_json`] back into
    /// a `Trace` (the `ii trace report` input path).
    pub fn from_chrome_json(input: &str) -> Result<Trace, String> {
        let doc = parse_json(input)?;
        let events = doc
            .get("traceEvents")
            .and_then(JsonValue::as_arr)
            .ok_or("no traceEvents array")?;
        let ns_of = |v: &JsonValue| -> Option<u64> {
            v.as_f64().map(|us| (us * 1000.0).round() as u64)
        };
        // tid → worker slot, in order of first appearance of thread names.
        let mut workers: Vec<(u64, WorkerTrace)> = Vec::new();
        let mut gauges: Vec<GaugeTrack> = Vec::new();
        let slot_of = |workers: &mut Vec<(u64, WorkerTrace)>, tid: u64| -> usize {
            match workers.iter().position(|(t, _)| *t == tid) {
                Some(i) => i,
                None => {
                    workers.push((tid, WorkerTrace::default()));
                    workers.len() - 1
                }
            }
        };
        for ev in events {
            let ph = ev.get("ph").and_then(JsonValue::as_str).unwrap_or("");
            let tid = ev.get("tid").and_then(JsonValue::as_u64).unwrap_or(0);
            let name = ev.get("name").and_then(JsonValue::as_str).unwrap_or("");
            match ph {
                "M" if name == "thread_name" && tid > 0 => {
                    let slot = slot_of(&mut workers, tid);
                    if let Some(n) = ev.get("args").and_then(|a| a.get("name")) {
                        workers[slot].1.name = n.as_str().unwrap_or("").to_string();
                    }
                    workers[slot].1.dropped = ev
                        .get("args")
                        .and_then(|a| a.get("dropped"))
                        .and_then(JsonValue::as_u64)
                        .unwrap_or(0);
                }
                "X" => {
                    let kind = TraceKind::from_label(name)
                        .ok_or_else(|| format!("unknown span kind '{name}'"))?;
                    let ts = ev.get("ts").and_then(&ns_of).ok_or("span without ts")?;
                    let dur = ev.get("dur").and_then(&ns_of).unwrap_or(0);
                    let args = ev.get("args");
                    let arg_u64 = |key: &str| -> Option<u64> {
                        args.and_then(|a| a.get(key)).and_then(JsonValue::as_u64)
                    };
                    let gpu = if arg_u64("gpu_device_ns").is_some() {
                        Some(GpuSpanArgs {
                            device_ns: arg_u64("gpu_device_ns").unwrap_or(0),
                            transfer_ns: arg_u64("gpu_transfer_ns").unwrap_or(0),
                            warp_comparisons: arg_u64("gpu_warp_comparisons").unwrap_or(0),
                            global_transactions: arg_u64("gpu_global_transactions").unwrap_or(0),
                            global_bytes: arg_u64("gpu_global_bytes").unwrap_or(0),
                            instructions: arg_u64("gpu_instructions").unwrap_or(0),
                        })
                    } else {
                        None
                    };
                    let slot = slot_of(&mut workers, tid);
                    workers[slot].1.events.push(TraceEvent {
                        kind,
                        t_start_ns: ts,
                        t_end_ns: ts + dur,
                        bytes: arg_u64("bytes").unwrap_or(0),
                        batch_id: arg_u64("batch").map_or(NO_ID, |v| v as u32),
                        trie_lo: arg_u64("trie_lo").map_or(NO_ID, |v| v as u32),
                        trie_hi: arg_u64("trie_hi").map_or(NO_ID, |v| v as u32),
                        gpu,
                    });
                }
                "C" => {
                    let ts = ev.get("ts").and_then(&ns_of).ok_or("counter without ts")?;
                    let v = ev
                        .get("args")
                        .and_then(|a| a.get("depth"))
                        .and_then(JsonValue::as_i64)
                        .unwrap_or(0);
                    match gauges.iter_mut().find(|g| g.name == name) {
                        Some(g) => g.samples.push((ts, v)),
                        None => gauges.push(GaugeTrack {
                            name: name.to_string(),
                            samples: vec![(ts, v)],
                        }),
                    }
                }
                _ => {}
            }
        }
        let mut out: Vec<WorkerTrace> = workers.into_iter().map(|(_, w)| w).collect();
        for w in &mut out {
            w.events.sort_by_key(|e| (e.t_start_ns, e.t_end_ns));
        }
        let dropped = out.iter().map(|w| w.dropped).sum();
        Ok(Trace { workers: out, gauges, dropped })
    }

    /// Structural invariants every well-formed trace satisfies: each span
    /// ends no earlier than it starts, nests inside its worker's lifetime,
    /// and no two spans on one worker overlap (half-open intervals — a
    /// span may start exactly where the previous one ended).
    pub fn validate(&self) -> Result<(), String> {
        for w in &self.workers {
            let Some((t0, t1)) = w.lifetime_ns() else { continue };
            let mut prev_end = t0;
            for (i, e) in w.events.iter().enumerate() {
                if e.t_end_ns < e.t_start_ns {
                    return Err(format!("{}: span {i} ends before it starts", w.name));
                }
                if e.t_start_ns < t0 || e.t_end_ns > t1 {
                    return Err(format!("{}: span {i} outside worker lifetime", w.name));
                }
                if e.t_start_ns < prev_end {
                    return Err(format!(
                        "{}: span {i} ({}) overlaps the previous span ({} < {})",
                        w.name,
                        e.kind.label(),
                        e.t_start_ns,
                        prev_end
                    ));
                }
                prev_end = e.t_end_ns;
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(kind: TraceKind, start: u64, end: u64) -> TraceEvent {
        TraceEvent {
            kind,
            t_start_ns: start,
            t_end_ns: end,
            bytes: 0,
            batch_id: NO_ID,
            trie_lo: NO_ID,
            trie_hi: NO_ID,
            gpu: None,
        }
    }

    #[test]
    fn disabled_tracer_records_nothing() {
        let t = Tracer::disabled();
        assert!(!t.is_enabled());
        let sink = t.sink("w");
        {
            let mut s = sink.span(TraceKind::Read);
            s.add_bytes(10);
        }
        t.gauge("q").sample(3);
        assert!(t.finish().is_none());
    }

    #[test]
    fn spans_feed_an_attached_heartbeat() {
        let hb = Arc::new(crate::Heartbeat::new());
        let sink = TraceSink::disabled().with_heartbeat(Arc::clone(&hb));
        assert_eq!(hb.beats(), 0);
        drop(sink.span(TraceKind::Parse));
        drop(sink.span(TraceKind::Read));
        assert_eq!(hb.beats(), 2, "heartbeats flow even with tracing disabled");
    }

    #[test]
    fn spans_record_in_order_with_payload() {
        let t = Tracer::new(64);
        let sink = t.sink("parser-0");
        {
            let mut s = sink.span(TraceKind::Read);
            s.add_bytes(100);
            s.set_batch(7);
        }
        {
            let mut s = sink.span(TraceKind::Index);
            s.set_tries(3, 9);
            s.set_gpu(GpuSpanArgs { device_ns: 42, ..Default::default() });
        }
        let tr = t.finish().unwrap();
        assert_eq!(tr.workers.len(), 1);
        let w = &tr.workers[0];
        assert_eq!(w.name, "parser-0");
        assert_eq!(w.events.len(), 2);
        assert_eq!(w.events[0].kind, TraceKind::Read);
        assert_eq!(w.events[0].bytes, 100);
        assert_eq!(w.events[0].batch_id, 7);
        assert_eq!(w.events[1].trie_lo, 3);
        assert_eq!(w.events[1].gpu.unwrap().device_ns, 42);
        assert!(w.events[0].t_end_ns <= w.events[1].t_start_ns, "sequential spans ordered");
        tr.validate().unwrap();
    }

    #[test]
    fn ring_overwrites_oldest_and_counts_drops() {
        let t = Tracer::new(16);
        let sink = t.sink("w");
        for _ in 0..40 {
            let _ = sink.span(TraceKind::Parse);
        }
        let tr = t.finish().unwrap();
        let w = &tr.workers[0];
        assert_eq!(w.events.len(), 16, "ring keeps exactly capacity");
        assert_eq!(w.dropped, 24);
        assert_eq!(tr.dropped, 24);
        // The survivors are the *newest* events, still in time order.
        assert!(w.events.windows(2).all(|p| p[0].t_start_ns <= p[1].t_start_ns));
        tr.validate().unwrap();
    }

    #[test]
    fn multi_thread_merge_keeps_worker_isolation_and_order() {
        let t = Tracer::new(1024);
        let mut handles = Vec::new();
        for i in 0..4 {
            let sink = t.sink(&format!("worker-{i}"));
            handles.push(std::thread::spawn(move || {
                for _ in 0..50 {
                    let mut s = sink.span(TraceKind::Parse);
                    s.add_bytes(1);
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        let tr = t.finish().unwrap();
        assert_eq!(tr.workers.len(), 4);
        for (i, w) in tr.workers.iter().enumerate() {
            assert_eq!(w.name, format!("worker-{i}"), "registration order preserved");
            assert_eq!(w.events.len(), 50);
            assert!(w.events.windows(2).all(|p| p[0].t_start_ns <= p[1].t_start_ns));
        }
        tr.validate().unwrap();
    }

    #[test]
    fn chrome_json_round_trips() {
        let t = Tracer::new(64);
        let sink = t.sink("driver");
        {
            let mut s = sink.span(TraceKind::Index);
            s.add_bytes(4096);
            s.set_batch(3);
            s.set_tries(0, 100);
            s.set_gpu(GpuSpanArgs {
                device_ns: 123,
                transfer_ns: 456,
                warp_comparisons: 31,
                global_transactions: 2,
                global_bytes: 128,
                instructions: 99,
            });
        }
        { let _ = sink.span(TraceKind::ParserWait); }
        let g = t.gauge("queue.parser-0");
        g.sample(2);
        g.sample(0);
        let tr = t.finish().unwrap();
        let json = tr.to_chrome_json();
        assert!(json.contains("\"traceEvents\""));
        assert!(json.contains("\"cat\":\"stall\""));
        let back = Trace::from_chrome_json(&json).expect("parse back");
        assert_eq!(back, tr, "ns-exact round trip");
    }

    #[test]
    fn validate_rejects_overlap_and_escape() {
        let mut tr = Trace::default();
        tr.workers.push(WorkerTrace {
            name: "w".into(),
            events: vec![ev(TraceKind::Read, 0, 100), ev(TraceKind::Parse, 50, 150)],
            dropped: 0,
        });
        assert!(tr.validate().unwrap_err().contains("overlaps"));
        // Touching spans (end == next start) are fine.
        tr.workers[0].events = vec![ev(TraceKind::Read, 0, 100), ev(TraceKind::Parse, 100, 150)];
        tr.validate().unwrap();
    }
}
