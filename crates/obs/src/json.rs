//! A minimal JSON reader for trace round-trips.
//!
//! `ii-obs` *writes* JSON by hand (snapshots, Chrome traces) and must also
//! *read* Chrome traces back for `ii trace report` — without pulling a
//! serde dependency into the one crate whose contract is "no external
//! dependencies". This is a small recursive-descent parser over the JSON
//! subset the trace writer emits (objects, arrays, strings, f64 numbers,
//! booleans, null); it accepts any well-formed JSON document.

use std::collections::BTreeMap;

/// Append `s` to `out` as a quoted, escaped JSON string — the writer-side
/// twin of this parser, shared with downstream crates that hand-roll JSON
/// (post-mortem bundles) so both sides agree on escaping.
pub fn write_json_str(out: &mut String, s: &str) {
    crate::push_json_str(out, s);
}

/// A parsed JSON value.
#[derive(Clone, Debug, PartialEq)]
pub enum JsonValue {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any JSON number (parsed as `f64`; integers up to 2^53 are exact,
    /// which covers every nanosecond/byte quantity the tracer emits).
    Num(f64),
    /// A string (escapes decoded).
    Str(String),
    /// An array.
    Arr(Vec<JsonValue>),
    /// An object (key order discarded).
    Obj(BTreeMap<String, JsonValue>),
}

impl JsonValue {
    /// Object member lookup (`None` for non-objects / missing keys).
    pub fn get(&self, key: &str) -> Option<&JsonValue> {
        match self {
            JsonValue::Obj(m) => m.get(key),
            _ => None,
        }
    }

    /// The value as `f64` if it is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            JsonValue::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The value as a non-negative integer (rounding the stored `f64`).
    pub fn as_u64(&self) -> Option<u64> {
        self.as_f64().filter(|n| *n >= 0.0).map(|n| n.round() as u64)
    }

    /// The value as a signed integer (rounding the stored `f64`).
    pub fn as_i64(&self) -> Option<i64> {
        self.as_f64().map(|n| n.round() as i64)
    }

    /// The value as a string slice.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            JsonValue::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The value as an array slice.
    pub fn as_arr(&self) -> Option<&[JsonValue]> {
        match self {
            JsonValue::Arr(v) => Some(v),
            _ => None,
        }
    }
}

/// Parse a JSON document. Errors carry the byte offset of the failure.
pub fn parse_json(input: &str) -> Result<JsonValue, String> {
    let mut p = Parser { bytes: input.as_bytes(), pos: 0 };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(format!("trailing data at byte {}", p.pos));
    }
    Ok(v)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while let Some(b) = self.bytes.get(self.pos) {
            if matches!(b, b' ' | b'\t' | b'\n' | b'\r') {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), String> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(format!("expected '{}' at byte {}", b as char, self.pos))
        }
    }

    fn value(&mut self) -> Result<JsonValue, String> {
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(JsonValue::Str(self.string()?)),
            Some(b't') => self.literal("true", JsonValue::Bool(true)),
            Some(b'f') => self.literal("false", JsonValue::Bool(false)),
            Some(b'n') => self.literal("null", JsonValue::Null),
            Some(b'-' | b'0'..=b'9') => self.number(),
            _ => Err(format!("unexpected byte at {}", self.pos)),
        }
    }

    fn literal(&mut self, lit: &str, v: JsonValue) -> Result<JsonValue, String> {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            Ok(v)
        } else {
            Err(format!("bad literal at byte {}", self.pos))
        }
    }

    fn number(&mut self) -> Result<JsonValue, String> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(b'0'..=b'9' | b'.' | b'e' | b'E' | b'+' | b'-')) {
            self.pos += 1;
        }
        std::str::from_utf8(&self.bytes[start..self.pos])
            .ok()
            .and_then(|s| s.parse::<f64>().ok())
            .map(JsonValue::Num)
            .ok_or_else(|| format!("bad number at byte {start}"))
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err("unterminated string".into()),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b't') => out.push('\t'),
                        Some(b'r') => out.push('\r'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .and_then(|h| std::str::from_utf8(h).ok())
                                .and_then(|h| u32::from_str_radix(h, 16).ok())
                                .ok_or_else(|| format!("bad \\u escape at {}", self.pos))?;
                            // Surrogate pairs are not emitted by our writer;
                            // map lone surrogates to the replacement char.
                            out.push(char::from_u32(hex).unwrap_or('\u{fffd}'));
                            self.pos += 4;
                        }
                        _ => return Err(format!("bad escape at byte {}", self.pos)),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Copy one UTF-8 scalar (multi-byte sequences included).
                    let rest = &self.bytes[self.pos..];
                    let s = std::str::from_utf8(rest)
                        .map_err(|_| format!("invalid UTF-8 at byte {}", self.pos))?;
                    let c = s.chars().next().unwrap();
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn array(&mut self) -> Result<JsonValue, String> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(JsonValue::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(JsonValue::Arr(items));
                }
                _ => return Err(format!("expected ',' or ']' at byte {}", self.pos)),
            }
        }
    }

    fn object(&mut self) -> Result<JsonValue, String> {
        self.expect(b'{')?;
        let mut map = BTreeMap::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(JsonValue::Obj(map));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let val = self.value()?;
            map.insert(key, val);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(JsonValue::Obj(map));
                }
                _ => return Err(format!("expected ',' or '}}' at byte {}", self.pos)),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_scalars_and_containers() {
        let v = parse_json(r#"{"a": [1, -2.5, true, null, "x\ny"], "b": {"c": 3}}"#).unwrap();
        assert_eq!(v.get("a").unwrap().as_arr().unwrap()[0].as_u64(), Some(1));
        assert_eq!(v.get("a").unwrap().as_arr().unwrap()[1].as_f64(), Some(-2.5));
        assert_eq!(v.get("a").unwrap().as_arr().unwrap()[2], JsonValue::Bool(true));
        assert_eq!(v.get("a").unwrap().as_arr().unwrap()[3], JsonValue::Null);
        assert_eq!(v.get("a").unwrap().as_arr().unwrap()[4].as_str(), Some("x\ny"));
        assert_eq!(v.get("b").unwrap().get("c").unwrap().as_u64(), Some(3));
    }

    #[test]
    fn rejects_malformed_documents() {
        for bad in ["{", "[1,", "{\"a\" 1}", "tru", "\"unterminated", "1 2"] {
            assert!(parse_json(bad).is_err(), "accepted {bad:?}");
        }
    }

    #[test]
    fn string_escapes_round_trip() {
        let v = parse_json(r#""tab\tquote\"uA""#).unwrap();
        assert_eq!(v.as_str(), Some("tab\tquote\"uA"));
    }

    #[test]
    fn large_integers_survive() {
        // ns timestamps of a multi-hour run stay exact in f64.
        let v = parse_json("123456789012345").unwrap();
        assert_eq!(v.as_u64(), Some(123_456_789_012_345));
    }
}
