//! Variable-byte encoding — the compression the paper applies to postings
//! lists during post-processing ("compress them with variable bytes
//! encoding", §III.E).
//!
//! Little-endian base-128: each byte carries 7 value bits; the high bit is
//! set on the final byte of a value (the classic IR convention).

/// Append the varbyte encoding of `v` to `out`.
pub fn encode_u32(mut v: u32, out: &mut Vec<u8>) {
    loop {
        let byte = (v & 0x7F) as u8;
        v >>= 7;
        if v == 0 {
            out.push(byte | 0x80);
            return;
        }
        out.push(byte);
    }
}

/// Decode one varbyte value from `buf[*pos..]`, advancing `pos`.
/// Returns `None` on truncated input.
pub fn decode_u32(buf: &[u8], pos: &mut usize) -> Option<u32> {
    let mut v = 0u32;
    let mut shift = 0u32;
    loop {
        let &byte = buf.get(*pos)?;
        *pos += 1;
        v |= ((byte & 0x7F) as u32) << shift;
        if byte & 0x80 != 0 {
            return Some(v);
        }
        shift += 7;
        if shift >= 35 {
            return None; // overlong encoding
        }
    }
}

/// Encode a slice of values.
pub fn encode_all(vals: &[u32]) -> Vec<u8> {
    let mut out = Vec::with_capacity(vals.len() * 2);
    for &v in vals {
        encode_u32(v, &mut out);
    }
    out
}

/// Decode exactly `n` values.
pub fn decode_n(buf: &[u8], n: usize) -> Option<Vec<u32>> {
    let mut pos = 0;
    let mut out = Vec::with_capacity(n);
    for _ in 0..n {
        out.push(decode_u32(buf, &mut pos)?);
    }
    Some(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn single_byte_values() {
        for v in [0u32, 1, 127] {
            let mut out = Vec::new();
            encode_u32(v, &mut out);
            assert_eq!(out.len(), 1);
            let mut pos = 0;
            assert_eq!(decode_u32(&out, &mut pos), Some(v));
        }
    }

    #[test]
    fn boundary_values() {
        for v in [128u32, 16_383, 16_384, u32::MAX] {
            let mut out = Vec::new();
            encode_u32(v, &mut out);
            let mut pos = 0;
            assert_eq!(decode_u32(&out, &mut pos), Some(v));
            assert_eq!(pos, out.len());
        }
    }

    #[test]
    fn truncated_is_none() {
        let mut out = Vec::new();
        encode_u32(300, &mut out);
        let mut pos = 0;
        assert_eq!(decode_u32(&out[..1], &mut pos), None);
        assert_eq!(decode_u32(&[], &mut 0), None);
    }

    #[test]
    fn small_gaps_compress_well() {
        // 1000 gaps of 1 must take exactly 1000 bytes.
        let vals = vec![1u32; 1000];
        assert_eq!(encode_all(&vals).len(), 1000);
    }

    proptest! {
        #[test]
        fn prop_roundtrip(vals in proptest::collection::vec(any::<u32>(), 0..200)) {
            let buf = encode_all(&vals);
            prop_assert_eq!(decode_n(&buf, vals.len()).unwrap(), vals);
        }
    }
}
