//! Positional postings — the "possibly other information" of §II.
//!
//! The paper's indexers store `<doc, tf>` postings; Ivory MapReduce, one of
//! the Fig 12 comparators, produces *positional* postings (term offsets
//! within each document) at extra cost. This module implements that
//! extension: per-posting position lists, gap + variable-byte compressed,
//! with phrase-matching support. Positions refer to token ordinals in the
//! parsed document (stop words still advance the ordinal, so proximity is
//! preserved across removed words).

use crate::posting::Posting;
use crate::varbyte;
use ii_corpus::DocId;

/// One positional posting: document plus the sorted in-document token
/// positions of the term. Term frequency is `positions.len()`.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct PositionalPosting {
    /// Global document ID.
    pub doc: DocId,
    /// Sorted token positions of the term within the document.
    pub positions: Vec<u32>,
}

impl PositionalPosting {
    /// Term frequency.
    pub fn tf(&self) -> u32 {
        self.positions.len() as u32
    }

    /// The plain `<doc, tf>` view.
    pub fn to_posting(&self) -> Posting {
        Posting { doc: self.doc, tf: self.tf() }
    }
}

/// A doc-sorted positional postings list.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct PositionalList {
    postings: Vec<PositionalPosting>,
}

impl PositionalList {
    /// Empty list.
    pub fn new() -> Self {
        Self::default()
    }

    /// Record an occurrence of the term at `position` in `doc`. Documents
    /// must arrive in non-decreasing order; positions within a document in
    /// increasing order.
    pub fn add_occurrence(&mut self, doc: DocId, position: u32) {
        match self.postings.last_mut() {
            Some(last) if last.doc == doc => {
                debug_assert!(
                    last.positions.last().is_none_or(|&p| p < position),
                    "positions must increase within a document"
                );
                last.positions.push(position);
            }
            Some(last) => {
                assert!(doc > last.doc, "documents must arrive in order");
                self.postings.push(PositionalPosting { doc, positions: vec![position] });
            }
            None => self.postings.push(PositionalPosting { doc, positions: vec![position] }),
        }
    }

    /// Number of documents.
    pub fn len(&self) -> usize {
        self.postings.len()
    }

    /// True when empty.
    pub fn is_empty(&self) -> bool {
        self.postings.is_empty()
    }

    /// The postings.
    pub fn postings(&self) -> &[PositionalPosting] {
        &self.postings
    }

    /// Encode: per posting, doc gap (+1 for the first), position count,
    /// then gap-coded positions (+1 for the first), all variable-byte.
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::new();
        let mut prev_doc: Option<u32> = None;
        for p in &self.postings {
            let gap = match prev_doc {
                None => p.doc.0 + 1,
                Some(d) => p.doc.0 - d,
            };
            varbyte::encode_u32(gap, &mut out);
            varbyte::encode_u32(p.positions.len() as u32, &mut out);
            let mut prev_pos: Option<u32> = None;
            for &pos in &p.positions {
                let pg = match prev_pos {
                    None => pos + 1,
                    Some(q) => pos - q,
                };
                varbyte::encode_u32(pg, &mut out);
                prev_pos = Some(pos);
            }
            prev_doc = Some(p.doc.0);
        }
        out
    }

    /// Decode `n_docs` postings from `buf`.
    pub fn decode(buf: &[u8], n_docs: usize) -> Option<PositionalList> {
        let mut pos = 0usize;
        let mut out = PositionalList::new();
        let mut prev_doc: Option<u32> = None;
        for _ in 0..n_docs {
            let gap = varbyte::decode_u32(buf, &mut pos)?;
            let doc = match prev_doc {
                None => gap.checked_sub(1)?,
                Some(d) => d.checked_add(gap)?,
            };
            let npos = varbyte::decode_u32(buf, &mut pos)? as usize;
            let mut positions = Vec::with_capacity(npos);
            let mut prev_pos: Option<u32> = None;
            for _ in 0..npos {
                let pg = varbyte::decode_u32(buf, &mut pos)?;
                let p = match prev_pos {
                    None => pg.checked_sub(1)?,
                    Some(q) => q.checked_add(pg)?,
                };
                positions.push(p);
                prev_pos = Some(p);
            }
            if positions.is_empty() {
                return None; // a posting without positions is malformed
            }
            out.postings.push(PositionalPosting { doc: DocId(doc), positions });
            prev_doc = Some(doc);
        }
        Some(out)
    }
}

/// Documents where every list occurs at its given offset from a common
/// start position (`offsets[0]` must be 0). Offsets let phrase queries
/// skip over removed stop words ("statue of liberty" matches with offsets
/// [0, 2] for "statue", "liberty"). Returns matching documents and phrase
/// start positions.
pub fn phrase_matches_with_offsets(
    lists: &[(&PositionalList, u32)],
) -> Vec<(DocId, Vec<u32>)> {
    let Some(((first, first_off), rest)) = lists.split_first() else { return Vec::new() };
    debug_assert_eq!(*first_off, 0, "first term anchors the phrase");
    let mut out = Vec::new();
    'docs: for p0 in first.postings() {
        // All subsequent terms must contain this doc.
        let mut doc_lists = Vec::with_capacity(rest.len());
        for (l, off) in rest {
            match l.postings().binary_search_by_key(&p0.doc, |p| p.doc) {
                Ok(i) => doc_lists.push((&l.postings()[i], *off)),
                Err(_) => continue 'docs,
            }
        }
        let starts: Vec<u32> = p0
            .positions
            .iter()
            .copied()
            .filter(|&start| {
                doc_lists
                    .iter()
                    .all(|(p, off)| p.positions.binary_search(&(start + off)).is_ok())
            })
            .collect();
        if !starts.is_empty() {
            out.push((p0.doc, starts));
        }
    }
    out
}

/// Documents where the terms of `lists` appear as a contiguous phrase:
/// `lists[k]` must occur at `position + k`. Returns matching documents and
/// the start position of each phrase occurrence.
pub fn phrase_matches(lists: &[&PositionalList]) -> Vec<(DocId, Vec<u32>)> {
    let with_offsets: Vec<(&PositionalList, u32)> =
        lists.iter().enumerate().map(|(k, l)| (*l, k as u32)).collect();
    phrase_matches_with_offsets(&with_offsets)
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn list(entries: &[(u32, &[u32])]) -> PositionalList {
        let mut l = PositionalList::new();
        for &(doc, poss) in entries {
            for &p in poss {
                l.add_occurrence(DocId(doc), p);
            }
        }
        l
    }

    #[test]
    fn add_groups_by_doc() {
        let l = list(&[(1, &[0, 4, 9]), (5, &[2])]);
        assert_eq!(l.len(), 2);
        assert_eq!(l.postings()[0].tf(), 3);
        assert_eq!(l.postings()[0].to_posting(), Posting { doc: DocId(1), tf: 3 });
    }

    #[test]
    fn encode_decode_roundtrip() {
        let l = list(&[(0, &[0]), (3, &[1, 2, 100]), (1000, &[7])]);
        let buf = l.encode();
        assert_eq!(PositionalList::decode(&buf, l.len()), Some(l));
    }

    #[test]
    fn truncated_decode_fails() {
        let l = list(&[(2, &[5, 9])]);
        let buf = l.encode();
        assert_eq!(PositionalList::decode(&buf[..buf.len() - 1], 1), None);
    }

    #[test]
    fn phrase_simple() {
        // "new york" in doc 1 at 4-5; "new" alone in doc 2.
        let new = list(&[(1, &[4, 9]), (2, &[0])]);
        let york = list(&[(1, &[5]), (3, &[1])]);
        let m = phrase_matches(&[&new, &york]);
        assert_eq!(m, vec![(DocId(1), vec![4])]);
    }

    #[test]
    fn phrase_three_terms_and_repeats() {
        // "a b a" as a phrase: doc 0 = "a b a b a".
        let a = list(&[(0, &[0, 2, 4])]);
        let b = list(&[(0, &[1, 3])]);
        let m = phrase_matches(&[&a, &b, &a]);
        assert_eq!(m, vec![(DocId(0), vec![0, 2])]);
    }

    #[test]
    fn phrase_single_term_is_all_positions() {
        let a = list(&[(7, &[1, 5])]);
        let m = phrase_matches(&[&a]);
        assert_eq!(m, vec![(DocId(7), vec![1, 5])]);
    }

    #[test]
    fn empty_phrase() {
        assert!(phrase_matches(&[]).is_empty());
    }

    proptest! {
        #[test]
        fn prop_roundtrip(raw in proptest::collection::vec(
            (1u32..500, proptest::collection::vec(1u32..50, 1..8)),
            0..30,
        )) {
            let mut l = PositionalList::new();
            let mut doc = 0u32;
            for (dgap, pgaps) in raw {
                doc += dgap;
                let mut pos = 0u32;
                for pg in pgaps {
                    pos += pg;
                    l.add_occurrence(DocId(doc), pos);
                }
            }
            let buf = l.encode();
            prop_assert_eq!(PositionalList::decode(&buf, l.len()), Some(l));
        }
    }
}
