//! # ii-postings — postings lists, compression codecs and run files
//!
//! The output side of the indexing system: doc-sorted postings lists,
//! gap compression (variable-byte as in the paper, Elias γ and Golomb for
//! the codec ablation, plus the modern block codecs — BP128 bitpacking,
//! PForDelta and Elias-Fano — in a fixed 128-document block layout with
//! per-list skip tables and block-max metadata), the per-run output file
//! format with its header mapping table (§III.F), skip-pointer cursors,
//! range-narrowed retrieval, and the block-aligned post-processing merge
//! of partial lists.

#![warn(missing_docs)]

pub mod bits;
pub mod block;
pub mod codec;
pub mod cursor;
pub mod merge;
pub mod positional;
pub mod posting;
pub mod run;
pub mod varbyte;

pub use block::{BlockedList, EncodedList, ListEncoder, SkipEntry, BLOCK_LEN, SKIP_ENTRY_BYTES};
pub use codec::{codec_for, decode, encode, Codec, CodecError, LONG_LIST_MIN, SHORT_LIST_MAX};
pub use cursor::{ListCursor, RunCursor, SetCursor};
pub use merge::merge_runs;
pub use positional::{phrase_matches, phrase_matches_with_offsets, PositionalList, PositionalPosting};
pub use posting::{Posting, PostingsList};
pub use run::{
    parse_run_artifact_name, run_artifact_name, RunEntry, RunFile, RunFormat, RunSet,
};
