//! # ii-postings — postings lists, compression codecs and run files
//!
//! The output side of the indexing system: doc-sorted postings lists,
//! gap compression (variable-byte as in the paper, plus Elias γ and Golomb
//! for the codec ablation), the per-run output file format with its header
//! mapping table (§III.F), range-narrowed retrieval, and the optional
//! post-processing merge of partial lists.

#![warn(missing_docs)]

pub mod bits;
pub mod codec;
pub mod merge;
pub mod positional;
pub mod posting;
pub mod run;
pub mod varbyte;

pub use codec::{decode, encode, Codec};
pub use merge::merge_runs;
pub use positional::{phrase_matches, phrase_matches_with_offsets, PositionalList, PositionalPosting};
pub use posting::{Posting, PostingsList};
pub use run::{parse_run_artifact_name, run_artifact_name, RunEntry, RunFile, RunSet};
