//! Gap-coded postings compression.
//!
//! Document IDs are stored as gaps from their predecessor (the lists are
//! doc-sorted), then compressed with one of the supported codecs. Three
//! generations coexist:
//!
//! * **Legacy whole-list codecs** — variable-byte (what the paper itself
//!   uses in post-processing), Elias γ and Golomb. These encode the entire
//!   list as one stream with a `first_doc + 1` leading pseudo-gap and are
//!   kept for opening pre-block-layout indexes and for the codec ablation.
//! * **Block codecs** — BP128-style bitpacking, PForDelta and Elias-Fano,
//!   always laid out in fixed 128-document blocks with a per-list skip
//!   table (see [`crate::block`]). [`Codec::VarByte`] also has a blocked
//!   form when used inside the block layout.
//! * **[`Codec::Auto`]** — the per-length-class default policy measured by
//!   the `codec_frontier` bench: short lists → varbyte, medium → PForDelta,
//!   long → Elias-Fano.

use crate::bits::{
    gamma_decode, gamma_encode, golomb_decode, golomb_encode, BitReader, BitWriter,
};
use crate::block;
use crate::posting::Posting;
use crate::varbyte;
use ii_corpus::DocId;

/// Which gap compressor to use.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Codec {
    /// Variable-byte (paper's choice). Whole-list when legacy, blocked
    /// inside the block layout.
    VarByte,
    /// Elias γ.
    Gamma,
    /// Golomb with the given parameter (use
    /// [`crate::bits::golomb_parameter`]).
    Golomb(u64),
    /// 128-integer block bitpacking: one bit width per block, word-level
    /// pack/unpack.
    Bp128,
    /// PForDelta: packed low bits plus a patched exception list per block.
    PFor,
    /// Elias-Fano: high bits in unary, low bits packed; supports in-block
    /// skipping without sequential decode.
    EliasFano,
    /// Per-length-class policy: resolves to [`Codec::VarByte`] /
    /// [`Codec::PFor`] / [`Codec::Bp128`] by document frequency.
    Auto,
}

/// Lists shorter than this stay variable-byte under [`Codec::Auto`] — the
/// skip table dominates and byte-aligned decode is already cheap.
pub const SHORT_LIST_MAX: usize = 128;

/// Lists at least this long get BP128 under [`Codec::Auto`] — decode
/// throughput binds on long lists and per-block bitpacking decodes
/// fastest on the measured frontier (BENCH_codecs.json). Elias-Fano
/// stays available for skip-dominated access patterns, but its select
/// loop loses to branch-free unpacking on sequential scans.
pub const LONG_LIST_MIN: usize = 4096;

/// The measured-frontier default policy for a list of `n` postings.
pub fn codec_for(n: usize) -> Codec {
    if n < SHORT_LIST_MAX {
        Codec::VarByte
    } else if n >= LONG_LIST_MIN {
        Codec::Bp128
    } else {
        Codec::PFor
    }
}

impl Codec {
    /// Resolve [`Codec::Auto`] to a concrete codec for an `n`-posting list;
    /// concrete codecs resolve to themselves.
    pub fn resolve(self, n: usize) -> Codec {
        match self {
            Codec::Auto => codec_for(n),
            c => c,
        }
    }

    /// True for codecs that only exist in the 128-document block layout.
    pub fn is_blocked(self) -> bool {
        matches!(self, Codec::Bp128 | Codec::PFor | Codec::EliasFano | Codec::Auto)
    }
}

/// Why a postings decode failed. Every variant is a property of the input
/// bytes, not of the caller: a [`CodecError`] from committed data means the
/// artifact is corrupt.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum CodecError {
    /// The buffer ended before `n` postings were decoded.
    Truncated,
    /// A per-block bit width exceeded 32 (hostile or corrupt header).
    BadBitWidth(u8),
    /// A PForDelta exception slot pointed past the end of its block.
    ExceptionOverflow {
        /// The exception's claimed slot.
        index: u8,
        /// Number of values actually in the block.
        block_len: u8,
    },
    /// Decoded document IDs were not strictly increasing (e.g. a zero gap:
    /// all-equal docIDs are invalid postings).
    NonMonotone,
    /// A decoded document ID or term frequency overflowed `u32`.
    Overflow,
    /// The claimed posting count is impossibly large for the buffer — the
    /// allocation guard against hostile length headers.
    AllocGuard {
        /// Postings claimed by the header.
        claimed: usize,
        /// Most postings the buffer could possibly hold.
        max: usize,
    },
    /// Structurally invalid input (bad skip offsets, trailing bytes, ...).
    Malformed(&'static str),
}

impl std::fmt::Display for CodecError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CodecError::Truncated => write!(f, "postings buffer truncated"),
            CodecError::BadBitWidth(w) => write!(f, "bit width {w} exceeds 32"),
            CodecError::ExceptionOverflow { index, block_len } => {
                write!(f, "PFor exception slot {index} outside block of {block_len}")
            }
            CodecError::NonMonotone => write!(f, "document IDs not strictly increasing"),
            CodecError::Overflow => write!(f, "decoded value overflows u32"),
            CodecError::AllocGuard { claimed, max } => {
                write!(f, "claimed {claimed} postings but buffer holds at most {max}")
            }
            CodecError::Malformed(what) => write!(f, "malformed postings: {what}"),
        }
    }
}

impl std::error::Error for CodecError {}

/// Most postings `len` bytes could possibly hold, with slack: the densest
/// layout (blocked width-0/width-0 BP128) stores 128 postings in 2 bytes of
/// block body plus a 12-byte skip entry. Used to reject hostile length
/// headers before allocating.
pub fn max_plausible_postings(len: usize) -> usize {
    len * 10 + block::BLOCK_LEN
}

/// Reject a claimed posting count that could not fit in `buf` (allocation
/// guard for hostile length headers).
pub fn check_alloc(buf: &[u8], n: usize) -> Result<(), CodecError> {
    let max = max_plausible_postings(buf.len());
    if n > max {
        return Err(CodecError::AllocGuard { claimed: n, max });
    }
    Ok(())
}

/// Encode a postings list with `codec`.
///
/// Legacy codecs (varbyte/γ/Golomb) produce the whole-list stream: doc gaps
/// (first doc + 1 as the first "gap") and term frequencies interleaved per
/// posting, all encoded values >= 1 as γ and Golomb require. Block codecs
/// (and [`Codec::Auto`]) produce the 128-document block layout of
/// [`crate::block::encode_list`], skip table included.
pub fn encode(list: &[Posting], codec: Codec) -> Vec<u8> {
    match codec {
        Codec::VarByte => {
            let mut out = Vec::with_capacity(list.len() * 3);
            let mut prev: Option<u32> = None;
            for p in list {
                let gap = match prev {
                    None => p.doc.0 + 1,
                    Some(d) => p.doc.0 - d,
                };
                varbyte::encode_u32(gap, &mut out);
                varbyte::encode_u32(p.tf, &mut out);
                prev = Some(p.doc.0);
            }
            out
        }
        Codec::Gamma => {
            let mut w = BitWriter::new();
            let mut prev: Option<u32> = None;
            for p in list {
                let gap = match prev {
                    None => p.doc.0 as u64 + 1,
                    Some(d) => (p.doc.0 - d) as u64,
                };
                gamma_encode(gap, &mut w);
                gamma_encode(p.tf as u64, &mut w);
                prev = Some(p.doc.0);
            }
            w.finish()
        }
        Codec::Golomb(b) => {
            let mut w = BitWriter::new();
            let mut prev: Option<u32> = None;
            for p in list {
                let gap = match prev {
                    None => p.doc.0 as u64 + 1,
                    Some(d) => (p.doc.0 - d) as u64,
                };
                golomb_encode(gap, b, &mut w);
                gamma_encode(p.tf as u64, &mut w);
                prev = Some(p.doc.0);
            }
            w.finish()
        }
        Codec::Bp128 | Codec::PFor | Codec::EliasFano | Codec::Auto => {
            block::encode_list(list, codec).bytes
        }
    }
}

/// Decode `n` postings encoded by [`encode`] with the same codec.
pub fn decode(buf: &[u8], n: usize, codec: Codec) -> Result<Vec<Posting>, CodecError> {
    check_alloc(buf, n)?;
    let mut out = Vec::with_capacity(n);
    match codec {
        Codec::VarByte => {
            let mut pos = 0usize;
            let mut prev: Option<u32> = None;
            for _ in 0..n {
                let gap = varbyte::decode_u32(buf, &mut pos).ok_or(CodecError::Truncated)?;
                let tf = varbyte::decode_u32(buf, &mut pos).ok_or(CodecError::Truncated)?;
                let doc = match prev {
                    None => gap.checked_sub(1).ok_or(CodecError::Malformed("zero first gap"))?,
                    Some(d) => {
                        if gap == 0 {
                            return Err(CodecError::NonMonotone);
                        }
                        d.checked_add(gap).ok_or(CodecError::Overflow)?
                    }
                };
                out.push(Posting { doc: DocId(doc), tf });
                prev = Some(doc);
            }
        }
        Codec::Gamma => {
            let mut r = BitReader::new(buf);
            let mut prev: Option<u32> = None;
            for _ in 0..n {
                let gap = gamma_decode(&mut r).ok_or(CodecError::Truncated)?;
                let tf = gamma_decode(&mut r).ok_or(CodecError::Truncated)?;
                let tf = u32::try_from(tf).map_err(|_| CodecError::Overflow)?;
                let doc = legacy_bit_gap(prev, gap)?;
                out.push(Posting { doc: DocId(doc), tf });
                prev = Some(doc);
            }
        }
        Codec::Golomb(b) => {
            let mut r = BitReader::new(buf);
            let mut prev: Option<u32> = None;
            for _ in 0..n {
                let gap = golomb_decode(b, &mut r).ok_or(CodecError::Truncated)?;
                let tf = gamma_decode(&mut r).ok_or(CodecError::Truncated)?;
                let tf = u32::try_from(tf).map_err(|_| CodecError::Overflow)?;
                let doc = legacy_bit_gap(prev, gap)?;
                out.push(Posting { doc: DocId(doc), tf });
                prev = Some(doc);
            }
        }
        Codec::Bp128 | Codec::PFor | Codec::EliasFano | Codec::Auto => {
            return block::decode_list(buf, n, codec);
        }
    }
    Ok(out)
}

/// Apply one legacy γ/Golomb gap (first gap is `doc + 1`).
fn legacy_bit_gap(prev: Option<u32>, gap: u64) -> Result<u32, CodecError> {
    match prev {
        None => u32::try_from(gap - 1).map_err(|_| CodecError::Overflow),
        Some(d) => {
            let gap = u32::try_from(gap).map_err(|_| CodecError::Overflow)?;
            // γ/Golomb values are >= 1 by construction, so gaps cannot be
            // zero here; monotonicity holds when the add doesn't overflow.
            d.checked_add(gap).ok_or(CodecError::Overflow)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn mklist(docs: &[(u32, u32)]) -> Vec<Posting> {
        docs.iter().map(|&(d, tf)| Posting { doc: DocId(d), tf }).collect()
    }

    const ALL: [Codec; 7] = [
        Codec::VarByte,
        Codec::Gamma,
        Codec::Golomb(16),
        Codec::Bp128,
        Codec::PFor,
        Codec::EliasFano,
        Codec::Auto,
    ];

    #[test]
    fn roundtrip_all_codecs() {
        let list = mklist(&[(0, 3), (1, 1), (7, 2), (100, 9), (10_000, 1)]);
        for codec in ALL {
            let buf = encode(&list, codec);
            assert_eq!(decode(&buf, list.len(), codec).as_deref(), Ok(&list[..]), "{codec:?}");
        }
    }

    #[test]
    fn empty_list() {
        for codec in ALL {
            let buf = encode(&[], codec);
            assert_eq!(decode(&buf, 0, codec), Ok(vec![]), "{codec:?}");
        }
    }

    #[test]
    fn doc_zero_survives() {
        // The +1 shift must make doc 0 encodable for γ/Golomb.
        let list = mklist(&[(0, 1)]);
        for codec in ALL {
            assert_eq!(decode(&encode(&list, codec), 1, codec).as_deref(), Ok(&list[..]));
        }
    }

    #[test]
    fn dense_lists_compress() {
        // Every doc contains the term: gaps of 1 → ~2 bytes/posting vbyte,
        // ~2 bits/posting gamma.
        let list: Vec<Posting> = (0..1000).map(|d| Posting { doc: DocId(d), tf: 1 }).collect();
        let vb = encode(&list, Codec::VarByte);
        assert_eq!(vb.len(), 2000);
        let g = encode(&list, Codec::Gamma);
        assert!(g.len() < 500, "gamma on unit gaps should be tiny, got {}", g.len());
        // Blocked unit gaps pack at width 0: skip table + headers only.
        let bp = encode(&list, Codec::Bp128);
        assert!(bp.len() < 200, "bp128 on unit gaps should be tiny, got {}", bp.len());
        let ef = encode(&list, Codec::EliasFano);
        assert!(ef.len() < 400, "elias-fano on unit gaps should be tiny, got {}", ef.len());
    }

    #[test]
    fn truncation_detected() {
        let list = mklist(&[(5, 2), (9, 1)]);
        for codec in [Codec::VarByte, Codec::Gamma, Codec::Golomb(3)] {
            let buf = encode(&list, codec);
            assert!(decode(&buf[..buf.len() - 1], 5, codec).is_err(), "{codec:?}");
        }
        for codec in [Codec::Bp128, Codec::PFor, Codec::EliasFano] {
            let buf = encode(&list, codec);
            assert!(decode(&buf[..buf.len() - 1], 2, codec).is_err(), "{codec:?}");
        }
    }

    #[test]
    fn zero_gap_rejected() {
        // A hand-built varbyte stream with a zero gap (all-equal docIDs)
        // must be rejected, not silently decoded as duplicates.
        let mut buf = Vec::new();
        varbyte::encode_u32(6, &mut buf); // first doc = 5
        varbyte::encode_u32(1, &mut buf);
        varbyte::encode_u32(0, &mut buf); // zero gap: doc 5 again
        varbyte::encode_u32(1, &mut buf);
        assert_eq!(decode(&buf, 2, Codec::VarByte), Err(CodecError::NonMonotone));
    }

    #[test]
    fn alloc_guard_rejects_hostile_count() {
        let buf = [0u8; 8];
        let err = decode(&buf, usize::MAX / 2, Codec::VarByte).unwrap_err();
        assert!(matches!(err, CodecError::AllocGuard { .. }), "{err:?}");
        let err = decode(&buf, 1 << 30, Codec::Auto).unwrap_err();
        assert!(matches!(err, CodecError::AllocGuard { .. }), "{err:?}");
    }

    #[test]
    fn policy_classes() {
        assert_eq!(codec_for(1), Codec::VarByte);
        assert_eq!(codec_for(SHORT_LIST_MAX - 1), Codec::VarByte);
        assert_eq!(codec_for(SHORT_LIST_MAX), Codec::PFor);
        assert_eq!(codec_for(LONG_LIST_MIN - 1), Codec::PFor);
        assert_eq!(codec_for(LONG_LIST_MIN), Codec::Bp128);
        assert_eq!(Codec::Auto.resolve(10), Codec::VarByte);
        assert_eq!(Codec::Gamma.resolve(10), Codec::Gamma);
    }

    proptest! {
        #[test]
        fn prop_roundtrip(raw in proptest::collection::vec((1u32..5000, 1u32..50), 0..200)) {
            // Build strictly increasing doc ids from gaps.
            let mut doc = 0u32;
            let mut list = Vec::new();
            for (gap, tf) in raw {
                doc += gap;
                list.push(Posting { doc: DocId(doc), tf });
            }
            for codec in ALL {
                let buf = encode(&list, codec);
                let back = decode(&buf, list.len(), codec);
                prop_assert_eq!(back.as_deref(), Ok(&list[..]));
            }
        }
    }
}
