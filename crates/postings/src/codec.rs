//! Gap-coded postings compression.
//!
//! Document IDs are stored as gaps from their predecessor (the lists are
//! doc-sorted), then compressed with one of the codecs from the paper's
//! background section. The production path is variable-byte (what the paper
//! itself uses in post-processing); γ and Golomb exist for the codec
//! ablation bench.

use crate::bits::{
    gamma_decode, gamma_encode, golomb_decode, golomb_encode, golomb_parameter, BitReader,
    BitWriter,
};
use crate::posting::{Posting, PostingsList};
use crate::varbyte;
use ii_corpus::DocId;

/// Which gap compressor to use.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Codec {
    /// Variable-byte (paper's choice).
    VarByte,
    /// Elias γ.
    Gamma,
    /// Golomb with the given parameter (use [`golomb_parameter`]).
    Golomb(u64),
}

/// Encode a postings list: doc gaps (first doc + 1 as the first "gap") and
/// term frequencies, interleaved per posting. All encoded values are >= 1,
/// as γ and Golomb require.
pub fn encode(list: &[Posting], codec: Codec) -> Vec<u8> {
    match codec {
        Codec::VarByte => {
            let mut out = Vec::with_capacity(list.len() * 3);
            let mut prev: Option<u32> = None;
            for p in list {
                let gap = match prev {
                    None => p.doc.0 + 1,
                    Some(d) => p.doc.0 - d,
                };
                varbyte::encode_u32(gap, &mut out);
                varbyte::encode_u32(p.tf, &mut out);
                prev = Some(p.doc.0);
            }
            out
        }
        Codec::Gamma => {
            let mut w = BitWriter::new();
            let mut prev: Option<u32> = None;
            for p in list {
                let gap = match prev {
                    None => p.doc.0 as u64 + 1,
                    Some(d) => (p.doc.0 - d) as u64,
                };
                gamma_encode(gap, &mut w);
                gamma_encode(p.tf as u64, &mut w);
                prev = Some(p.doc.0);
            }
            w.finish()
        }
        Codec::Golomb(b) => {
            let mut w = BitWriter::new();
            let mut prev: Option<u32> = None;
            for p in list {
                let gap = match prev {
                    None => p.doc.0 as u64 + 1,
                    Some(d) => (p.doc.0 - d) as u64,
                };
                golomb_encode(gap, b, &mut w);
                gamma_encode(p.tf as u64, &mut w);
                prev = Some(p.doc.0);
            }
            w.finish()
        }
    }
}

/// Decode `n` postings encoded by [`encode`].
pub fn decode(buf: &[u8], n: usize, codec: Codec) -> Option<Vec<Posting>> {
    let mut out = Vec::with_capacity(n);
    match codec {
        Codec::VarByte => {
            let mut pos = 0usize;
            let mut prev: Option<u32> = None;
            for _ in 0..n {
                let gap = varbyte::decode_u32(buf, &mut pos)?;
                let tf = varbyte::decode_u32(buf, &mut pos)?;
                let doc = match prev {
                    None => gap.checked_sub(1)?,
                    Some(d) => d.checked_add(gap)?,
                };
                out.push(Posting { doc: DocId(doc), tf });
                prev = Some(doc);
            }
        }
        Codec::Gamma => {
            let mut r = BitReader::new(buf);
            let mut prev: Option<u32> = None;
            for _ in 0..n {
                let gap = gamma_decode(&mut r)?;
                let tf = gamma_decode(&mut r)? as u32;
                let doc = match prev {
                    None => (gap - 1) as u32,
                    Some(d) => d + gap as u32,
                };
                out.push(Posting { doc: DocId(doc), tf });
                prev = Some(doc);
            }
        }
        Codec::Golomb(b) => {
            let mut r = BitReader::new(buf);
            let mut prev: Option<u32> = None;
            for _ in 0..n {
                let gap = golomb_decode(b, &mut r)?;
                let tf = gamma_decode(&mut r)? as u32;
                let doc = match prev {
                    None => (gap - 1) as u32,
                    Some(d) => d + gap as u32,
                };
                out.push(Posting { doc: DocId(doc), tf });
                prev = Some(doc);
            }
        }
    }
    Some(out)
}

/// Pick a reasonable Golomb codec for a list given the collection size.
pub fn golomb_for(list: &PostingsList, total_docs: u64) -> Codec {
    Codec::Golomb(golomb_parameter(total_docs, list.len() as u64))
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn mklist(docs: &[(u32, u32)]) -> Vec<Posting> {
        docs.iter().map(|&(d, tf)| Posting { doc: DocId(d), tf }).collect()
    }

    #[test]
    fn roundtrip_all_codecs() {
        let list = mklist(&[(0, 3), (1, 1), (7, 2), (100, 9), (10_000, 1)]);
        for codec in [Codec::VarByte, Codec::Gamma, Codec::Golomb(16)] {
            let buf = encode(&list, codec);
            assert_eq!(decode(&buf, list.len(), codec), Some(list.clone()), "{codec:?}");
        }
    }

    #[test]
    fn empty_list() {
        for codec in [Codec::VarByte, Codec::Gamma, Codec::Golomb(4)] {
            let buf = encode(&[], codec);
            assert_eq!(decode(&buf, 0, codec), Some(vec![]));
        }
    }

    #[test]
    fn doc_zero_survives() {
        // The +1 shift must make doc 0 encodable for γ/Golomb.
        let list = mklist(&[(0, 1)]);
        for codec in [Codec::VarByte, Codec::Gamma, Codec::Golomb(2)] {
            assert_eq!(decode(&encode(&list, codec), 1, codec), Some(list.clone()));
        }
    }

    #[test]
    fn dense_lists_compress() {
        // Every doc contains the term: gaps of 1 → ~2 bytes/posting vbyte,
        // ~2 bits/posting gamma.
        let list: Vec<Posting> = (0..1000).map(|d| Posting { doc: DocId(d), tf: 1 }).collect();
        let vb = encode(&list, Codec::VarByte);
        assert_eq!(vb.len(), 2000);
        let g = encode(&list, Codec::Gamma);
        assert!(g.len() < 500, "gamma on unit gaps should be tiny, got {}", g.len());
    }

    #[test]
    fn truncation_detected() {
        let list = mklist(&[(5, 2), (9, 1)]);
        for codec in [Codec::VarByte, Codec::Gamma, Codec::Golomb(3)] {
            let buf = encode(&list, codec);
            assert_eq!(decode(&buf[..buf.len() - 1], 5, codec), None, "{codec:?}");
        }
    }

    proptest! {
        #[test]
        fn prop_roundtrip(raw in proptest::collection::vec((1u32..5000, 1u32..50), 0..200)) {
            // Build strictly increasing doc ids from gaps.
            let mut doc = 0u32;
            let mut list = Vec::new();
            for (gap, tf) in raw {
                doc += gap;
                list.push(Posting { doc: DocId(doc), tf });
            }
            for codec in [Codec::VarByte, Codec::Gamma, Codec::Golomb(7)] {
                let buf = encode(&list, codec);
                prop_assert_eq!(decode(&buf, list.len(), codec), Some(list.clone()));
            }
        }
    }
}
