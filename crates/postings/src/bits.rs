//! Bit-level I/O plus Elias γ and Golomb codes — the alternative gap
//! compressors the paper's background section names alongside variable-byte
//! encoding. Used by the codec-comparison ablation bench.

/// MSB-first bit writer.
#[derive(Debug, Default)]
pub struct BitWriter {
    buf: Vec<u8>,
    cur: u8,
    nbits: u8,
}

impl BitWriter {
    /// New empty writer.
    pub fn new() -> Self {
        Self::default()
    }

    /// Write a single bit.
    pub fn write_bit(&mut self, bit: bool) {
        self.cur = (self.cur << 1) | bit as u8;
        self.nbits += 1;
        if self.nbits == 8 {
            self.buf.push(self.cur);
            self.cur = 0;
            self.nbits = 0;
        }
    }

    /// Write the low `n` bits of `v`, most significant first.
    pub fn write_bits(&mut self, v: u64, n: u32) {
        for i in (0..n).rev() {
            self.write_bit((v >> i) & 1 == 1);
        }
    }

    /// Write `n` as unary: n zeros followed by a one.
    pub fn write_unary(&mut self, n: u64) {
        for _ in 0..n {
            self.write_bit(false);
        }
        self.write_bit(true);
    }

    /// Flush (zero-padding the last byte) and return the bytes.
    pub fn finish(mut self) -> Vec<u8> {
        if self.nbits > 0 {
            self.cur <<= 8 - self.nbits;
            self.buf.push(self.cur);
        }
        self.buf
    }
}

/// MSB-first bit reader.
#[derive(Debug)]
pub struct BitReader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> BitReader<'a> {
    /// Read from `buf` starting at the first bit.
    pub fn new(buf: &'a [u8]) -> Self {
        BitReader { buf, pos: 0 }
    }

    /// Read one bit; `None` at end of input.
    pub fn read_bit(&mut self) -> Option<bool> {
        let byte = *self.buf.get(self.pos / 8)?;
        let bit = (byte >> (7 - (self.pos % 8))) & 1 == 1;
        self.pos += 1;
        Some(bit)
    }

    /// Read `n` bits into the low bits of a u64 (MSB first).
    pub fn read_bits(&mut self, n: u32) -> Option<u64> {
        let mut v = 0u64;
        for _ in 0..n {
            v = (v << 1) | self.read_bit()? as u64;
        }
        Some(v)
    }

    /// Read a unary count (zeros before the terminating one).
    pub fn read_unary(&mut self) -> Option<u64> {
        let mut n = 0u64;
        while !self.read_bit()? {
            n += 1;
        }
        Some(n)
    }
}

/// Elias γ encode `v` (v >= 1): unary length then binary remainder.
pub fn gamma_encode(v: u64, w: &mut BitWriter) {
    debug_assert!(v >= 1);
    let nbits = 63 - v.leading_zeros();
    w.write_unary(nbits as u64);
    w.write_bits(v & !(1 << nbits), nbits);
}

/// Decode one γ value.
pub fn gamma_decode(r: &mut BitReader<'_>) -> Option<u64> {
    let nbits = r.read_unary()? as u32;
    if nbits > 63 {
        return None;
    }
    let rest = r.read_bits(nbits)?;
    Some((1 << nbits) | rest)
}

/// Golomb encode `v` (v >= 1) with parameter `b` (b >= 1): quotient in
/// unary, remainder in truncated binary.
pub fn golomb_encode(v: u64, b: u64, w: &mut BitWriter) {
    debug_assert!(v >= 1 && b >= 1);
    let x = v - 1;
    let q = x / b;
    let r = x % b;
    w.write_unary(q);
    write_truncated_binary(r, b, w);
}

/// Number of bits in the long form of a truncated-binary code for [0, b).
fn tb_bits(b: u64) -> u32 {
    64 - (b - 1).leading_zeros()
}

fn write_truncated_binary(r: u64, b: u64, w: &mut BitWriter) {
    if b == 1 {
        return;
    }
    let k = tb_bits(b); // bits for full codes
    let cutoff = (1u64 << k) - b; // number of short (k-1 bit) codes
    if r < cutoff {
        w.write_bits(r, k - 1);
    } else {
        w.write_bits(r + cutoff, k);
    }
}

fn read_truncated_binary(b: u64, rd: &mut BitReader<'_>) -> Option<u64> {
    if b == 1 {
        return Some(0);
    }
    let k = tb_bits(b);
    let cutoff = (1u64 << k) - b;
    let short = rd.read_bits(k - 1)?;
    if short < cutoff {
        Some(short)
    } else {
        let bit = rd.read_bit()? as u64;
        Some(((short << 1) | bit) - cutoff)
    }
}

/// Decode one Golomb value with parameter `b`.
pub fn golomb_decode(b: u64, rd: &mut BitReader<'_>) -> Option<u64> {
    let q = rd.read_unary()?;
    let r = read_truncated_binary(b, rd)?;
    Some(q * b + r + 1)
}

/// Number of bits needed to represent `v` (0 for `v == 0`).
#[inline]
pub fn bits_needed(v: u32) -> u32 {
    32 - v.leading_zeros()
}

/// Bytes occupied by `n` values packed at `width` bits each.
#[inline]
pub fn packed_len(n: usize, width: u32) -> usize {
    (n * width as usize).div_ceil(8)
}

/// Append `vals` packed at `width` bits each (LSB-first within bytes) to
/// `out`. Every value must fit in `width` bits; `width == 0` writes
/// nothing. This is the word-level fast path the block codecs build on —
/// one shift/or per value plus one push per output byte, no per-bit
/// branching.
pub fn pack_bits(vals: &[u32], width: u32, out: &mut Vec<u8>) {
    debug_assert!(width <= 32);
    if width == 0 {
        return;
    }
    out.reserve(packed_len(vals.len(), width));
    let mut acc: u64 = 0;
    let mut nbits: u32 = 0;
    for &v in vals {
        debug_assert!(width == 32 || u64::from(v) < (1u64 << width), "{v} overflows {width} bits");
        acc |= u64::from(v) << nbits;
        nbits += width;
        while nbits >= 8 {
            out.push((acc & 0xFF) as u8);
            acc >>= 8;
            nbits -= 8;
        }
    }
    if nbits > 0 {
        out.push((acc & 0xFF) as u8);
    }
}

/// Unpack `n` values of `width` bits each from `buf` (as written by
/// [`pack_bits`]) into `out`. Returns the number of bytes consumed, or
/// `None` when `buf` is too short or `width > 32`.
///
/// The hot path is one unaligned little-endian u64 load per value: value
/// `i` occupies stream bits `[i*width, (i+1)*width)`, and with `width <=
/// 32` plus at most 7 bits of in-byte offset, a full 8-byte load always
/// covers it (`32 + 7 < 64`). Only the last few values of a buffer-final
/// section (where an 8-byte load would run off the slice) fall back to the
/// byte-at-a-time accumulator.
pub fn unpack_bits(buf: &[u8], n: usize, width: u32, out: &mut Vec<u32>) -> Option<usize> {
    let start = out.len();
    out.resize(start + n, 0);
    let consumed = unpack_bits_into(buf, &mut out[start..], width);
    if consumed.is_none() {
        out.truncate(start);
    }
    consumed
}

/// [`unpack_bits`] into a preallocated slice (`out.len()` values). This is
/// the decode hot path: writing through `iter_mut` instead of `Vec::push`
/// keeps the loop free of capacity checks, and each value is one unaligned
/// little-endian u64 load + shift + mask — value `i` starts inside byte
/// `i*width/8`, and with `width <= 32` plus at most 7 bits of in-byte
/// offset, 8 bytes always cover it (`32 + 7 < 64`). Only trailing values
/// whose 8-byte window would run off `buf` fall back to a byte-at-a-time
/// accumulator.
pub fn unpack_bits_into(buf: &[u8], out: &mut [u32], width: u32) -> Option<usize> {
    let n = out.len();
    if width > 32 {
        return None;
    }
    if width == 0 {
        out.fill(0);
        return Some(0);
    }
    let need = packed_len(n, width);
    if buf.len() < need {
        return None;
    }
    let mask: u32 = if width == 32 { u32::MAX } else { (1u32 << width) - 1 };
    let w = width as usize;
    let n_fast =
        if buf.len() >= 8 { n.min(((buf.len() - 8) * 8 + 7) / w + 1) } else { 0 };
    let (fast, slow) = out.split_at_mut(n_fast);
    for (i, slot) in fast.iter_mut().enumerate() {
        let bit = i * w;
        let byte = bit >> 3;
        let word = u64::from_le_bytes(buf[byte..byte + 8].try_into().unwrap());
        *slot = ((word >> (bit & 7)) as u32) & mask;
    }
    if !slow.is_empty() {
        // Byte-accumulator tail, resumed mid-byte where the fast path
        // stopped. Only reads bytes below `need`, which are in bounds.
        let bit = n_fast * w;
        let mut pos = bit >> 3;
        let shift = (bit & 7) as u32;
        let mut acc: u64 = 0;
        let mut nbits: u32 = 0;
        if shift > 0 {
            acc = u64::from(buf[pos]) >> shift;
            nbits = 8 - shift;
            pos += 1;
        }
        for slot in slow.iter_mut() {
            while nbits < width {
                acc |= u64::from(buf[pos]) << nbits;
                pos += 1;
                nbits += 8;
            }
            *slot = (acc as u32) & mask;
            acc >>= width;
            nbits -= width;
        }
    }
    Some(need)
}

/// The Golomb parameter Witten/Moffat/Bell recommend for document gaps:
/// b ≈ 0.69 · (N / df).
pub fn golomb_parameter(total_docs: u64, doc_freq: u64) -> u64 {
    if doc_freq == 0 {
        return 1;
    }
    ((0.69 * total_docs as f64 / doc_freq as f64).ceil() as u64).max(1)
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn bit_roundtrip() {
        let mut w = BitWriter::new();
        w.write_bits(0b1011, 4);
        w.write_unary(3);
        w.write_bit(true);
        let bytes = w.finish();
        let mut r = BitReader::new(&bytes);
        assert_eq!(r.read_bits(4), Some(0b1011));
        assert_eq!(r.read_unary(), Some(3));
        assert_eq!(r.read_bit(), Some(true));
    }

    #[test]
    fn gamma_known_codes() {
        // γ(1) = "1", γ(2) = "010", γ(3) = "011", γ(4) = "00100".
        let mut w = BitWriter::new();
        for v in [1u64, 2, 3, 4] {
            gamma_encode(v, &mut w);
        }
        let bytes = w.finish();
        let mut r = BitReader::new(&bytes);
        for v in [1u64, 2, 3, 4] {
            assert_eq!(gamma_decode(&mut r), Some(v));
        }
    }

    #[test]
    fn golomb_small_values() {
        for b in [1u64, 2, 3, 4, 7, 10] {
            let mut w = BitWriter::new();
            for v in 1..=50u64 {
                golomb_encode(v, b, &mut w);
            }
            let bytes = w.finish();
            let mut r = BitReader::new(&bytes);
            for v in 1..=50u64 {
                assert_eq!(golomb_decode(b, &mut r), Some(v), "b={b} v={v}");
            }
        }
    }

    #[test]
    fn golomb_parameter_sane() {
        assert_eq!(golomb_parameter(1000, 0), 1);
        assert!(golomb_parameter(1_000_000, 10) > 1000);
        assert_eq!(golomb_parameter(10, 10), 1);
    }

    #[test]
    fn truncated_input_returns_none() {
        let mut r = BitReader::new(&[]);
        assert_eq!(gamma_decode(&mut r), None);
        let mut r = BitReader::new(&[0x00]); // 8 zeros: unary never terminates
        assert_eq!(r.read_unary(), None);
    }

    proptest! {
        #[test]
        fn prop_gamma_roundtrip(vals in proptest::collection::vec(1u64..1_000_000, 0..100)) {
            let mut w = BitWriter::new();
            for &v in &vals { gamma_encode(v, &mut w); }
            let bytes = w.finish();
            let mut r = BitReader::new(&bytes);
            for &v in &vals {
                prop_assert_eq!(gamma_decode(&mut r), Some(v));
            }
        }

        #[test]
        fn prop_golomb_roundtrip(
            vals in proptest::collection::vec(1u64..100_000, 0..100),
            b in 1u64..500,
        ) {
            let mut w = BitWriter::new();
            for &v in &vals { golomb_encode(v, b, &mut w); }
            let bytes = w.finish();
            let mut r = BitReader::new(&bytes);
            for &v in &vals {
                prop_assert_eq!(golomb_decode(b, &mut r), Some(v));
            }
        }
    }
}
