//! Post-processing merge of partial postings lists (paper §III.F).
//!
//! "If necessary, we can combine the partial postings lists of each term
//! into a single list in a post-processing step, with an additional cost of
//! less than 10% of the total running time." This module implements that
//! step: it folds a [`RunSet`] into one monolithic run file containing each
//! term's full list.

use crate::codec::Codec;
use crate::posting::PostingsList;
use crate::run::{RunFile, RunSet};
use std::collections::BTreeMap;

/// Merge every term's partial lists across `runs` into a single run file
/// (run id = one past the last input run). Lists stay doc-sorted because
/// runs are processed in order.
///
/// Records one span on the process-global `merge` stage
/// (`ii_obs::global()`): wall time, one item per call, and the input
/// payload bytes folded.
pub fn merge_runs(runs: &RunSet, codec: Codec) -> RunFile {
    let stage = ii_obs::global().stage("merge");
    let mut span = stage.span();
    span.add_bytes(runs.runs().iter().map(|r| r.payload.len() as u64).sum());
    let mut merged: BTreeMap<u32, PostingsList> = BTreeMap::new();
    let mut indexer_id = 0;
    let mut next_run = 0;
    for r in runs.runs() {
        indexer_id = r.indexer_id;
        next_run = next_run.max(r.run_id + 1);
        for e in &r.entries {
            let part = r.get(e.handle).expect("entry listed in mapping table");
            let list = merged.entry(e.handle).or_default();
            for p in part {
                list.push(p);
            }
        }
    }
    let pairs: Vec<(u32, PostingsList)> = merged.into_iter().collect();
    let mut it = pairs.iter().map(|(h, l)| (*h, l));
    RunFile::build(next_run, indexer_id, &mut it, codec)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::posting::Posting;
    use ii_corpus::DocId;

    fn run_with(run_id: u32, handle: u32, docs: &[u32]) -> RunFile {
        let list: PostingsList =
            docs.iter().map(|&d| Posting { doc: DocId(d), tf: 1 }).collect();
        let pairs = [(handle, list)];
        let mut it = pairs.iter().map(|(h, l)| (*h, l));
        RunFile::build(run_id, 0, &mut it, Codec::VarByte)
    }

    #[test]
    fn merge_concatenates_per_handle() {
        let mut rs = RunSet::new();
        rs.push(run_with(0, 4, &[1, 2]));
        rs.push(run_with(1, 4, &[10, 11]));
        rs.push(run_with(2, 8, &[5]));
        let merged = merge_runs(&rs, Codec::VarByte);
        assert_eq!(merged.run_id, 3);
        let l4: Vec<u32> = merged.get(4).unwrap().iter().map(|p| p.doc.0).collect();
        assert_eq!(l4, vec![1, 2, 10, 11]);
        let l8: Vec<u32> = merged.get(8).unwrap().iter().map(|p| p.doc.0).collect();
        assert_eq!(l8, vec![5]);
    }

    #[test]
    fn merged_file_equals_runset_fetch() {
        let mut rs = RunSet::new();
        for r in 0..4 {
            rs.push(run_with(r, 1, &[r * 10, r * 10 + 3]));
        }
        let merged = merge_runs(&rs, Codec::VarByte);
        assert_eq!(merged.get(1).unwrap(), rs.fetch(1).postings().to_vec());
    }

    #[test]
    fn merge_empty_runset() {
        let merged = merge_runs(&RunSet::new(), Codec::VarByte);
        assert!(merged.entries.is_empty());
        assert!(merged.payload.is_empty());
    }

    #[test]
    fn merge_records_global_stage_metrics() {
        let stage = ii_obs::global().stage("merge");
        let items_before = stage.items.get();
        let bytes_before = stage.bytes.get();
        let mut rs = RunSet::new();
        rs.push(run_with(0, 1, &[1, 2, 3]));
        merge_runs(&rs, Codec::VarByte);
        assert_eq!(stage.items.get(), items_before + 1);
        assert!(stage.bytes.get() > bytes_before, "input payload bytes recorded");
    }

    #[test]
    fn merge_can_recode() {
        let mut rs = RunSet::new();
        rs.push(run_with(0, 2, &[1, 5, 9]));
        let merged = merge_runs(&rs, Codec::Gamma);
        assert_eq!(merged.codec, Codec::Gamma);
        let docs: Vec<u32> = merged.get(2).unwrap().iter().map(|p| p.doc.0).collect();
        assert_eq!(docs, vec![1, 5, 9]);
    }
}
