//! Post-processing merge of partial postings lists (paper §III.F).
//!
//! "If necessary, we can combine the partial postings lists of each term
//! into a single list in a post-processing step, with an additional cost of
//! less than 10% of the total running time." This module implements that
//! step: it folds a [`RunSet`] into one monolithic run file containing each
//! term's full list.
//!
//! The merge is block-aligned: when a source entry already uses the target
//! codec, its full 128-document blocks are copied **verbatim** (bytes, skip
//! entry and block-max included) whenever the output sits on a block
//! boundary — no decode, no re-encode. Only boundary-straddling tail
//! blocks and codec-mismatched lists are recoded. Because blocks are
//! block-independent (gaps relative to their own first document), the
//! copied bytes are exactly what re-encoding would produce, so the merged
//! file is byte-identical to building the full list from scratch.

use crate::block::{decode_block, BlockScratch, BlockedList, ListEncoder, BLOCK_LEN};
use crate::codec::Codec;
use crate::run::{RunEntry, RunFile, RunFormat, RunSet};
use std::collections::BTreeMap;

/// Merge every term's partial lists across `runs` into a single run file
/// (run id = one past the last input run). Lists stay doc-sorted because
/// runs are processed in order.
///
/// Records one span on the process-global `merge` stage
/// (`ii_obs::global()`): wall time, one item per call, and the input
/// payload bytes folded. Two global counters make the fast path
/// observable: `merge.blocks_copied` (verbatim block copies) and
/// `merge.postings_recoded` (postings that went through decode+encode).
pub fn merge_runs(runs: &RunSet, codec: Codec) -> RunFile {
    let stage = ii_obs::global().stage("merge");
    let mut span = stage.span();
    span.add_bytes(runs.runs().iter().map(|r| r.payload.len() as u64).sum());
    let copied_ctr = ii_obs::global().counter("merge.blocks_copied");
    let recoded_ctr = ii_obs::global().counter("merge.postings_recoded");

    let mut by_handle: BTreeMap<u32, Vec<(&RunFile, &RunEntry)>> = BTreeMap::new();
    let mut indexer_id = 0;
    let mut next_run = 0;
    for r in runs.runs() {
        indexer_id = r.indexer_id;
        next_run = next_run.max(r.run_id + 1);
        for e in &r.entries {
            by_handle.entry(e.handle).or_default().push((r, e));
        }
    }

    let mut entries = Vec::with_capacity(by_handle.len());
    let mut payload = Vec::new();
    let mut scratch = BlockScratch::default();
    let mut tmp = Vec::with_capacity(BLOCK_LEN);
    for (handle, parts) in by_handle {
        let total: usize = parts.iter().map(|(_, e)| e.n_postings as usize).sum();
        let target = codec.resolve(total);
        let mut enc = ListEncoder::new(target);
        for (r, e) in &parts {
            if r.format == RunFormat::Blocked && e.codec == target {
                // Codec-aligned source: stream blocks, copying full ones
                // verbatim when the output is on a block boundary.
                let blocks = BlockedList::parse(r.payload_of(e), e.n_postings as usize)
                    .expect("committed run entry parses");
                for b in 0..blocks.n_blocks() {
                    let body = blocks.body(b).expect("committed run entry parses");
                    if blocks.len_of(b) == BLOCK_LEN && enc.at_block_boundary() {
                        enc.push_raw_block(blocks.entry(b), body);
                        copied_ctr.inc();
                    } else {
                        tmp.clear();
                        decode_block(
                            target,
                            body,
                            blocks.entry(b).first_doc,
                            blocks.len_of(b),
                            &mut scratch,
                            &mut tmp,
                        )
                        .expect("committed run entry decodes");
                        recoded_ctr.add(tmp.len() as u64);
                        for &p in &tmp {
                            enc.push(p);
                        }
                    }
                }
            } else {
                // Legacy or codec-mismatched source: full decode + re-encode.
                let part = r.decode_entry(e).expect("committed run entry decodes");
                recoded_ctr.add(part.len() as u64);
                for p in part {
                    enc.push(p);
                }
            }
        }
        let enc = enc.finish();
        entries.push(RunEntry {
            handle,
            offset: payload.len() as u64,
            len: enc.bytes.len() as u32,
            n_postings: total as u32,
            doc_min: parts.first().map(|(_, e)| e.doc_min).unwrap_or(0),
            doc_max: parts.last().map(|(_, e)| e.doc_max).unwrap_or(0),
            codec: target,
            max_tf: enc.max_tf,
        });
        payload.extend_from_slice(&enc.bytes);
    }
    RunFile { run_id: next_run, indexer_id, entries, payload, codec, format: RunFormat::Blocked }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::posting::{Posting, PostingsList};
    use ii_corpus::DocId;

    fn run_with(run_id: u32, handle: u32, docs: &[u32]) -> RunFile {
        let list: PostingsList =
            docs.iter().map(|&d| Posting { doc: DocId(d), tf: 1 }).collect();
        let pairs = [(handle, list)];
        let mut it = pairs.iter().map(|(h, l)| (*h, l));
        RunFile::build(run_id, 0, &mut it, Codec::VarByte)
    }

    #[test]
    fn merge_concatenates_per_handle() {
        let mut rs = RunSet::new();
        rs.push(run_with(0, 4, &[1, 2]));
        rs.push(run_with(1, 4, &[10, 11]));
        rs.push(run_with(2, 8, &[5]));
        let merged = merge_runs(&rs, Codec::VarByte);
        assert_eq!(merged.run_id, 3);
        let l4: Vec<u32> = merged.get(4).unwrap().iter().map(|p| p.doc.0).collect();
        assert_eq!(l4, vec![1, 2, 10, 11]);
        let l8: Vec<u32> = merged.get(8).unwrap().iter().map(|p| p.doc.0).collect();
        assert_eq!(l8, vec![5]);
    }

    #[test]
    fn merged_file_equals_runset_fetch() {
        let mut rs = RunSet::new();
        for r in 0..4 {
            rs.push(run_with(r, 1, &[r * 10, r * 10 + 3]));
        }
        let merged = merge_runs(&rs, Codec::VarByte);
        assert_eq!(merged.get(1).unwrap(), rs.fetch(1).postings().to_vec());
    }

    #[test]
    fn merge_empty_runset() {
        let merged = merge_runs(&RunSet::new(), Codec::VarByte);
        assert!(merged.entries.is_empty());
        assert!(merged.payload.is_empty());
    }

    #[test]
    fn merge_records_global_stage_metrics() {
        let stage = ii_obs::global().stage("merge");
        let items_before = stage.items.get();
        let bytes_before = stage.bytes.get();
        let mut rs = RunSet::new();
        rs.push(run_with(0, 1, &[1, 2, 3]));
        merge_runs(&rs, Codec::VarByte);
        assert_eq!(stage.items.get(), items_before + 1);
        assert!(stage.bytes.get() > bytes_before, "input payload bytes recorded");
    }

    #[test]
    fn merge_can_recode() {
        let mut rs = RunSet::new();
        rs.push(run_with(0, 2, &[1, 5, 9]));
        let merged = merge_runs(&rs, Codec::Bp128);
        assert_eq!(merged.codec, Codec::Bp128);
        assert_eq!(merged.entries[0].codec, Codec::Bp128);
        let docs: Vec<u32> = merged.get(2).unwrap().iter().map(|p| p.doc.0).collect();
        assert_eq!(docs, vec![1, 5, 9]);
    }

    fn big_run(run_id: u32, handle: u32, base: u32, n: u32, codec: Codec) -> RunFile {
        let list: PostingsList =
            (0..n).map(|i| Posting { doc: DocId(base + i * 2), tf: 1 + i % 5 }).collect();
        let pairs = [(handle, list)];
        let mut it = pairs.iter().map(|(h, l)| (*h, l));
        RunFile::build(run_id, 0, &mut it, codec)
    }

    #[test]
    fn aligned_merge_is_byte_identical_to_full_rebuild_and_copies_blocks() {
        // Three aligned runs of a long list: merge must equal building the
        // concatenated list from scratch, and the aligned full blocks must
        // travel the verbatim-copy path.
        // The counter is process-global and other tests run concurrently,
        // so assert a lower bound over the whole matrix (96 copies per
        // codec: 3 parts x 32 full blocks each, output always aligned).
        let copied_before = ii_obs::global().counter("merge.blocks_copied").get();
        for codec in [Codec::Bp128, Codec::PFor, Codec::EliasFano, Codec::Auto] {
            let n = 4096u32; // long class: Auto resolves to EliasFano
            let mut rs = RunSet::new();
            for r in 0..3u32 {
                rs.push(big_run(r, 9, r * 100_000, n, codec));
            }
            let merged = merge_runs(&rs, codec);
            // Byte-identity with a from-scratch build of the full list.
            let full: PostingsList = rs.fetch(9).postings().iter().copied().collect();
            let pairs = [(9u32, full)];
            let mut it = pairs.iter().map(|(h, l)| (*h, l));
            let rebuilt = RunFile::build(merged.run_id, 0, &mut it, codec);
            assert_eq!(merged.payload, rebuilt.payload, "{codec:?}");
            assert_eq!(merged.entries, rebuilt.entries, "{codec:?}");
        }
        let copied = ii_obs::global().counter("merge.blocks_copied").get() - copied_before;
        assert!(copied >= 96 * 4, "verbatim copies must dominate, got {copied}");
    }

    #[test]
    fn misaligned_merge_still_byte_identical() {
        // Part sizes not multiples of 128: tail blocks force recoding, but
        // the result must still equal the from-scratch build.
        let mut rs = RunSet::new();
        rs.push(big_run(0, 9, 0, 300, Codec::PFor));
        rs.push(big_run(1, 9, 1_000_000, 129, Codec::PFor));
        rs.push(big_run(2, 9, 2_000_000, 127, Codec::PFor));
        let merged = merge_runs(&rs, Codec::PFor);
        let full: PostingsList = rs.fetch(9).postings().iter().copied().collect();
        let pairs = [(9u32, full)];
        let mut it = pairs.iter().map(|(h, l)| (*h, l));
        let rebuilt = RunFile::build(merged.run_id, 0, &mut it, Codec::PFor);
        assert_eq!(merged.payload, rebuilt.payload);
        assert_eq!(merged.entries, rebuilt.entries);
        assert_eq!(merged.get(9).unwrap(), rs.fetch(9).postings());
    }

    #[test]
    fn legacy_sources_merge_into_blocked_output() {
        let list: PostingsList =
            (0..200u32).map(|i| Posting { doc: DocId(i * 3), tf: 1 }).collect();
        let pairs = [(5u32, list)];
        let mut it = pairs.iter().map(|(h, l)| (*h, l));
        let legacy = RunFile::build_legacy(0, 0, &mut it, Codec::VarByte);
        let mut rs = RunSet::new();
        rs.push(legacy);
        let merged = merge_runs(&rs, Codec::Auto);
        assert_eq!(merged.format, RunFormat::Blocked);
        assert_eq!(merged.entries[0].codec, Codec::PFor, "200 postings: medium class");
        assert_eq!(merged.get(5).unwrap(), rs.fetch(5).postings());
        assert!(merged.entries[0].max_tf >= 1, "block-max recovered from legacy data");
    }
}
