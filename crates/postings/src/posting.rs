//! Postings and postings lists.

use ii_corpus::DocId;

/// One posting: a document containing the term and the term's frequency in
/// it. (The paper's lists hold "the ID of the document containing the term,
/// term frequency, and possibly other information".)
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Posting {
    /// Global document ID.
    pub doc: DocId,
    /// Term frequency within the document.
    pub tf: u32,
}

/// An in-memory postings list, kept sorted by document ID. Because the
/// pipeline forces indexers to consume parser buffers in round-robin order
/// (§III.F), documents arrive in increasing global ID order and appends
/// keep the list "intrinsically in sorted order".
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct PostingsList {
    postings: Vec<Posting>,
}

impl PostingsList {
    /// Empty list.
    pub fn new() -> Self {
        Self::default()
    }

    /// Record one occurrence of the term in `doc`. If `doc` equals the last
    /// posting's document, its term frequency is bumped; otherwise a new
    /// posting is appended. `doc` must be >= the last document seen.
    pub fn add_occurrence(&mut self, doc: DocId) {
        match self.postings.last_mut() {
            Some(last) if last.doc == doc => last.tf += 1,
            Some(last) => {
                assert!(
                    doc > last.doc,
                    "postings must arrive in document order: {} after {}",
                    doc,
                    last.doc
                );
                self.postings.push(Posting { doc, tf: 1 });
            }
            None => self.postings.push(Posting { doc, tf: 1 }),
        }
    }

    /// Append an already-aggregated posting (merge path).
    pub fn push(&mut self, p: Posting) {
        if let Some(last) = self.postings.last() {
            assert!(p.doc > last.doc, "push out of order");
        }
        self.postings.push(p);
    }

    /// Document frequency (number of postings).
    pub fn len(&self) -> usize {
        self.postings.len()
    }

    /// True when no postings are present.
    pub fn is_empty(&self) -> bool {
        self.postings.is_empty()
    }

    /// The postings, in document order.
    pub fn postings(&self) -> &[Posting] {
        &self.postings
    }

    /// Smallest and largest document IDs, if non-empty.
    pub fn doc_range(&self) -> Option<(DocId, DocId)> {
        Some((self.postings.first()?.doc, self.postings.last()?.doc))
    }

    /// Total occurrences (sum of term frequencies).
    pub fn total_tf(&self) -> u64 {
        self.postings.iter().map(|p| p.tf as u64).sum()
    }

    /// Drain the list, leaving it empty but with capacity (end-of-run flush).
    pub fn take(&mut self) -> Vec<Posting> {
        std::mem::take(&mut self.postings)
    }

    /// Resident bytes of the pending postings (memory-governor accounting).
    /// Counts live postings, not vector capacity, so the figure is a
    /// deterministic function of the documents indexed.
    pub fn mem_bytes(&self) -> u64 {
        (self.postings.len() * std::mem::size_of::<Posting>()) as u64
    }
}

impl FromIterator<Posting> for PostingsList {
    fn from_iter<T: IntoIterator<Item = Posting>>(iter: T) -> Self {
        let mut l = PostingsList::new();
        for p in iter {
            l.push(p);
        }
        l
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn occurrences_aggregate_by_doc() {
        let mut l = PostingsList::new();
        l.add_occurrence(DocId(1));
        l.add_occurrence(DocId(1));
        l.add_occurrence(DocId(3));
        assert_eq!(
            l.postings(),
            &[Posting { doc: DocId(1), tf: 2 }, Posting { doc: DocId(3), tf: 1 }]
        );
        assert_eq!(l.total_tf(), 3);
        assert_eq!(l.doc_range(), Some((DocId(1), DocId(3))));
    }

    #[test]
    #[should_panic(expected = "document order")]
    fn out_of_order_rejected() {
        let mut l = PostingsList::new();
        l.add_occurrence(DocId(5));
        l.add_occurrence(DocId(2));
    }

    #[test]
    fn take_resets() {
        let mut l = PostingsList::new();
        l.add_occurrence(DocId(0));
        let drained = l.take();
        assert_eq!(drained.len(), 1);
        assert!(l.is_empty());
        // After a flush, a later (larger) doc can be added again.
        l.add_occurrence(DocId(9));
        assert_eq!(l.len(), 1);
    }
}
