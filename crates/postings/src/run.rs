//! Run output files (paper §III.F).
//!
//! "A separate output file is created for the postings lists generated
//! during a single run, whose header contains a mapping table indicating
//! the location and length of each postings list." Postings handles stored
//! in the dictionary index into these mapping tables; a term's full list is
//! the concatenation of its partial lists across runs, which is already
//! doc-ordered because runs are.
//!
//! Two on-disk formats coexist:
//!
//! * **v1 (`IIRF`)** — the legacy layout: every list is one whole-list
//!   stream in the run's single codec. Still readable (and writable via
//!   [`RunFile::build_legacy`]) so pre-block-layout indexes keep opening.
//! * **v2 (`IIR2`)** — the block layout of [`crate::block`]: each list is
//!   a skip table plus fixed 128-document blocks, each mapping-table row
//!   carries its own (length-class-resolved) codec and the list's maximum
//!   term frequency. This is what [`RunFile::build`] writes.

use crate::block;
use crate::codec::{decode, encode, Codec, CodecError};
use crate::cursor::{RunCursor, SetCursor};
use crate::posting::{Posting, PostingsList};
use ii_corpus::DocId;

/// Magic bytes of a legacy (whole-list) run file.
pub const RUN_MAGIC: &[u8; 4] = b"IIRF";

/// Magic bytes of a block-layout run file.
pub const RUN_MAGIC_V2: &[u8; 4] = b"IIR2";

/// Which on-disk layout a run file uses.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum RunFormat {
    /// v1: whole-list streams, one codec per run.
    Legacy,
    /// v2: 128-doc blocks + skip tables, one codec per list.
    Blocked,
}

/// One mapping-table row: where a partial postings list lives.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct RunEntry {
    /// Postings handle (dictionary pointer).
    pub handle: u32,
    /// Payload-relative byte offset.
    pub offset: u64,
    /// Encoded length in bytes.
    pub len: u32,
    /// Number of postings encoded.
    pub n_postings: u32,
    /// Smallest document ID in the partial list.
    pub doc_min: u32,
    /// Largest document ID in the partial list.
    pub doc_max: u32,
    /// Codec of this list. In v1 files every entry inherits the run codec;
    /// in v2 it is the length-class-resolved codec of the list.
    pub codec: Codec,
    /// Largest term frequency in the list (block-max metadata; 0 in
    /// legacy files, which never stored it).
    pub max_tf: u32,
}

const ENTRY_BYTES_V1: usize = 28;
const ENTRY_BYTES_V2: usize = 41;
const HEADER_BYTES: usize = 33;

/// A run file: header + mapping table + payload.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct RunFile {
    /// Which run produced this file.
    pub run_id: u32,
    /// Which indexer produced this file.
    pub indexer_id: u32,
    /// Mapping table, sorted by handle.
    pub entries: Vec<RunEntry>,
    /// Concatenated encoded postings.
    pub payload: Vec<u8>,
    /// The codec the run was built with (possibly [`Codec::Auto`]; the
    /// per-list resolution lives in each entry).
    pub codec: Codec,
    /// On-disk layout.
    pub format: RunFormat,
}

/// Errors from [`RunFile::from_bytes`].
#[derive(Debug, PartialEq, Eq)]
pub enum RunFileError {
    /// Wrong magic or impossible sizes.
    Malformed,
    /// Buffer too short.
    Truncated,
}

impl std::fmt::Display for RunFileError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RunFileError::Malformed => write!(f, "malformed run file"),
            RunFileError::Truncated => write!(f, "truncated run file"),
        }
    }
}

impl std::error::Error for RunFileError {}

/// Canonical on-disk artifact name of a run file: `run_IND_RUNID.iirf`,
/// zero-padded so lexicographic and numeric orders agree. Shared by the
/// pipeline's checkpoint commits and the index save/open paths.
pub fn run_artifact_name(indexer_id: u32, run_id: u32) -> String {
    format!("run_{indexer_id:03}_{run_id:05}.iirf")
}

/// Parse a name produced by [`run_artifact_name`] back into
/// `(indexer_id, run_id)`. Strict: both fields must be non-empty ASCII
/// digits and nothing may follow the run id — `run_000_00001_extra.iirf`
/// or `run_000_00001.iirf.bak` are rejected, not silently truncated.
pub fn parse_run_artifact_name(name: &str) -> Option<(u32, u32)> {
    let rest = name.strip_prefix("run_")?.strip_suffix(".iirf")?;
    let (indexer, run) = rest.split_once('_')?;
    let digits =
        |s: &str| !s.is_empty() && s.bytes().all(|b| b.is_ascii_digit());
    if !digits(indexer) || !digits(run) {
        return None;
    }
    Some((indexer.parse().ok()?, run.parse().ok()?))
}

fn codec_tag(c: Codec) -> (u8, u64) {
    match c {
        Codec::VarByte => (0, 0),
        Codec::Gamma => (1, 0),
        Codec::Golomb(b) => (2, b),
        Codec::Bp128 => (3, 0),
        Codec::PFor => (4, 0),
        Codec::EliasFano => (5, 0),
        Codec::Auto => (6, 0),
    }
}

fn codec_from_tag(tag: u8, b: u64) -> Option<Codec> {
    match tag {
        0 => Some(Codec::VarByte),
        1 => Some(Codec::Gamma),
        2 => Some(Codec::Golomb(b.max(1))),
        3 => Some(Codec::Bp128),
        4 => Some(Codec::PFor),
        5 => Some(Codec::EliasFano),
        6 => Some(Codec::Auto),
        _ => None,
    }
}

impl RunFile {
    /// Build a block-layout (v2) run file from `(handle, list)` pairs (the
    /// end-of-run flush). Empty lists are skipped; entries are stored
    /// sorted by handle; each list's codec is `codec` resolved by its
    /// length ([`Codec::Auto`] applies the measured length-class policy).
    pub fn build(
        run_id: u32,
        indexer_id: u32,
        lists: &mut dyn Iterator<Item = (u32, &PostingsList)>,
        codec: Codec,
    ) -> RunFile {
        let mut pairs: Vec<(u32, &PostingsList)> =
            lists.filter(|(_, l)| !l.is_empty()).collect();
        pairs.sort_unstable_by_key(|(h, _)| *h);
        let mut entries = Vec::with_capacity(pairs.len());
        let mut payload = Vec::new();
        for (handle, list) in pairs {
            let resolved = codec.resolve(list.len());
            let enc = block::encode_list(list.postings(), resolved);
            let (lo, hi) = list.doc_range().expect("non-empty");
            entries.push(RunEntry {
                handle,
                offset: payload.len() as u64,
                len: enc.bytes.len() as u32,
                n_postings: list.len() as u32,
                doc_min: lo.0,
                doc_max: hi.0,
                codec: resolved,
                max_tf: enc.max_tf,
            });
            payload.extend_from_slice(&enc.bytes);
        }
        RunFile { run_id, indexer_id, entries, payload, codec, format: RunFormat::Blocked }
    }

    /// Build a legacy (v1, whole-list) run file. Kept for fixtures and the
    /// backwards-compatibility tests; `codec` must be a legacy codec.
    pub fn build_legacy(
        run_id: u32,
        indexer_id: u32,
        lists: &mut dyn Iterator<Item = (u32, &PostingsList)>,
        codec: Codec,
    ) -> RunFile {
        assert!(!codec.is_blocked(), "legacy run files only support whole-list codecs");
        let mut pairs: Vec<(u32, &PostingsList)> =
            lists.filter(|(_, l)| !l.is_empty()).collect();
        pairs.sort_unstable_by_key(|(h, _)| *h);
        let mut entries = Vec::with_capacity(pairs.len());
        let mut payload = Vec::new();
        for (handle, list) in pairs {
            let bytes = encode(list.postings(), codec);
            let (lo, hi) = list.doc_range().expect("non-empty");
            entries.push(RunEntry {
                handle,
                offset: payload.len() as u64,
                len: bytes.len() as u32,
                n_postings: list.len() as u32,
                doc_min: lo.0,
                doc_max: hi.0,
                codec,
                max_tf: 0,
            });
            payload.extend_from_slice(&bytes);
        }
        RunFile { run_id, indexer_id, entries, payload, codec, format: RunFormat::Legacy }
    }

    /// Document range covered by the whole run, if any list is present.
    pub fn doc_range(&self) -> Option<(u32, u32)> {
        let lo = self.entries.iter().map(|e| e.doc_min).min()?;
        let hi = self.entries.iter().map(|e| e.doc_max).max()?;
        Some((lo, hi))
    }

    /// Largest term frequency across every list in the run (0 when empty
    /// or legacy).
    pub fn max_tf(&self) -> u32 {
        self.entries.iter().map(|e| e.max_tf).max().unwrap_or(0)
    }

    /// Total 128-doc blocks across every list (0 for legacy files).
    pub fn block_count(&self) -> u64 {
        match self.format {
            RunFormat::Legacy => 0,
            RunFormat::Blocked => {
                self.entries.iter().map(|e| block::n_blocks(e.n_postings as usize) as u64).sum()
            }
        }
    }

    /// Look up the mapping-table row of `handle`.
    pub fn entry(&self, handle: u32) -> Option<&RunEntry> {
        self.entries
            .binary_search_by_key(&handle, |e| e.handle)
            .ok()
            .map(|i| &self.entries[i])
    }

    /// The encoded bytes of one mapping-table row.
    pub fn payload_of(&self, e: &RunEntry) -> &[u8] {
        &self.payload[e.offset as usize..(e.offset + e.len as u64) as usize]
    }

    /// Decode the partial postings list behind one mapping-table row.
    pub fn decode_entry(&self, e: &RunEntry) -> Result<Vec<Posting>, CodecError> {
        let buf = self.payload_of(e);
        match self.format {
            RunFormat::Blocked => block::decode_list(buf, e.n_postings as usize, e.codec),
            RunFormat::Legacy => decode(buf, e.n_postings as usize, e.codec),
        }
    }

    /// A skip-capable cursor over one mapping-table row. Blocked entries
    /// decode lazily (block at a time via the skip table); legacy entries
    /// fall back to an eager whole-list decode.
    pub fn cursor_of(&self, e: &RunEntry) -> Result<RunCursor<'_>, CodecError> {
        match self.format {
            RunFormat::Blocked => Ok(RunCursor::Blocked(crate::cursor::ListCursor::new(
                self.payload_of(e),
                e.n_postings as usize,
                e.codec,
            )?)),
            RunFormat::Legacy => {
                Ok(RunCursor::Legacy { postings: self.decode_entry(e)?, pos: 0 })
            }
        }
    }

    /// Decode the partial postings list of `handle` in this run. `None`
    /// when the handle is absent or its bytes are corrupt.
    pub fn get(&self, handle: u32) -> Option<Vec<Posting>> {
        let e = self.entry(handle)?;
        self.decode_entry(e).ok()
    }

    /// Serialize to bytes (what goes to disk). The format is preserved: a
    /// v1-loaded file re-serializes as v1, so round-trips never silently
    /// migrate an artifact.
    pub fn to_bytes(&self) -> Vec<u8> {
        let (magic, entry_bytes) = match self.format {
            RunFormat::Legacy => (RUN_MAGIC, ENTRY_BYTES_V1),
            RunFormat::Blocked => (RUN_MAGIC_V2, ENTRY_BYTES_V2),
        };
        let mut out =
            Vec::with_capacity(HEADER_BYTES + self.entries.len() * entry_bytes + self.payload.len());
        out.extend_from_slice(magic);
        out.extend_from_slice(&self.run_id.to_le_bytes());
        out.extend_from_slice(&self.indexer_id.to_le_bytes());
        let (tag, b) = codec_tag(self.codec);
        out.push(tag);
        out.extend_from_slice(&b.to_le_bytes());
        out.extend_from_slice(&(self.entries.len() as u32).to_le_bytes());
        out.extend_from_slice(&(self.payload.len() as u64).to_le_bytes());
        for e in &self.entries {
            out.extend_from_slice(&e.handle.to_le_bytes());
            out.extend_from_slice(&e.offset.to_le_bytes());
            out.extend_from_slice(&e.len.to_le_bytes());
            out.extend_from_slice(&e.n_postings.to_le_bytes());
            out.extend_from_slice(&e.doc_min.to_le_bytes());
            out.extend_from_slice(&e.doc_max.to_le_bytes());
            if self.format == RunFormat::Blocked {
                out.extend_from_slice(&e.max_tf.to_le_bytes());
                let (tag, b) = codec_tag(e.codec);
                out.push(tag);
                out.extend_from_slice(&b.to_le_bytes());
            }
        }
        out.extend_from_slice(&self.payload);
        out
    }

    /// Deserialize a run file (either format, dispatched on the magic).
    pub fn from_bytes(buf: &[u8]) -> Result<RunFile, RunFileError> {
        if buf.len() < HEADER_BYTES {
            return Err(RunFileError::Truncated);
        }
        let format = if &buf[..4] == RUN_MAGIC {
            RunFormat::Legacy
        } else if &buf[..4] == RUN_MAGIC_V2 {
            RunFormat::Blocked
        } else {
            return Err(RunFileError::Malformed);
        };
        let entry_bytes = match format {
            RunFormat::Legacy => ENTRY_BYTES_V1,
            RunFormat::Blocked => ENTRY_BYTES_V2,
        };
        let rd32 = |o: usize| u32::from_le_bytes(buf[o..o + 4].try_into().unwrap());
        let rd64 = |o: usize| u64::from_le_bytes(buf[o..o + 8].try_into().unwrap());
        let run_id = rd32(4);
        let indexer_id = rd32(8);
        let codec = codec_from_tag(buf[12], rd64(13)).ok_or(RunFileError::Malformed)?;
        let n = rd32(21) as usize;
        let payload_len = rd64(25) as usize;
        let table_start = HEADER_BYTES;
        let payload_start = table_start
            .checked_add(n.checked_mul(entry_bytes).ok_or(RunFileError::Malformed)?)
            .ok_or(RunFileError::Malformed)?;
        if buf.len() < payload_start.checked_add(payload_len).ok_or(RunFileError::Malformed)? {
            return Err(RunFileError::Truncated);
        }
        let mut entries = Vec::with_capacity(n.min(1 << 20));
        for i in 0..n {
            let o = table_start + i * entry_bytes;
            let (entry_codec, max_tf) = match format {
                RunFormat::Legacy => (codec, 0),
                RunFormat::Blocked => {
                    let c = codec_from_tag(buf[o + 32], rd64(o + 33))
                        .ok_or(RunFileError::Malformed)?;
                    if c == Codec::Auto {
                        // Entries must carry resolved codecs.
                        return Err(RunFileError::Malformed);
                    }
                    (c, rd32(o + 28))
                }
            };
            entries.push(RunEntry {
                handle: rd32(o),
                offset: rd64(o + 4),
                len: rd32(o + 12),
                n_postings: rd32(o + 16),
                doc_min: rd32(o + 20),
                doc_max: rd32(o + 24),
                codec: entry_codec,
                max_tf,
            });
        }
        for e in &entries {
            if (e.offset + e.len as u64) as usize > payload_len {
                return Err(RunFileError::Malformed);
            }
        }
        let payload = buf[payload_start..payload_start + payload_len].to_vec();
        Ok(RunFile { run_id, indexer_id, entries, payload, codec, format })
    }
}

/// All the run files one indexer produced, in run order; answers full-list
/// and range-narrowed lookups (the two §III.F retrieval benefits).
#[derive(Clone, Debug, Default)]
pub struct RunSet {
    runs: Vec<RunFile>,
}

impl RunSet {
    /// Empty set.
    pub fn new() -> Self {
        Self::default()
    }

    /// Append the next run (must be in run order).
    pub fn push(&mut self, run: RunFile) {
        if let Some(last) = self.runs.last() {
            assert!(run.run_id > last.run_id, "runs must be appended in order");
        }
        self.runs.push(run);
    }

    /// Runs held.
    pub fn runs(&self) -> &[RunFile] {
        &self.runs
    }

    /// Full postings list of `handle`: concatenation of its partial lists.
    pub fn fetch(&self, handle: u32) -> PostingsList {
        let mut out = PostingsList::new();
        for r in &self.runs {
            if let Some(part) = r.get(handle) {
                for p in part {
                    out.push(p);
                }
            }
        }
        out
    }

    /// A lazy skip-pointer cursor over the full list of `handle`, chaining
    /// its partial lists across runs (already in global doc order). `None`
    /// when no run contains the handle.
    pub fn cursor(&self, handle: u32) -> Result<Option<SetCursor<'_>>, CodecError> {
        let mut parts = Vec::new();
        let mut df = 0u64;
        for r in &self.runs {
            if let Some(e) = r.entry(handle) {
                df += e.n_postings as u64;
                parts.push((e.doc_max, r.cursor_of(e)?));
            }
        }
        if parts.is_empty() {
            return Ok(None);
        }
        Ok(Some(SetCursor::new(parts, df)))
    }

    /// Postings of `handle` restricted to documents in `[lo, hi]`. Only
    /// partial lists whose doc range overlaps are decoded; returns the
    /// postings and the number of runs actually decoded (so tests and
    /// benches can observe the §III.F narrowing benefit).
    pub fn fetch_range(&self, handle: u32, lo: DocId, hi: DocId) -> (Vec<Posting>, usize) {
        let mut out = Vec::new();
        let mut decoded = 0usize;
        for r in &self.runs {
            if let Some(e) = r.entry(handle) {
                if e.doc_max < lo.0 || e.doc_min > hi.0 {
                    continue;
                }
                decoded += 1;
                if let Some(part) = r.get(handle) {
                    out.extend(part.into_iter().filter(|p| p.doc >= lo && p.doc <= hi));
                }
            }
        }
        (out, decoded)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn artifact_names_roundtrip_and_reject_garbage() {
        assert_eq!(run_artifact_name(3, 41), "run_003_00041.iirf");
        assert_eq!(parse_run_artifact_name("run_003_00041.iirf"), Some((3, 41)));
        // Wide ids still parse (padding is a minimum, not a cap).
        assert_eq!(parse_run_artifact_name("run_1234_123456.iirf"), Some((1234, 123456)));
        for bad in [
            "run_000_00001_extra.iirf", // trailing garbage in the id field
            "run_000_00001.iirf.bak",   // trailing garbage after the suffix
            "run_000_.iirf",            // empty run id
            "run__00001.iirf",          // empty indexer id
            "run_00a_00001.iirf",       // non-digit
            "run_000.iirf",             // missing field
            "dictionary.bin",
        ] {
            assert_eq!(parse_run_artifact_name(bad), None, "{bad} must be rejected");
        }
    }

    fn list(docs: &[(u32, u32)]) -> PostingsList {
        docs.iter().map(|&(d, tf)| Posting { doc: DocId(d), tf }).collect()
    }

    fn sample_run(run_id: u32) -> RunFile {
        let base = run_id * 100;
        let l1 = list(&[(base, 2), (base + 5, 1)]);
        let l2 = list(&[(base + 1, 4)]);
        let pairs = [(7u32, l1), (3u32, l2)];
        let mut it = pairs.iter().map(|(h, l)| (*h, l));
        RunFile::build(run_id, 0, &mut it, Codec::VarByte)
    }

    #[test]
    fn build_sorts_entries_and_skips_empty() {
        let l1 = list(&[(1, 1)]);
        let empty = PostingsList::new();
        let pairs = [(9u32, l1), (2u32, empty)];
        let mut it = pairs.iter().map(|(h, l)| (*h, l));
        let run = RunFile::build(0, 0, &mut it, Codec::VarByte);
        assert_eq!(run.entries.len(), 1);
        assert_eq!(run.entries[0].handle, 9);
        assert_eq!(run.format, RunFormat::Blocked);
    }

    #[test]
    fn build_resolves_auto_per_list_and_records_max_tf() {
        let short = list(&[(1, 9), (5, 2)]);
        let medium: PostingsList = (0..500u32).map(|i| Posting { doc: DocId(i * 2), tf: 1 + i % 3 }).collect();
        let long: PostingsList = (0..5000u32).map(|i| Posting { doc: DocId(i * 3), tf: 1 }).collect();
        let pairs = [(1u32, short), (2u32, medium), (3u32, long)];
        let mut it = pairs.iter().map(|(h, l)| (*h, l));
        let run = RunFile::build(0, 0, &mut it, Codec::Auto);
        assert_eq!(run.entry(1).unwrap().codec, Codec::VarByte);
        assert_eq!(run.entry(2).unwrap().codec, Codec::PFor);
        assert_eq!(run.entry(3).unwrap().codec, Codec::Bp128);
        assert_eq!(run.entry(1).unwrap().max_tf, 9);
        assert_eq!(run.entry(2).unwrap().max_tf, 3);
        assert_eq!(run.max_tf(), 9);
        assert_eq!(run.block_count(), 1 + 4 + 40);
        // Every entry decodes back to its source list.
        for (h, l) in pairs.iter() {
            assert_eq!(run.get(*h).unwrap(), l.postings());
        }
    }

    #[test]
    fn get_decodes_partial_list() {
        let run = sample_run(1);
        assert_eq!(
            run.get(7).unwrap(),
            vec![Posting { doc: DocId(100), tf: 2 }, Posting { doc: DocId(105), tf: 1 }]
        );
        assert_eq!(run.get(3).unwrap(), vec![Posting { doc: DocId(101), tf: 4 }]);
        assert_eq!(run.get(99), None);
    }

    #[test]
    fn serialization_roundtrip_blocked() {
        for codec in [Codec::VarByte, Codec::Bp128, Codec::PFor, Codec::EliasFano, Codec::Auto] {
            let l = list(&[(0, 1), (9, 3)]);
            let pairs = [(1u32, l)];
            let mut it = pairs.iter().map(|(h, l)| (*h, l));
            let run = RunFile::build(5, 2, &mut it, codec);
            let bytes = run.to_bytes();
            assert_eq!(&bytes[..4], RUN_MAGIC_V2);
            let back = RunFile::from_bytes(&bytes).unwrap();
            assert_eq!(back, run);
        }
    }

    #[test]
    fn serialization_roundtrip_legacy() {
        for codec in [Codec::VarByte, Codec::Gamma, Codec::Golomb(8)] {
            let l = list(&[(0, 1), (9, 3)]);
            let pairs = [(1u32, l.clone())];
            let mut it = pairs.iter().map(|(h, l)| (*h, l));
            let run = RunFile::build_legacy(5, 2, &mut it, codec);
            let bytes = run.to_bytes();
            assert_eq!(&bytes[..4], RUN_MAGIC, "legacy files keep the v1 magic");
            let back = RunFile::from_bytes(&bytes).unwrap();
            assert_eq!(back, run, "format preserved across a round-trip");
            assert_eq!(back.get(1).unwrap(), l.postings());
        }
    }

    #[test]
    fn corrupt_rejected() {
        assert_eq!(RunFile::from_bytes(b"shrt"), Err(RunFileError::Truncated));
        let mut bytes = sample_run(0).to_bytes();
        bytes[0] = b'X';
        assert_eq!(RunFile::from_bytes(&bytes), Err(RunFileError::Malformed));
        let bytes = sample_run(0).to_bytes();
        assert_eq!(
            RunFile::from_bytes(&bytes[..bytes.len() - 1]),
            Err(RunFileError::Truncated)
        );
    }

    #[test]
    fn runset_concatenates_runs() {
        let mut rs = RunSet::new();
        rs.push(sample_run(0));
        rs.push(sample_run(1));
        rs.push(sample_run(2));
        let full = rs.fetch(7);
        let docs: Vec<u32> = full.postings().iter().map(|p| p.doc.0).collect();
        assert_eq!(docs, vec![0, 5, 100, 105, 200, 205]);
        // Sorted invariant held by construction.
        assert!(docs.windows(2).all(|w| w[0] < w[1]));
    }

    #[test]
    fn runset_cursor_matches_fetch() {
        let mut rs = RunSet::new();
        for r in 0..3 {
            rs.push(sample_run(r));
        }
        let mut c = rs.cursor(7).unwrap().unwrap();
        assert_eq!(c.df(), 6);
        let mut got = Vec::new();
        while let Some(p) = c.next().unwrap() {
            got.push(p);
        }
        assert_eq!(got, rs.fetch(7).postings());
        // advance_to across run boundaries.
        let mut c = rs.cursor(7).unwrap().unwrap();
        assert_eq!(c.advance_to(199).unwrap().unwrap().doc, DocId(200));
        assert!(rs.cursor(999).unwrap().is_none());
    }

    #[test]
    fn range_fetch_skips_nonoverlapping_runs() {
        let mut rs = RunSet::new();
        for r in 0..5 {
            rs.push(sample_run(r));
        }
        let (hits, decoded) = rs.fetch_range(7, DocId(100), DocId(205));
        assert_eq!(decoded, 2, "only runs 1 and 2 overlap");
        let docs: Vec<u32> = hits.iter().map(|p| p.doc.0).collect();
        assert_eq!(docs, vec![100, 105, 200, 205]);
        let (none, decoded) = rs.fetch_range(7, DocId(1000), DocId(2000));
        assert!(none.is_empty());
        assert_eq!(decoded, 0);
    }

    #[test]
    #[should_panic(expected = "in order")]
    fn out_of_order_runs_rejected() {
        let mut rs = RunSet::new();
        rs.push(sample_run(1));
        rs.push(sample_run(0));
    }
}
