//! Run output files (paper §III.F).
//!
//! "A separate output file is created for the postings lists generated
//! during a single run, whose header contains a mapping table indicating
//! the location and length of each postings list." Postings handles stored
//! in the dictionary index into these mapping tables; a term's full list is
//! the concatenation of its partial lists across runs, which is already
//! doc-ordered because runs are.

use crate::codec::{decode, encode, Codec};
use crate::posting::{Posting, PostingsList};
use ii_corpus::DocId;

/// Magic bytes of a run file.
pub const RUN_MAGIC: &[u8; 4] = b"IIRF";

/// One mapping-table row: where a partial postings list lives.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct RunEntry {
    /// Postings handle (dictionary pointer).
    pub handle: u32,
    /// Payload-relative byte offset.
    pub offset: u64,
    /// Encoded length in bytes.
    pub len: u32,
    /// Number of postings encoded.
    pub n_postings: u32,
    /// Smallest document ID in the partial list.
    pub doc_min: u32,
    /// Largest document ID in the partial list.
    pub doc_max: u32,
}

const ENTRY_BYTES: usize = 28;

/// A run file: header + mapping table + payload.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct RunFile {
    /// Which run produced this file.
    pub run_id: u32,
    /// Which indexer produced this file.
    pub indexer_id: u32,
    /// Mapping table, sorted by handle.
    pub entries: Vec<RunEntry>,
    /// Concatenated encoded postings.
    pub payload: Vec<u8>,
    /// Codec used for every list in this run.
    pub codec: Codec,
}

/// Errors from [`RunFile::from_bytes`].
#[derive(Debug, PartialEq, Eq)]
pub enum RunFileError {
    /// Wrong magic or impossible sizes.
    Malformed,
    /// Buffer too short.
    Truncated,
}

impl std::fmt::Display for RunFileError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RunFileError::Malformed => write!(f, "malformed run file"),
            RunFileError::Truncated => write!(f, "truncated run file"),
        }
    }
}

impl std::error::Error for RunFileError {}

/// Canonical on-disk artifact name of a run file: `run_IND_RUNID.iirf`,
/// zero-padded so lexicographic and numeric orders agree. Shared by the
/// pipeline's checkpoint commits and the index save/open paths.
pub fn run_artifact_name(indexer_id: u32, run_id: u32) -> String {
    format!("run_{indexer_id:03}_{run_id:05}.iirf")
}

/// Parse a name produced by [`run_artifact_name`] back into
/// `(indexer_id, run_id)`. Strict: both fields must be non-empty ASCII
/// digits and nothing may follow the run id — `run_000_00001_extra.iirf`
/// or `run_000_00001.iirf.bak` are rejected, not silently truncated.
pub fn parse_run_artifact_name(name: &str) -> Option<(u32, u32)> {
    let rest = name.strip_prefix("run_")?.strip_suffix(".iirf")?;
    let (indexer, run) = rest.split_once('_')?;
    let digits =
        |s: &str| !s.is_empty() && s.bytes().all(|b| b.is_ascii_digit());
    if !digits(indexer) || !digits(run) {
        return None;
    }
    Some((indexer.parse().ok()?, run.parse().ok()?))
}

fn codec_tag(c: Codec) -> (u8, u64) {
    match c {
        Codec::VarByte => (0, 0),
        Codec::Gamma => (1, 0),
        Codec::Golomb(b) => (2, b),
    }
}

fn codec_from_tag(tag: u8, b: u64) -> Option<Codec> {
    match tag {
        0 => Some(Codec::VarByte),
        1 => Some(Codec::Gamma),
        2 => Some(Codec::Golomb(b.max(1))),
        _ => None,
    }
}

impl RunFile {
    /// Build a run file from `(handle, list)` pairs (the end-of-run flush).
    /// Empty lists are skipped. Entries are stored sorted by handle.
    pub fn build(
        run_id: u32,
        indexer_id: u32,
        lists: &mut dyn Iterator<Item = (u32, &PostingsList)>,
        codec: Codec,
    ) -> RunFile {
        let mut pairs: Vec<(u32, &PostingsList)> =
            lists.filter(|(_, l)| !l.is_empty()).collect();
        pairs.sort_unstable_by_key(|(h, _)| *h);
        let mut entries = Vec::with_capacity(pairs.len());
        let mut payload = Vec::new();
        for (handle, list) in pairs {
            let bytes = encode(list.postings(), codec);
            let (lo, hi) = list.doc_range().expect("non-empty");
            entries.push(RunEntry {
                handle,
                offset: payload.len() as u64,
                len: bytes.len() as u32,
                n_postings: list.len() as u32,
                doc_min: lo.0,
                doc_max: hi.0,
            });
            payload.extend_from_slice(&bytes);
        }
        RunFile { run_id, indexer_id, entries, payload, codec }
    }

    /// Document range covered by the whole run, if any list is present.
    pub fn doc_range(&self) -> Option<(u32, u32)> {
        let lo = self.entries.iter().map(|e| e.doc_min).min()?;
        let hi = self.entries.iter().map(|e| e.doc_max).max()?;
        Some((lo, hi))
    }

    /// Look up the mapping-table row of `handle`.
    pub fn entry(&self, handle: u32) -> Option<&RunEntry> {
        self.entries
            .binary_search_by_key(&handle, |e| e.handle)
            .ok()
            .map(|i| &self.entries[i])
    }

    /// Decode the partial postings list of `handle` in this run.
    pub fn get(&self, handle: u32) -> Option<Vec<Posting>> {
        let e = self.entry(handle)?;
        let buf = &self.payload[e.offset as usize..(e.offset + e.len as u64) as usize];
        decode(buf, e.n_postings as usize, self.codec)
    }

    /// Serialize to bytes (what goes to disk).
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(32 + self.entries.len() * ENTRY_BYTES + self.payload.len());
        out.extend_from_slice(RUN_MAGIC);
        out.extend_from_slice(&self.run_id.to_le_bytes());
        out.extend_from_slice(&self.indexer_id.to_le_bytes());
        let (tag, b) = codec_tag(self.codec);
        out.push(tag);
        out.extend_from_slice(&b.to_le_bytes());
        out.extend_from_slice(&(self.entries.len() as u32).to_le_bytes());
        out.extend_from_slice(&(self.payload.len() as u64).to_le_bytes());
        for e in &self.entries {
            out.extend_from_slice(&e.handle.to_le_bytes());
            out.extend_from_slice(&e.offset.to_le_bytes());
            out.extend_from_slice(&e.len.to_le_bytes());
            out.extend_from_slice(&e.n_postings.to_le_bytes());
            out.extend_from_slice(&e.doc_min.to_le_bytes());
            out.extend_from_slice(&e.doc_max.to_le_bytes());
        }
        out.extend_from_slice(&self.payload);
        out
    }

    /// Deserialize a run file.
    pub fn from_bytes(buf: &[u8]) -> Result<RunFile, RunFileError> {
        if buf.len() < 33 {
            return Err(RunFileError::Truncated);
        }
        if &buf[..4] != RUN_MAGIC {
            return Err(RunFileError::Malformed);
        }
        let rd32 = |o: usize| u32::from_le_bytes([buf[o], buf[o + 1], buf[o + 2], buf[o + 3]]);
        let rd64 = |o: usize| {
            u64::from_le_bytes([
                buf[o],
                buf[o + 1],
                buf[o + 2],
                buf[o + 3],
                buf[o + 4],
                buf[o + 5],
                buf[o + 6],
                buf[o + 7],
            ])
        };
        let run_id = rd32(4);
        let indexer_id = rd32(8);
        let codec = codec_from_tag(buf[12], rd64(13)).ok_or(RunFileError::Malformed)?;
        let n = rd32(21) as usize;
        let payload_len = rd64(25) as usize;
        let table_start = 33;
        let payload_start = table_start + n * ENTRY_BYTES;
        if buf.len() < payload_start + payload_len {
            return Err(RunFileError::Truncated);
        }
        let mut entries = Vec::with_capacity(n);
        for i in 0..n {
            let o = table_start + i * ENTRY_BYTES;
            entries.push(RunEntry {
                handle: rd32(o),
                offset: rd64(o + 4),
                len: rd32(o + 12),
                n_postings: rd32(o + 16),
                doc_min: rd32(o + 20),
                doc_max: rd32(o + 24),
            });
        }
        for e in &entries {
            if (e.offset + e.len as u64) as usize > payload_len {
                return Err(RunFileError::Malformed);
            }
        }
        let payload = buf[payload_start..payload_start + payload_len].to_vec();
        Ok(RunFile { run_id, indexer_id, entries, payload, codec })
    }
}

/// All the run files one indexer produced, in run order; answers full-list
/// and range-narrowed lookups (the two §III.F retrieval benefits).
#[derive(Clone, Debug, Default)]
pub struct RunSet {
    runs: Vec<RunFile>,
}

impl RunSet {
    /// Empty set.
    pub fn new() -> Self {
        Self::default()
    }

    /// Append the next run (must be in run order).
    pub fn push(&mut self, run: RunFile) {
        if let Some(last) = self.runs.last() {
            assert!(run.run_id > last.run_id, "runs must be appended in order");
        }
        self.runs.push(run);
    }

    /// Runs held.
    pub fn runs(&self) -> &[RunFile] {
        &self.runs
    }

    /// Full postings list of `handle`: concatenation of its partial lists.
    pub fn fetch(&self, handle: u32) -> PostingsList {
        let mut out = PostingsList::new();
        for r in &self.runs {
            if let Some(part) = r.get(handle) {
                for p in part {
                    out.push(p);
                }
            }
        }
        out
    }

    /// Postings of `handle` restricted to documents in `[lo, hi]`. Only
    /// partial lists whose doc range overlaps are decoded; returns the
    /// postings and the number of runs actually decoded (so tests and
    /// benches can observe the §III.F narrowing benefit).
    pub fn fetch_range(&self, handle: u32, lo: DocId, hi: DocId) -> (Vec<Posting>, usize) {
        let mut out = Vec::new();
        let mut decoded = 0usize;
        for r in &self.runs {
            if let Some(e) = r.entry(handle) {
                if e.doc_max < lo.0 || e.doc_min > hi.0 {
                    continue;
                }
                decoded += 1;
                if let Some(part) = r.get(handle) {
                    out.extend(part.into_iter().filter(|p| p.doc >= lo && p.doc <= hi));
                }
            }
        }
        (out, decoded)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn artifact_names_roundtrip_and_reject_garbage() {
        assert_eq!(run_artifact_name(3, 41), "run_003_00041.iirf");
        assert_eq!(parse_run_artifact_name("run_003_00041.iirf"), Some((3, 41)));
        // Wide ids still parse (padding is a minimum, not a cap).
        assert_eq!(parse_run_artifact_name("run_1234_123456.iirf"), Some((1234, 123456)));
        for bad in [
            "run_000_00001_extra.iirf", // trailing garbage in the id field
            "run_000_00001.iirf.bak",   // trailing garbage after the suffix
            "run_000_.iirf",            // empty run id
            "run__00001.iirf",          // empty indexer id
            "run_00a_00001.iirf",       // non-digit
            "run_000.iirf",             // missing field
            "dictionary.bin",
        ] {
            assert_eq!(parse_run_artifact_name(bad), None, "{bad} must be rejected");
        }
    }

    fn list(docs: &[(u32, u32)]) -> PostingsList {
        docs.iter().map(|&(d, tf)| Posting { doc: DocId(d), tf }).collect()
    }

    fn sample_run(run_id: u32) -> RunFile {
        let base = run_id * 100;
        let l1 = list(&[(base, 2), (base + 5, 1)]);
        let l2 = list(&[(base + 1, 4)]);
        let pairs = [(7u32, l1), (3u32, l2)];
        let mut it = pairs.iter().map(|(h, l)| (*h, l));
        RunFile::build(run_id, 0, &mut it, Codec::VarByte)
    }

    #[test]
    fn build_sorts_entries_and_skips_empty() {
        let l1 = list(&[(1, 1)]);
        let empty = PostingsList::new();
        let pairs = [(9u32, l1), (2u32, empty)];
        let mut it = pairs.iter().map(|(h, l)| (*h, l));
        let run = RunFile::build(0, 0, &mut it, Codec::VarByte);
        assert_eq!(run.entries.len(), 1);
        assert_eq!(run.entries[0].handle, 9);
    }

    #[test]
    fn get_decodes_partial_list() {
        let run = sample_run(1);
        assert_eq!(
            run.get(7).unwrap(),
            vec![Posting { doc: DocId(100), tf: 2 }, Posting { doc: DocId(105), tf: 1 }]
        );
        assert_eq!(run.get(3).unwrap(), vec![Posting { doc: DocId(101), tf: 4 }]);
        assert_eq!(run.get(99), None);
    }

    #[test]
    fn serialization_roundtrip() {
        for codec in [Codec::VarByte, Codec::Gamma, Codec::Golomb(8)] {
            let l = list(&[(0, 1), (9, 3)]);
            let pairs = [(1u32, l)];
            let mut it = pairs.iter().map(|(h, l)| (*h, l));
            let run = RunFile::build(5, 2, &mut it, codec);
            let bytes = run.to_bytes();
            let back = RunFile::from_bytes(&bytes).unwrap();
            assert_eq!(back, run);
        }
    }

    #[test]
    fn corrupt_rejected() {
        assert_eq!(RunFile::from_bytes(b"shrt"), Err(RunFileError::Truncated));
        let mut bytes = sample_run(0).to_bytes();
        bytes[0] = b'X';
        assert_eq!(RunFile::from_bytes(&bytes), Err(RunFileError::Malformed));
        let bytes = sample_run(0).to_bytes();
        assert_eq!(
            RunFile::from_bytes(&bytes[..bytes.len() - 1]),
            Err(RunFileError::Truncated)
        );
    }

    #[test]
    fn runset_concatenates_runs() {
        let mut rs = RunSet::new();
        rs.push(sample_run(0));
        rs.push(sample_run(1));
        rs.push(sample_run(2));
        let full = rs.fetch(7);
        let docs: Vec<u32> = full.postings().iter().map(|p| p.doc.0).collect();
        assert_eq!(docs, vec![0, 5, 100, 105, 200, 205]);
        // Sorted invariant held by construction.
        assert!(docs.windows(2).all(|w| w[0] < w[1]));
    }

    #[test]
    fn range_fetch_skips_nonoverlapping_runs() {
        let mut rs = RunSet::new();
        for r in 0..5 {
            rs.push(sample_run(r));
        }
        let (hits, decoded) = rs.fetch_range(7, DocId(100), DocId(205));
        assert_eq!(decoded, 2, "only runs 1 and 2 overlap");
        let docs: Vec<u32> = hits.iter().map(|p| p.doc.0).collect();
        assert_eq!(docs, vec![100, 105, 200, 205]);
        let (none, decoded) = rs.fetch_range(7, DocId(1000), DocId(2000));
        assert!(none.is_empty());
        assert_eq!(decoded, 0);
    }

    #[test]
    #[should_panic(expected = "in order")]
    fn out_of_order_runs_rejected() {
        let mut rs = RunSet::new();
        rs.push(sample_run(1));
        rs.push(sample_run(0));
    }
}
