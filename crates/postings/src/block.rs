//! Fixed 128-document block layout with per-list skip tables.
//!
//! Every list encoded through [`ListEncoder`] is laid out as
//!
//! ```text
//! [skip table: ceil(n/128) x 12 bytes] [block bodies]
//! ```
//!
//! with one skip entry per block: the block's first document ID, the byte
//! offset of its body relative to the start of the block data, and the
//! maximum term frequency inside the block — the block-max metadata
//! WAND/MaxScore-style query evaluation needs. The posting count is not
//! stored: callers already know `n` (run entries and the dictionary carry
//! it), and every block except the last holds exactly [`BLOCK_LEN`]
//! postings.
//!
//! Blocks are *block-independent*: gaps are relative to the block's own
//! first document (which lives only in the skip entry, so the first gap is
//! implicit), and all stored values are biased down by one (`gap - 1`,
//! `tf - 1`) so a run of unit gaps packs at width zero. Independence is
//! what makes two things cheap:
//!
//! * decoders can seek straight to a block picked from the skip table
//!   without touching its predecessors ([`crate::cursor::ListCursor`]);
//! * the merge can copy a whole block *verbatim* when source and target
//!   codecs agree ([`ListEncoder::push_raw_block`]), because re-encoding
//!   the same 128 postings would reproduce the same bytes.

use crate::bits;
use crate::codec::{check_alloc, Codec, CodecError};
use crate::posting::Posting;
use crate::varbyte;
use ii_corpus::DocId;

/// Postings per block. Fixed so skip-table geometry is derivable from the
/// posting count alone.
pub const BLOCK_LEN: usize = 128;

/// Serialized size of one [`SkipEntry`].
pub const SKIP_ENTRY_BYTES: usize = 12;

/// One skip-table entry: everything needed to locate and pre-judge a block
/// without decoding it.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct SkipEntry {
    /// First document ID in the block (also the base all in-block gaps are
    /// relative to).
    pub first_doc: u32,
    /// Byte offset of the block body, relative to the end of the skip
    /// table.
    pub offset: u32,
    /// Largest term frequency in the block (block-max metadata).
    pub max_tf: u32,
}

/// Number of blocks an `n`-posting list occupies.
pub fn n_blocks(n: usize) -> usize {
    n.div_ceil(BLOCK_LEN)
}

/// Number of postings in block `b` of an `n`-posting list.
pub fn len_of_block(n: usize, b: usize) -> usize {
    debug_assert!(b < n_blocks(n));
    (n - b * BLOCK_LEN).min(BLOCK_LEN)
}

/// Bytes of skip table preceding the block data of an `n`-posting list.
pub fn skip_table_bytes(n: usize) -> usize {
    n_blocks(n) * SKIP_ENTRY_BYTES
}

fn write_skip(e: SkipEntry, out: &mut Vec<u8>) {
    out.extend_from_slice(&e.first_doc.to_le_bytes());
    out.extend_from_slice(&e.offset.to_le_bytes());
    out.extend_from_slice(&e.max_tf.to_le_bytes());
}

fn read_skip(skip: &[u8], b: usize) -> SkipEntry {
    let s = &skip[b * SKIP_ENTRY_BYTES..(b + 1) * SKIP_ENTRY_BYTES];
    SkipEntry {
        first_doc: u32::from_le_bytes(s[0..4].try_into().unwrap()),
        offset: u32::from_le_bytes(s[4..8].try_into().unwrap()),
        max_tf: u32::from_le_bytes(s[8..12].try_into().unwrap()),
    }
}

/// Reusable per-block decode scratch (biased gaps in `a`, biased tfs in
/// `b`). Fixed [`BLOCK_LEN`] arrays, not `Vec`s: section decoders write
/// through subslices, which keeps the per-value hot loops free of
/// capacity checks.
#[derive(Debug)]
pub(crate) struct BlockScratch {
    pub(crate) a: [u32; BLOCK_LEN],
    pub(crate) b: [u32; BLOCK_LEN],
}

impl Default for BlockScratch {
    fn default() -> Self {
        BlockScratch { a: [0; BLOCK_LEN], b: [0; BLOCK_LEN] }
    }
}

/// Encode one block body (without its skip entry) into `out`. `ps` holds
/// `1..=BLOCK_LEN` doc-sorted postings; `codec` must be concrete.
fn encode_block(codec: Codec, ps: &[Posting], out: &mut Vec<u8>) {
    let m = ps.len();
    debug_assert!((1..=BLOCK_LEN).contains(&m));
    let mut gaps = [0u32; BLOCK_LEN]; // gaps[i] = doc[i+1] - doc[i] - 1
    let mut tfs = [0u32; BLOCK_LEN]; // tf - 1
    for i in 1..m {
        debug_assert!(ps[i].doc > ps[i - 1].doc, "block postings out of order");
        gaps[i - 1] = ps[i].doc.0 - ps[i - 1].doc.0 - 1;
    }
    for i in 0..m {
        debug_assert!(ps[i].tf >= 1, "postings carry at least one occurrence");
        tfs[i] = ps[i].tf - 1;
    }
    let gaps = &gaps[..m - 1];
    let tfs = &tfs[..m];
    match codec {
        Codec::VarByte => {
            for &g in gaps {
                varbyte::encode_u32(g, out);
            }
            for &t in tfs {
                varbyte::encode_u32(t, out);
            }
        }
        Codec::Bp128 => {
            let dw = gaps.iter().map(|&g| bits::bits_needed(g)).max().unwrap_or(0);
            let tw = tfs.iter().map(|&t| bits::bits_needed(t)).max().unwrap_or(0);
            out.push(dw as u8);
            out.push(tw as u8);
            bits::pack_bits(gaps, dw, out);
            bits::pack_bits(tfs, tw, out);
        }
        Codec::PFor => {
            pfor_encode(gaps, out);
            pfor_encode(tfs, out);
        }
        Codec::EliasFano => {
            // Doc section: the m-1 non-first docs as y = doc - first - 1,
            // strictly increasing.
            let mut ys = [0u32; BLOCK_LEN];
            for i in 1..m {
                ys[i - 1] = ps[i].doc.0 - ps[0].doc.0 - 1;
            }
            ef_encode(&ys[..m - 1], out);
            let tw = tfs.iter().map(|&t| bits::bits_needed(t)).max().unwrap_or(0);
            out.push(tw as u8);
            bits::pack_bits(tfs, tw, out);
        }
        Codec::Gamma => {
            let mut w = bits::BitWriter::new();
            for &g in gaps {
                bits::gamma_encode(g as u64 + 1, &mut w); // actual gap >= 1
            }
            for &t in tfs {
                bits::gamma_encode(t as u64 + 1, &mut w); // actual tf >= 1
            }
            out.extend_from_slice(&w.finish());
        }
        Codec::Golomb(b) => {
            let mut w = bits::BitWriter::new();
            for &g in gaps {
                bits::golomb_encode(g as u64 + 1, b, &mut w);
            }
            for &t in tfs {
                bits::gamma_encode(t as u64 + 1, &mut w);
            }
            out.extend_from_slice(&w.finish());
        }
        Codec::Auto => unreachable!("Auto must be resolved before block encode"),
    }
}

/// Decode one block body into `out`. `buf` is exactly the block body (as
/// delimited by skip offsets), `first_doc` comes from the skip entry, `m`
/// is the block's posting count.
pub(crate) fn decode_block(
    codec: Codec,
    buf: &[u8],
    first_doc: u32,
    m: usize,
    scratch: &mut BlockScratch,
    out: &mut Vec<Posting>,
) -> Result<(), CodecError> {
    debug_assert!((1..=BLOCK_LEN).contains(&m));
    let gaps = &mut scratch.a[..m - 1];
    let tfs = &mut scratch.b[..m];
    match codec {
        Codec::VarByte => {
            let mut pos = 0usize;
            for g in gaps.iter_mut() {
                *g = varbyte::decode_u32(buf, &mut pos).ok_or(CodecError::Truncated)?;
            }
            for t in tfs.iter_mut() {
                *t = varbyte::decode_u32(buf, &mut pos).ok_or(CodecError::Truncated)?;
            }
        }
        Codec::Bp128 => {
            let dw = *buf.first().ok_or(CodecError::Truncated)?;
            let tw = *buf.get(1).ok_or(CodecError::Truncated)?;
            if dw > 32 {
                return Err(CodecError::BadBitWidth(dw));
            }
            if tw > 32 {
                return Err(CodecError::BadBitWidth(tw));
            }
            let mut pos = 2usize;
            pos += bits::unpack_bits_into(&buf[pos..], gaps, dw as u32)
                .ok_or(CodecError::Truncated)?;
            bits::unpack_bits_into(&buf[pos..], tfs, tw as u32)
                .ok_or(CodecError::Truncated)?;
        }
        Codec::PFor => {
            let mut pos = 0usize;
            pfor_decode(buf, &mut pos, gaps)?;
            pfor_decode(buf, &mut pos, tfs)?;
        }
        Codec::EliasFano => {
            // Parse the EF header up front so the tf section can be
            // decoded first, then select the high bits straight into
            // postings: one emission pass, no separate gap-rebuild sweep.
            let k = m - 1;
            let mut pos = 0usize;
            let mut l = 0u32;
            let mut high: &[u8] = &[];
            if k > 0 {
                let lb = *buf.first().ok_or(CodecError::Truncated)?;
                if lb > 31 {
                    return Err(CodecError::BadBitWidth(lb));
                }
                l = lb as u32;
                let hb = buf
                    .get(1..3)
                    .map(|s| u16::from_le_bytes(s.try_into().unwrap()) as usize)
                    .ok_or(CodecError::Truncated)?;
                high = buf.get(3..3 + hb).ok_or(CodecError::Truncated)?;
                pos = 3 + hb;
                pos +=
                    bits::unpack_bits_into(&buf[pos..], gaps, l).ok_or(CodecError::Truncated)?;
            }
            let tw = *buf.get(pos).ok_or(CodecError::Truncated)?;
            if tw > 32 {
                return Err(CodecError::BadBitWidth(tw));
            }
            pos += 1;
            bits::unpack_bits_into(&buf[pos..], tfs, tw as u32)
                .ok_or(CodecError::Truncated)?;
            let tf0 = tfs[0].checked_add(1).ok_or(CodecError::Overflow)?;
            out.push(Posting { doc: DocId(first_doc), tf: tf0 });
            // Select the k ones a 64-bit word at a time: the i-th one at
            // bit p encodes high bucket p - i (p >= i always — i ones
            // precede it). Elias-Fano stores absolute (block-relative)
            // positions, not gaps, so docs are emitted directly; strict
            // monotonicity guards hostile low bits within a bucket. The
            // outer loop walks the low bits and tfs in lockstep, so the
            // hot path has no bounds checks; the inner scanner refills a
            // word only when the current one runs dry.
            let ys = &gaps[..k];
            let mut word_iter = high.chunks(8).map(|chunk| match <[u8; 8]>::try_from(chunk) {
                Ok(b) => u64::from_le_bytes(b),
                Err(_) => {
                    let mut b = [0u8; 8];
                    b[..chunk.len()].copy_from_slice(chunk);
                    u64::from_le_bytes(b)
                }
            });
            let mut prev = first_doc;
            let mut w = 0u64;
            // Starts one word "before" the section so the first refill
            // lands base_bit on 0; never read while w == 0.
            let mut base_bit = 0usize.wrapping_sub(64);
            for (i, (&low, &t)) in ys.iter().zip(tfs[1..].iter()).enumerate() {
                while w == 0 {
                    w = word_iter.next().ok_or(CodecError::Truncated)?;
                    base_bit = base_bit.wrapping_add(64);
                }
                let p = base_bit + w.trailing_zeros() as usize;
                w &= w - 1;
                let y = ((p - i) as u64) << l | u64::from(low);
                let doc = u32::try_from(first_doc as u64 + y + 1)
                    .map_err(|_| CodecError::Overflow)?;
                if doc <= prev {
                    return Err(CodecError::NonMonotone);
                }
                let tf = t.checked_add(1).ok_or(CodecError::Overflow)?;
                out.push(Posting { doc: DocId(doc), tf });
                prev = doc;
            }
            return Ok(());
        }
        Codec::Gamma | Codec::Golomb(_) => {
            let mut r = bits::BitReader::new(buf);
            for g in gaps.iter_mut() {
                let v = match codec {
                    Codec::Gamma => bits::gamma_decode(&mut r),
                    Codec::Golomb(b) => bits::golomb_decode(b, &mut r),
                    _ => unreachable!(),
                }
                .ok_or(CodecError::Truncated)?;
                *g = u32::try_from(v - 1).map_err(|_| CodecError::Overflow)?;
            }
            for t in tfs.iter_mut() {
                let v = bits::gamma_decode(&mut r).ok_or(CodecError::Truncated)?;
                *t = u32::try_from(v - 1).map_err(|_| CodecError::Overflow)?;
            }
        }
        Codec::Auto => unreachable!("Auto must be resolved before block decode"),
    }
    // Common tail for gap-coded bodies: rebuild docs from biased gaps
    // (strictly increasing by construction) and unbias tfs.
    let tf0 = tfs[0].checked_add(1).ok_or(CodecError::Overflow)?;
    out.push(Posting { doc: DocId(first_doc), tf: tf0 });
    let mut doc = first_doc;
    for (&g, &t) in gaps.iter().zip(tfs[1..].iter()) {
        doc = doc
            .checked_add(g)
            .and_then(|d| d.checked_add(1))
            .ok_or(CodecError::Overflow)?;
        let tf = t.checked_add(1).ok_or(CodecError::Overflow)?;
        out.push(Posting { doc: DocId(doc), tf });
    }
    Ok(())
}

/// Fraction of a block allowed to be PFor exceptions before widening the
/// base bit width (1/8, the classic NewPFD budget).
const PFOR_EXCEPTION_SHIFT: usize = 3;

/// Encode one PFor section: `[width u8][n_exceptions u8]`, packed low bits
/// for every value, then `(slot u8, varbyte high-bits)` per exception.
fn pfor_encode(vals: &[u32], out: &mut Vec<u8>) {
    let m = vals.len();
    if m == 0 {
        return;
    }
    // counts[w] = number of values needing exactly w bits.
    let mut counts = [0usize; 33];
    for &v in vals {
        counts[bits::bits_needed(v) as usize] += 1;
    }
    // Smallest width whose exception count fits the budget.
    let budget = m >> PFOR_EXCEPTION_SHIFT;
    let mut width = 32u32;
    let mut over = 0usize; // values needing more than `width` bits
    while width > 0 && over + counts[width as usize] <= budget {
        over += counts[width as usize];
        width -= 1;
    }
    let mask: u32 = if width == 32 { u32::MAX } else { (1u32 << width) - 1 };
    out.push(width as u8);
    out.push(over as u8);
    let mut lows = [0u32; BLOCK_LEN];
    for (i, &v) in vals.iter().enumerate() {
        lows[i] = v & mask;
    }
    bits::pack_bits(&lows[..m], width, out);
    for (i, &v) in vals.iter().enumerate() {
        if bits::bits_needed(v) > width {
            out.push(i as u8);
            varbyte::encode_u32(v >> width, out);
        }
    }
}

/// Decode one PFor section of `out.len()` values, advancing `pos`.
fn pfor_decode(buf: &[u8], pos: &mut usize, out: &mut [u32]) -> Result<(), CodecError> {
    let m = out.len();
    if m == 0 {
        return Ok(());
    }
    let width = *buf.get(*pos).ok_or(CodecError::Truncated)?;
    let n_exc = *buf.get(*pos + 1).ok_or(CodecError::Truncated)?;
    if width > 32 {
        return Err(CodecError::BadBitWidth(width));
    }
    *pos += 2;
    *pos += bits::unpack_bits_into(&buf[*pos..], out, width as u32)
        .ok_or(CodecError::Truncated)?;
    for _ in 0..n_exc {
        let slot = *buf.get(*pos).ok_or(CodecError::Truncated)?;
        *pos += 1;
        if slot as usize >= m {
            return Err(CodecError::ExceptionOverflow { index: slot, block_len: m as u8 });
        }
        let high = varbyte::decode_u32(buf, pos).ok_or(CodecError::Truncated)?;
        let patched = (high as u64) << width | out[slot as usize] as u64;
        out[slot as usize] = u32::try_from(patched).map_err(|_| CodecError::Overflow)?;
    }
    Ok(())
}

/// Encode one Elias-Fano section for strictly increasing `ys`:
/// `[l u8][high_bytes u16][unary high bits, LSB-first][packed low bits]`.
/// Empty `ys` writes nothing (the caller knows the count).
fn ef_encode(ys: &[u32], out: &mut Vec<u8>) {
    let k = ys.len();
    if k == 0 {
        return;
    }
    let u = *ys.last().unwrap() as u64;
    let per = u / k as u64;
    let l: u32 = if per >= 2 { 63 - per.leading_zeros() } else { 0 };
    out.push(l as u8);
    // The i-th one sits at bit i + (y_i >> l); with l = floor(log2(u/k))
    // the high region stays under 3k bits.
    let n_high_bits = k + (u >> l) as usize;
    let high_bytes = n_high_bits.div_ceil(8);
    out.extend_from_slice(&(high_bytes as u16).to_le_bytes());
    let start = out.len();
    out.resize(start + high_bytes, 0);
    for (i, &y) in ys.iter().enumerate() {
        let p = i + (y >> l) as usize;
        out[start + p / 8] |= 1 << (p % 8);
    }
    let mask: u32 = if l == 0 { 0 } else { (1u32 << l) - 1 };
    let mut lows = [0u32; BLOCK_LEN];
    for (i, &y) in ys.iter().enumerate() {
        lows[i] = y & mask;
    }
    bits::pack_bits(&lows[..k], l, out);
}

/// A fully encoded block-layout list: skip table followed by block data.
#[derive(Clone, Debug)]
pub struct EncodedList {
    /// Serialized list (skip table + block bodies).
    pub bytes: Vec<u8>,
    /// Postings encoded.
    pub n_postings: usize,
    /// Largest term frequency across the whole list.
    pub max_tf: u32,
}

/// Streaming encoder for the block layout. Push postings (or whole raw
/// blocks during a codec-aligned merge); `finish` seals any partial tail
/// block and concatenates skip table + data. Pushing the same postings
/// through any interleaving of [`ListEncoder::push`] and
/// [`ListEncoder::push_raw_block`] yields byte-identical output.
#[derive(Debug)]
pub struct ListEncoder {
    codec: Codec,
    skip: Vec<u8>,
    data: Vec<u8>,
    staging: Vec<Posting>,
    n: usize,
    max_tf: u32,
}

impl ListEncoder {
    /// New encoder for a concrete (non-[`Codec::Auto`]) codec.
    pub fn new(codec: Codec) -> Self {
        assert!(codec != Codec::Auto, "resolve Auto before constructing a ListEncoder");
        ListEncoder {
            codec,
            skip: Vec::new(),
            data: Vec::new(),
            staging: Vec::with_capacity(BLOCK_LEN),
            n: 0,
            max_tf: 0,
        }
    }

    /// Append one posting (strictly increasing doc order).
    pub fn push(&mut self, p: Posting) {
        self.staging.push(p);
        self.n += 1;
        if self.staging.len() == BLOCK_LEN {
            self.seal();
        }
    }

    fn seal(&mut self) {
        let block_max = self.staging.iter().map(|p| p.tf).max().unwrap();
        write_skip(
            SkipEntry {
                first_doc: self.staging[0].doc.0,
                offset: self.data.len() as u32,
                max_tf: block_max,
            },
            &mut self.skip,
        );
        encode_block(self.codec, &self.staging, &mut self.data);
        self.max_tf = self.max_tf.max(block_max);
        self.staging.clear();
    }

    /// True when the encoder sits on a block boundary, i.e. a full raw
    /// block may be copied verbatim.
    pub fn at_block_boundary(&self) -> bool {
        self.staging.is_empty()
    }

    /// Copy a full ([`BLOCK_LEN`]-posting) encoded block verbatim. Only
    /// valid on a block boundary; block independence makes the copied
    /// bytes identical to what re-encoding the block's postings would
    /// produce.
    pub fn push_raw_block(&mut self, entry: SkipEntry, body: &[u8]) {
        assert!(self.at_block_boundary(), "raw block copy mid-block");
        write_skip(
            SkipEntry {
                first_doc: entry.first_doc,
                offset: self.data.len() as u32,
                max_tf: entry.max_tf,
            },
            &mut self.skip,
        );
        self.data.extend_from_slice(body);
        self.n += BLOCK_LEN;
        self.max_tf = self.max_tf.max(entry.max_tf);
    }

    /// Postings pushed so far.
    pub fn len(&self) -> usize {
        self.n
    }

    /// True when nothing has been pushed.
    pub fn is_empty(&self) -> bool {
        self.n == 0
    }

    /// Seal the tail block and return the serialized list.
    pub fn finish(mut self) -> EncodedList {
        if !self.staging.is_empty() {
            self.seal();
        }
        let mut bytes = self.skip;
        bytes.extend_from_slice(&self.data);
        EncodedList { bytes, n_postings: self.n, max_tf: self.max_tf }
    }
}

/// Encode a whole list into the block layout. [`Codec::Auto`] resolves by
/// list length.
pub fn encode_list(ps: &[Posting], codec: Codec) -> EncodedList {
    let mut enc = ListEncoder::new(codec.resolve(ps.len()));
    for &p in ps {
        enc.push(p);
    }
    enc.finish()
}

/// Decode a block-layout list of `n` postings.
pub fn decode_list(buf: &[u8], n: usize, codec: Codec) -> Result<Vec<Posting>, CodecError> {
    check_alloc(buf, n)?;
    let blocks = BlockedList::parse(buf, n)?;
    let codec = codec.resolve(n);
    let mut out = Vec::with_capacity(n);
    let mut scratch = BlockScratch::default();
    let mut prev_last: Option<u32> = None;
    for b in 0..blocks.n_blocks() {
        let e = blocks.entry(b);
        if let Some(d) = prev_last {
            if e.first_doc <= d {
                return Err(CodecError::NonMonotone);
            }
        }
        decode_block(codec, blocks.body(b)?, e.first_doc, blocks.len_of(b), &mut scratch, &mut out)?;
        prev_last = Some(out.last().unwrap().doc.0);
    }
    Ok(out)
}

/// A parsed (but not decoded) block-layout list: skip table plus block
/// data, with offset-checked access to individual block bodies.
#[derive(Clone, Copy, Debug)]
pub struct BlockedList<'a> {
    skip: &'a [u8],
    data: &'a [u8],
    n: usize,
}

impl<'a> BlockedList<'a> {
    /// Split `buf` into skip table and block data for an `n`-posting list.
    pub fn parse(buf: &'a [u8], n: usize) -> Result<Self, CodecError> {
        if n == 0 {
            return if buf.is_empty() {
                Ok(BlockedList { skip: &[], data: &[], n: 0 })
            } else {
                Err(CodecError::Malformed("bytes present for empty list"))
            };
        }
        let skip_len = skip_table_bytes(n);
        if buf.len() < skip_len {
            return Err(CodecError::Truncated);
        }
        let (skip, data) = buf.split_at(skip_len);
        Ok(BlockedList { skip, data, n })
    }

    /// Number of blocks.
    pub fn n_blocks(&self) -> usize {
        n_blocks(self.n)
    }

    /// Number of postings in block `b`.
    pub fn len_of(&self, b: usize) -> usize {
        len_of_block(self.n, b)
    }

    /// Skip entry of block `b`.
    pub fn entry(&self, b: usize) -> SkipEntry {
        read_skip(self.skip, b)
    }

    /// The encoded body of block `b`, bounds-checked against the skip
    /// offsets.
    pub fn body(&self, b: usize) -> Result<&'a [u8], CodecError> {
        let start = self.entry(b).offset as usize;
        let end = if b + 1 < self.n_blocks() {
            self.entry(b + 1).offset as usize
        } else {
            self.data.len()
        };
        if start > end || end > self.data.len() {
            return Err(CodecError::Malformed("skip offsets out of order"));
        }
        Ok(&self.data[start..end])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mklist(n: usize, gap: u32, tf: u32) -> Vec<Posting> {
        (0..n as u32).map(|i| Posting { doc: DocId(7 + i * gap), tf: 1 + (i % tf.max(1)) }).collect()
    }

    const BLOCK_CODECS: [Codec; 6] = [
        Codec::VarByte,
        Codec::Gamma,
        Codec::Golomb(8),
        Codec::Bp128,
        Codec::PFor,
        Codec::EliasFano,
    ];

    #[test]
    fn roundtrip_block_boundaries() {
        for n in [1usize, 2, 127, 128, 129, 255, 256, 257, 1000] {
            let list = mklist(n, 3, 5);
            for codec in BLOCK_CODECS {
                let enc = encode_list(&list, codec);
                assert_eq!(enc.n_postings, n);
                assert_eq!(enc.max_tf, list.iter().map(|p| p.tf).max().unwrap());
                let dec = decode_list(&enc.bytes, n, codec).unwrap();
                assert_eq!(dec, list, "{codec:?} n={n}");
            }
        }
    }

    #[test]
    fn skip_entries_expose_block_maxima() {
        let list: Vec<Posting> =
            (0..300u32).map(|i| Posting { doc: DocId(i * 2), tf: if i == 200 { 99 } else { 1 } }).collect();
        let enc = encode_list(&list, Codec::Bp128);
        let blocks = BlockedList::parse(&enc.bytes, 300).unwrap();
        assert_eq!(blocks.n_blocks(), 3);
        assert_eq!(blocks.entry(0).first_doc, 0);
        assert_eq!(blocks.entry(1).first_doc, 256);
        assert_eq!(blocks.entry(0).max_tf, 1);
        assert_eq!(blocks.entry(1).max_tf, 99, "block-max must surface the spike");
        assert_eq!(enc.max_tf, 99);
    }

    #[test]
    fn raw_block_copy_is_byte_identical() {
        let list = mklist(500, 5, 7);
        for codec in BLOCK_CODECS {
            let whole = encode_list(&list, codec);
            let blocks = BlockedList::parse(&whole.bytes, list.len()).unwrap();
            // Re-assemble: copy full blocks verbatim, re-push the tail.
            let mut enc = ListEncoder::new(codec);
            for b in 0..blocks.n_blocks() {
                if blocks.len_of(b) == BLOCK_LEN {
                    enc.push_raw_block(blocks.entry(b), blocks.body(b).unwrap());
                } else {
                    for &p in &list[b * BLOCK_LEN..] {
                        enc.push(p);
                    }
                }
            }
            let rebuilt = enc.finish();
            assert_eq!(rebuilt.bytes, whole.bytes, "{codec:?}");
            assert_eq!(rebuilt.max_tf, whole.max_tf);
        }
    }

    #[test]
    fn unit_gaps_pack_to_width_zero() {
        let list: Vec<Posting> = (0..128u32).map(|i| Posting { doc: DocId(i), tf: 1 }).collect();
        let enc = encode_list(&list, Codec::Bp128);
        // 12-byte skip entry + 2 width bytes, nothing else.
        assert_eq!(enc.bytes.len(), SKIP_ENTRY_BYTES + 2);
    }

    #[test]
    fn pfor_handles_outliers_cheaply() {
        // 127 unit gaps + one huge gap: the huge one must become an
        // exception, not widen every slot.
        let mut list: Vec<Posting> = (0..127u32).map(|i| Posting { doc: DocId(i), tf: 1 }).collect();
        list.push(Posting { doc: DocId(1 << 30), tf: 1 });
        let enc = encode_list(&list, Codec::PFor);
        let dec = decode_list(&enc.bytes, list.len(), Codec::PFor).unwrap();
        assert_eq!(dec, list);
        // Width stays 0 for gaps; one 5-ish-byte exception.
        assert!(enc.bytes.len() < SKIP_ENTRY_BYTES + 24, "got {}", enc.bytes.len());
    }

    #[test]
    fn maximal_gap_roundtrips() {
        let list =
            vec![Posting { doc: DocId(0), tf: 1 }, Posting { doc: DocId(u32::MAX), tf: u32::MAX }];
        // Golomb needs a parameter near the gap scale or its unary part
        // degenerates (that's why Auto never picks it).
        for codec in
            [Codec::VarByte, Codec::Gamma, Codec::Golomb(1 << 28), Codec::Bp128, Codec::PFor, Codec::EliasFano]
        {
            let enc = encode_list(&list, codec);
            let dec = decode_list(&enc.bytes, 2, codec).unwrap();
            assert_eq!(dec, list, "{codec:?}");
        }
    }

    #[test]
    fn hostile_widths_rejected() {
        let list = mklist(10, 2, 3);
        let enc = encode_list(&list, Codec::Bp128);
        let mut bad = enc.bytes.clone();
        bad[SKIP_ENTRY_BYTES] = 200; // doc width byte of the only block
        assert_eq!(decode_list(&bad, 10, Codec::Bp128), Err(CodecError::BadBitWidth(200)));
    }

    #[test]
    fn hostile_skip_offsets_rejected() {
        let list = mklist(300, 2, 3);
        let enc = encode_list(&list, Codec::Bp128);
        let mut bad = enc.bytes.clone();
        // Second block's offset points far past the end.
        bad[SKIP_ENTRY_BYTES + 4..SKIP_ENTRY_BYTES + 8].copy_from_slice(&u32::MAX.to_le_bytes());
        assert!(decode_list(&bad, 300, Codec::Bp128).is_err());
    }
}
