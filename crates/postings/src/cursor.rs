//! Skip-pointer cursors over block-layout postings.
//!
//! A [`ListCursor`] walks one encoded list lazily: blocks are decoded only
//! when entered, and [`ListCursor::advance_to`] uses the skip table to jump
//! over blocks whose document range cannot contain the target — the
//! conjunctive-query fast path the block layout exists for. The
//! `blocks_decoded` counter makes the skipping observable in tests and
//! query stats.

use crate::block::{decode_block, BlockScratch, BlockedList};
use crate::codec::{Codec, CodecError};
use crate::posting::Posting;

/// Lazy decoding cursor over one block-layout list.
#[derive(Debug)]
pub struct ListCursor<'a> {
    blocks: BlockedList<'a>,
    codec: Codec,
    /// Decoded postings of block `cur` (empty before the first load).
    buf: Vec<Posting>,
    /// Next index into `buf`.
    pos: usize,
    /// Block index `buf` holds, or `n_blocks` when exhausted/unloaded.
    cur: usize,
    loaded: bool,
    blocks_decoded: u32,
    /// Boxed: the fixed decode arrays are ~1 KiB and cursors move through
    /// enum variants and collections by value.
    scratch: Box<BlockScratch>,
}

impl<'a> ListCursor<'a> {
    /// Open a cursor over an encoded `n`-posting list.
    pub fn new(bytes: &'a [u8], n: usize, codec: Codec) -> Result<Self, CodecError> {
        crate::codec::check_alloc(bytes, n)?;
        let blocks = BlockedList::parse(bytes, n)?;
        Ok(ListCursor {
            blocks,
            codec: codec.resolve(n),
            buf: Vec::new(),
            pos: 0,
            cur: 0,
            loaded: false,
            blocks_decoded: 0,
            scratch: Box::default(),
        })
    }

    /// Number of blocks actually decoded so far (the skip win is
    /// `blocks_total - blocks_decoded`).
    pub fn blocks_decoded(&self) -> u32 {
        self.blocks_decoded
    }

    /// Total blocks in the list.
    pub fn blocks_total(&self) -> usize {
        self.blocks.n_blocks()
    }

    /// Block-max metadata of the block the cursor currently sits in.
    pub fn current_block_max_tf(&self) -> Option<u32> {
        (self.loaded && self.cur < self.blocks.n_blocks())
            .then(|| self.blocks.entry(self.cur).max_tf)
    }

    fn load(&mut self, b: usize) -> Result<(), CodecError> {
        let e = self.blocks.entry(b);
        self.buf.clear();
        decode_block(
            self.codec,
            self.blocks.body(b)?,
            e.first_doc,
            self.blocks.len_of(b),
            &mut self.scratch,
            &mut self.buf,
        )?;
        self.cur = b;
        self.pos = 0;
        self.loaded = true;
        self.blocks_decoded += 1;
        Ok(())
    }

    /// Next posting in document order, or `None` at the end. Not an
    /// `Iterator`: decoding is fallible and the error must surface.
    #[allow(clippy::should_implement_trait)]
    pub fn next(&mut self) -> Result<Option<Posting>, CodecError> {
        loop {
            if self.loaded && self.pos < self.buf.len() {
                let p = self.buf[self.pos];
                self.pos += 1;
                return Ok(Some(p));
            }
            let nb = self.blocks.n_blocks();
            let next = if self.loaded { self.cur + 1 } else { self.cur };
            if next >= nb {
                return Ok(None);
            }
            self.load(next)?;
        }
    }

    /// Advance to the first posting with `doc >= target` and consume it.
    /// Blocks whose skip entry shows they end before `target` are jumped
    /// over without decoding.
    pub fn advance_to(&mut self, target: u32) -> Result<Option<Posting>, CodecError> {
        let nb = self.blocks.n_blocks();
        // Furthest block that could contain `target`: the last one whose
        // first_doc <= target (first_doc is strictly increasing across
        // blocks). Never move backwards.
        let base = if self.loaded { self.cur } else { 0 };
        let mut lo = base + 1;
        let mut hi = nb;
        while lo < hi {
            let mid = (lo + hi) / 2;
            if self.blocks.entry(mid).first_doc <= target {
                lo = mid + 1;
            } else {
                hi = mid;
            }
        }
        let dest = lo - 1; // >= base
        if dest > base || !self.loaded {
            if dest >= nb {
                return Ok(None);
            }
            self.load(dest)?;
        }
        loop {
            while self.pos < self.buf.len() {
                let p = self.buf[self.pos];
                self.pos += 1;
                if p.doc.0 >= target {
                    return Ok(Some(p));
                }
            }
            let next = self.cur + 1;
            if next >= nb {
                return Ok(None);
            }
            self.load(next)?;
        }
    }
}

/// Cursor over one run entry: block-layout entries get real skip pointers,
/// legacy whole-list entries fall back to an eager decode.
#[derive(Debug)]
pub enum RunCursor<'a> {
    /// Lazy block cursor (v2 blocked run files).
    Blocked(ListCursor<'a>),
    /// Eagerly decoded legacy list.
    Legacy {
        /// The decoded postings.
        postings: Vec<Posting>,
        /// Next index into `postings`.
        pos: usize,
    },
}

impl RunCursor<'_> {
    /// Next posting in document order (fallible, so not an `Iterator`).
    #[allow(clippy::should_implement_trait)]
    pub fn next(&mut self) -> Result<Option<Posting>, CodecError> {
        match self {
            RunCursor::Blocked(c) => c.next(),
            RunCursor::Legacy { postings, pos } => {
                let p = postings.get(*pos).copied();
                *pos += 1;
                Ok(p)
            }
        }
    }

    /// Advance to the first posting with `doc >= target` and consume it.
    pub fn advance_to(&mut self, target: u32) -> Result<Option<Posting>, CodecError> {
        match self {
            RunCursor::Blocked(c) => c.advance_to(target),
            RunCursor::Legacy { postings, pos } => {
                let tail = postings.get(*pos..).unwrap_or(&[]);
                *pos += tail.partition_point(|p| p.doc.0 < target);
                let p = postings.get(*pos).copied();
                *pos += 1;
                Ok(p)
            }
        }
    }

    /// Blocks decoded so far (0 for legacy cursors).
    pub fn blocks_decoded(&self) -> u32 {
        match self {
            RunCursor::Blocked(c) => c.blocks_decoded(),
            RunCursor::Legacy { .. } => 0,
        }
    }

    /// Total blocks (0 for legacy cursors).
    pub fn blocks_total(&self) -> usize {
        match self {
            RunCursor::Blocked(c) => c.blocks_total(),
            RunCursor::Legacy { .. } => 0,
        }
    }
}

/// A term's postings across every run that contains it, in global document
/// order (runs cover disjoint, increasing document ranges by construction —
/// the pipeline's round-robin consumption order).
#[derive(Debug)]
pub struct SetCursor<'a> {
    parts: Vec<(u32, RunCursor<'a>)>, // (doc_max of the entry, cursor)
    idx: usize,
    df: u64,
}

impl<'a> SetCursor<'a> {
    /// Chain per-run cursors; `parts` must be in ascending doc-range order
    /// and carry each entry's `doc_max`.
    pub fn new(parts: Vec<(u32, RunCursor<'a>)>, df: u64) -> Self {
        SetCursor { parts, idx: 0, df }
    }

    /// Document frequency (total postings behind this cursor).
    pub fn df(&self) -> u64 {
        self.df
    }

    /// Next posting in global document order (fallible, so not an
    /// `Iterator`).
    #[allow(clippy::should_implement_trait)]
    pub fn next(&mut self) -> Result<Option<Posting>, CodecError> {
        while self.idx < self.parts.len() {
            if let Some(p) = self.parts[self.idx].1.next()? {
                return Ok(Some(p));
            }
            self.idx += 1;
        }
        Ok(None)
    }

    /// Advance to the first posting with `doc >= target` and consume it.
    pub fn advance_to(&mut self, target: u32) -> Result<Option<Posting>, CodecError> {
        while self.idx < self.parts.len() {
            let (doc_max, cur) = &mut self.parts[self.idx];
            if *doc_max < target {
                // Whole run entry is below the target: skip it entirely.
                self.idx += 1;
                continue;
            }
            if let Some(p) = cur.advance_to(target)? {
                return Ok(Some(p));
            }
            self.idx += 1;
        }
        Ok(None)
    }

    /// Blocks decoded across all parts.
    pub fn blocks_decoded(&self) -> u32 {
        self.parts.iter().map(|(_, c)| c.blocks_decoded()).sum()
    }

    /// Total blocks across all parts.
    pub fn blocks_total(&self) -> usize {
        self.parts.iter().map(|(_, c)| c.blocks_total()).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::block::{encode_list, BLOCK_LEN};
    use ii_corpus::DocId;

    fn mklist(n: usize) -> Vec<Posting> {
        (0..n as u32).map(|i| Posting { doc: DocId(i * 3), tf: 1 + i % 4 }).collect()
    }

    #[test]
    fn cursor_streams_all_postings() {
        let list = mklist(300);
        for codec in [Codec::VarByte, Codec::Bp128, Codec::PFor, Codec::EliasFano] {
            let enc = encode_list(&list, codec);
            let mut c = ListCursor::new(&enc.bytes, 300, codec).unwrap();
            let mut got = Vec::new();
            while let Some(p) = c.next().unwrap() {
                got.push(p);
            }
            assert_eq!(got, list, "{codec:?}");
            assert_eq!(c.blocks_decoded(), 3);
        }
    }

    #[test]
    fn advance_skips_blocks_without_decoding() {
        let n = 20 * BLOCK_LEN;
        let list = mklist(n);
        let enc = encode_list(&list, Codec::Bp128);
        let mut c = ListCursor::new(&enc.bytes, n, Codec::Bp128).unwrap();
        // Jump straight to the last posting's doc.
        let last = list.last().unwrap();
        assert_eq!(c.advance_to(last.doc.0).unwrap(), Some(*last));
        assert_eq!(c.blocks_decoded(), 1, "only the landing block decodes");
        assert_eq!(c.blocks_total(), 20);
        assert_eq!(c.next().unwrap(), None);
    }

    #[test]
    fn advance_to_present_and_absent_targets() {
        let list = mklist(500);
        let enc = encode_list(&list, Codec::PFor);
        let mut c = ListCursor::new(&enc.bytes, 500, Codec::PFor).unwrap();
        // doc 3*77 exists.
        assert_eq!(c.advance_to(231).unwrap(), Some(list[77]));
        // 232 is absent: lands on the next larger doc.
        assert_eq!(c.advance_to(233).unwrap(), Some(list[78]));
        // Past the end.
        assert_eq!(c.advance_to(u32::MAX).unwrap(), None);
        assert_eq!(c.next().unwrap(), None);
    }

    #[test]
    fn advance_never_moves_backwards() {
        let list = mklist(300);
        let enc = encode_list(&list, Codec::Bp128);
        let mut c = ListCursor::new(&enc.bytes, 300, Codec::Bp128).unwrap();
        assert_eq!(c.advance_to(600).unwrap(), Some(list[200]));
        // A smaller target must not rewind: next posting is 201.
        assert_eq!(c.advance_to(0).unwrap(), Some(list[201]));
    }

    #[test]
    fn block_max_visible_mid_stream() {
        let mut list = mklist(256);
        list[200].tf = 77;
        let enc = encode_list(&list, Codec::Bp128);
        let mut c = ListCursor::new(&enc.bytes, 256, Codec::Bp128).unwrap();
        c.advance_to(list[200].doc.0).unwrap();
        assert_eq!(c.current_block_max_tf(), Some(77));
    }
}
