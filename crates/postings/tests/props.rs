//! Property tests for the postings layer: codec round-trips on arbitrary
//! docID gap sequences, and merge associativity / ordering invariants.
//!
//! These are the differential guarantees the post-processing step of
//! §III.F leans on: any gap structure survives every codec (legacy
//! whole-list and blocked alike), and folding runs in stages cannot change
//! the final lists.

use ii_corpus::DocId;
use ii_postings::bits::golomb_parameter;
use ii_postings::{
    decode, encode, merge_runs, Codec, CodecError, Posting, PostingsList, RunFile, RunSet,
};
use proptest::prelude::*;

/// Arbitrary `(gap, tf)` pairs; gaps >= 1 keep docIDs strictly increasing,
/// matching the doc-sorted contract of every list in the system.
fn gaps_strategy() -> impl Strategy<Value = Vec<(u32, u32)>> {
    proptest::collection::vec((1u32..10_000, 1u32..200), 0..150)
}

/// Materialize a gap sequence into a doc-sorted postings list.
fn list_from_gaps(gaps: &[(u32, u32)]) -> Vec<Posting> {
    let mut doc = 0u32;
    let mut first = true;
    let mut out = Vec::with_capacity(gaps.len());
    for &(gap, tf) in gaps {
        // First "gap" is doc + 1 in the codec's convention; build docIDs so
        // gap 1 can produce doc 0.
        doc = if first { gap - 1 } else { doc + gap };
        first = false;
        out.push(Posting { doc: DocId(doc), tf });
    }
    out
}

/// Every codec, legacy and blocked, with a Golomb parameter scaled to the
/// list at hand.
fn all_codecs(list_len: usize) -> [Codec; 7] {
    [
        Codec::VarByte,
        Codec::Gamma,
        Codec::Golomb(golomb_parameter(1 << 24, list_len.max(1) as u64)),
        Codec::Bp128,
        Codec::PFor,
        Codec::EliasFano,
        Codec::Auto,
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Every codec round-trips every gap structure exactly.
    #[test]
    fn codecs_roundtrip_arbitrary_gap_sequences(gaps in gaps_strategy()) {
        let list = list_from_gaps(&gaps);
        for codec in all_codecs(list.len()) {
            let buf = encode(&list, codec);
            let back = decode(&buf, list.len(), codec);
            prop_assert_eq!(back.as_deref(), Ok(list.as_slice()), "codec {:?}", codec);
        }
    }

    /// Truncating any number of trailing bytes must yield an error, never a
    /// wrong list accepted as valid.
    #[test]
    fn truncation_never_decodes_silently(
        gaps in proptest::collection::vec((1u32..1000, 1u32..50), 1..60),
        cut in 1usize..32,
    ) {
        let list = list_from_gaps(&gaps);
        for codec in [Codec::VarByte, Codec::Bp128, Codec::PFor, Codec::EliasFano] {
            let buf = encode(&list, codec);
            let cut = cut.min(buf.len());
            match decode(&buf[..buf.len() - cut], list.len(), codec) {
                Err(_) => {}
                // γ-style padding means a short cut can still decode — but
                // then it must decode to the *same* postings, never wrong
                // ones (possible for bit codecs whose tail was padding; the
                // blocked layouts end byte-aligned so any cut is fatal).
                Ok(back) => prop_assert_eq!(back, list, "codec {:?}", codec),
            }
        }
    }

    /// Merging all runs at once equals merging a prefix first and folding
    /// the intermediate file with the remaining runs (associativity), and
    /// merged lists keep strictly increasing docIDs. Exercised across the
    /// codec matrix, including the Auto length-class policy (which routes
    /// blocks through the verbatim-copy fast path when classes agree).
    #[test]
    fn merge_is_associative_and_keeps_order(
        gaps in gaps_strategy(),
        num_runs in 1usize..6,
        num_handles in 1u32..5,
        split_at in 0usize..6,
        codec_idx in 0usize..4,
    ) {
        let codec = [Codec::VarByte, Codec::Bp128, Codec::PFor, Codec::Auto][codec_idx];
        let all = list_from_gaps(&gaps);
        // Deal postings round-robin-by-chunk onto (handle, run) cells so
        // each handle's docs stay sorted in run order.
        let mut runs: Vec<Vec<(u32, PostingsList)>> = vec![Vec::new(); num_runs];
        for (run_idx, chunk) in all.chunks(all.len() / num_runs + 1).enumerate() {
            if run_idx >= num_runs { break; }
            for h in 0..num_handles {
                let l: PostingsList = chunk
                    .iter()
                    .filter(|p| p.doc.0 % num_handles == h)
                    .copied()
                    .collect();
                if !l.is_empty() {
                    runs[run_idx].push((h, l));
                }
            }
        }
        let files: Vec<RunFile> = runs
            .iter()
            .enumerate()
            .map(|(i, pairs)| {
                let mut it = pairs.iter().map(|(h, l)| (*h, l));
                RunFile::build(i as u32, 0, &mut it, codec)
            })
            .collect();

        let mut whole = RunSet::new();
        for f in &files {
            whole.push(f.clone());
        }
        let one_shot = merge_runs(&whole, codec);

        let split = split_at.min(files.len());
        let mut staged = RunSet::new();
        if split > 0 {
            let mut prefix = RunSet::new();
            for f in &files[..split] {
                prefix.push(f.clone());
            }
            staged.push(merge_runs(&prefix, codec));
        }
        for f in &files[split..] {
            // The intermediate file takes run_id `split`; renumber the
            // remaining runs past it to keep RunSet's in-order contract.
            let mut f = f.clone();
            f.run_id += 1;
            staged.push(f);
        }
        let two_stage = merge_runs(&staged, codec);

        for h in 0..num_handles {
            prop_assert_eq!(
                one_shot.get(h),
                two_stage.get(h),
                "handle {} diverged between one-shot and staged merge", h
            );
            if let Some(list) = one_shot.get(h) {
                prop_assert!(
                    list.windows(2).all(|w| w[0].doc < w[1].doc),
                    "handle {} not strictly doc-sorted: {:?}", h, list
                );
                // The merged file agrees with the RunSet's own fetch path.
                prop_assert_eq!(list, whole.fetch(h).postings().to_vec());
            }
        }
    }

    /// The skip cursor agrees with a full decode for any list and any
    /// sequence of advance targets.
    #[test]
    fn cursor_advances_agree_with_linear_scan(
        gaps in proptest::collection::vec((1u32..500, 1u32..20), 1..400),
        targets in proptest::collection::vec(0u32..200_000, 1..20),
    ) {
        let list = list_from_gaps(&gaps);
        let mut targets = targets;
        targets.sort_unstable();
        for codec in [Codec::VarByte, Codec::Bp128, Codec::PFor, Codec::EliasFano] {
            // Always the block layout: for VarByte, codec::encode would
            // produce the legacy whole-list stream cursors don't read.
            let buf = ii_postings::block::encode_list(&list, codec).bytes;
            let mut cur = ii_postings::ListCursor::new(&buf, list.len(), codec).unwrap();
            let mut lin = 0usize; // next undelivered index in `list`
            for &t in &targets {
                let expect = list[lin..].iter().position(|p| p.doc.0 >= t).map(|i| lin + i);
                let got = cur.advance_to(t).unwrap();
                prop_assert_eq!(got, expect.map(|i| list[i]), "codec {:?} target {}", codec, t);
                lin = expect.map(|i| i + 1).unwrap_or(list.len());
            }
        }
    }
}

// ---- Adversarial deterministic cases ---------------------------------------

/// Single-posting lists at extreme coordinates survive every codec.
#[test]
fn single_posting_lists() {
    for (d, tf) in [(0u32, 1u32), (1, 1), (u32::MAX, 1), (0, u32::MAX), (u32::MAX, u32::MAX)] {
        let list = vec![Posting { doc: DocId(d), tf }];
        for codec in [Codec::Bp128, Codec::PFor, Codec::EliasFano, Codec::Auto] {
            let buf = encode(&list, codec);
            assert_eq!(decode(&buf, 1, codec).as_deref(), Ok(list.as_slice()), "{codec:?} d={d}");
        }
        if d < u32::MAX {
            // Legacy varbyte's `first doc + 1` convention cannot represent
            // doc u32::MAX — the block layout can (first_doc is stored raw
            // in the skip entry), which is itself worth pinning down.
            let buf = encode(&list, Codec::VarByte);
            assert_eq!(decode(&buf, 1, Codec::VarByte).as_deref(), Ok(list.as_slice()));
        }
    }
}

/// Maximal d-gaps: postings pushed to the far ends of the u32 doc space.
#[test]
fn maximal_d_gaps() {
    let lists: Vec<Vec<Posting>> = vec![
        vec![Posting { doc: DocId(0), tf: 1 }, Posting { doc: DocId(u32::MAX), tf: 1 }],
        vec![
            Posting { doc: DocId(5), tf: 3 },
            Posting { doc: DocId(1 << 31), tf: 1 },
            Posting { doc: DocId(u32::MAX - 1), tf: 2 },
        ],
    ];
    for list in &lists {
        for codec in [Codec::VarByte, Codec::Bp128, Codec::PFor, Codec::EliasFano, Codec::Auto] {
            let buf = encode(list, codec);
            assert_eq!(
                decode(&buf, list.len(), codec).as_deref(),
                Ok(list.as_slice()),
                "{codec:?}"
            );
        }
    }
}

/// All-equal docIDs (zero gaps) are invalid postings: a hostile stream
/// claiming them must be rejected with `NonMonotone`, not decoded.
#[test]
fn all_equal_doc_ids_rejected() {
    // Legacy varbyte is the only codec whose wire format can even express a
    // zero gap; the blocked layouts store gap-1 so monotonicity is
    // structural. Build the hostile stream by hand.
    let mut buf = Vec::new();
    for v in [8u32, 1, 0, 1, 0, 1] {
        // doc 7 three times
        ii_postings::varbyte::encode_u32(v, &mut buf);
    }
    assert_eq!(decode(&buf, 3, Codec::VarByte), Err(CodecError::NonMonotone));
}

/// Lengths straddling the block boundary (127/128/129) round-trip and
/// produce the expected block counts.
#[test]
fn block_boundary_lengths() {
    for n in [127usize, 128, 129] {
        let list: Vec<Posting> =
            (0..n as u32).map(|i| Posting { doc: DocId(i * 7 + 3), tf: 1 + i % 9 }).collect();
        for codec in [Codec::VarByte, Codec::Bp128, Codec::PFor, Codec::EliasFano, Codec::Auto] {
            let buf = encode(&list, codec);
            assert_eq!(decode(&buf, n, codec).as_deref(), Ok(list.as_slice()), "{codec:?} n={n}");
            // Cursor over the block layout (codec::encode is legacy for
            // VarByte, so re-encode through the block path).
            let blocked = ii_postings::block::encode_list(&list, codec).bytes;
            let mut cur = ii_postings::ListCursor::new(&blocked, n, codec.resolve(n)).unwrap();
            let mut count = 0usize;
            while cur.next().unwrap().is_some() {
                count += 1;
            }
            assert_eq!(count, n);
            assert_eq!(cur.blocks_total(), n.div_ceil(128));
        }
    }
}

/// A hostile length header cannot force a giant allocation.
#[test]
fn hostile_length_header_guarded() {
    let tiny = [0u8; 16];
    for codec in [Codec::VarByte, Codec::Bp128, Codec::PFor, Codec::EliasFano, Codec::Auto] {
        let err = decode(&tiny, u32::MAX as usize, codec).unwrap_err();
        assert!(matches!(err, CodecError::AllocGuard { .. }), "{codec:?}: {err:?}");
    }
}
