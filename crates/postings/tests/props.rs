//! Property tests for the postings layer: codec round-trips on arbitrary
//! docID gap sequences, and merge associativity / ordering invariants.
//!
//! These are the differential guarantees the post-processing step of
//! §III.F leans on: any gap structure survives every codec, and folding
//! runs in stages cannot change the final lists.

use ii_postings::bits::golomb_parameter;
use ii_postings::{decode, encode, merge_runs, Codec, Posting, PostingsList, RunFile, RunSet};
use ii_corpus::DocId;
use proptest::prelude::*;

/// Arbitrary `(gap, tf)` pairs; gaps >= 1 keep docIDs strictly increasing,
/// matching the doc-sorted contract of every list in the system.
fn gaps_strategy() -> impl Strategy<Value = Vec<(u32, u32)>> {
    proptest::collection::vec((1u32..10_000, 1u32..200), 0..150)
}

/// Materialize a gap sequence into a doc-sorted postings list.
fn list_from_gaps(gaps: &[(u32, u32)]) -> Vec<Posting> {
    let mut doc = 0u32;
    let mut first = true;
    let mut out = Vec::with_capacity(gaps.len());
    for &(gap, tf) in gaps {
        // First "gap" is doc + 1 in the codec's convention; build docIDs so
        // gap 1 can produce doc 0.
        doc = if first { gap - 1 } else { doc + gap };
        first = false;
        out.push(Posting { doc: DocId(doc), tf });
    }
    out
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Every codec round-trips every gap structure exactly.
    #[test]
    fn codecs_roundtrip_arbitrary_gap_sequences(gaps in gaps_strategy()) {
        let list = list_from_gaps(&gaps);
        let golomb = Codec::Golomb(golomb_parameter(1 << 24, list.len().max(1) as u64));
        for codec in [Codec::VarByte, Codec::Gamma, golomb] {
            let buf = encode(&list, codec);
            let back = decode(&buf, list.len(), codec);
            prop_assert_eq!(back.as_deref(), Some(list.as_slice()), "codec {:?}", codec);
        }
    }

    /// Merging all runs at once equals merging a prefix first and folding
    /// the intermediate file with the remaining runs (associativity), and
    /// merged lists keep strictly increasing docIDs.
    #[test]
    fn merge_is_associative_and_keeps_order(
        gaps in gaps_strategy(),
        num_runs in 1usize..6,
        num_handles in 1u32..5,
        split_at in 0usize..6,
    ) {
        let all = list_from_gaps(&gaps);
        // Deal postings round-robin-by-chunk onto (handle, run) cells so
        // each handle's docs stay sorted in run order.
        let mut runs: Vec<Vec<(u32, PostingsList)>> = vec![Vec::new(); num_runs];
        for (run_idx, chunk) in all.chunks(all.len() / num_runs + 1).enumerate() {
            if run_idx >= num_runs { break; }
            for h in 0..num_handles {
                let l: PostingsList = chunk
                    .iter()
                    .filter(|p| p.doc.0 % num_handles == h)
                    .copied()
                    .collect();
                if !l.is_empty() {
                    runs[run_idx].push((h, l));
                }
            }
        }
        let files: Vec<RunFile> = runs
            .iter()
            .enumerate()
            .map(|(i, pairs)| {
                let mut it = pairs.iter().map(|(h, l)| (*h, l));
                RunFile::build(i as u32, 0, &mut it, Codec::VarByte)
            })
            .collect();

        let mut whole = RunSet::new();
        for f in &files {
            whole.push(f.clone());
        }
        let one_shot = merge_runs(&whole, Codec::VarByte);

        let split = split_at.min(files.len());
        let mut staged = RunSet::new();
        if split > 0 {
            let mut prefix = RunSet::new();
            for f in &files[..split] {
                prefix.push(f.clone());
            }
            staged.push(merge_runs(&prefix, Codec::VarByte));
        }
        for f in &files[split..] {
            // The intermediate file takes run_id `split`; renumber the
            // remaining runs past it to keep RunSet's in-order contract.
            let mut f = f.clone();
            f.run_id += 1;
            staged.push(f);
        }
        let two_stage = merge_runs(&staged, Codec::VarByte);

        for h in 0..num_handles {
            prop_assert_eq!(
                one_shot.get(h),
                two_stage.get(h),
                "handle {} diverged between one-shot and staged merge", h
            );
            if let Some(list) = one_shot.get(h) {
                prop_assert!(
                    list.windows(2).all(|w| w[0].doc < w[1].doc),
                    "handle {} not strictly doc-sorted: {:?}", h, list
                );
                // The merged file agrees with the RunSet's own fetch path.
                prop_assert_eq!(list, whole.fetch(h).postings().to_vec());
            }
        }
    }
}
