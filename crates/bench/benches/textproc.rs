//! Criterion microbench: the parser's per-token work — tokenization,
//! Porter stemming, stop-word filtering, and the full 5-step parse
//! including the Step 5 regrouping whose overhead the paper bounds at ~5%
//! of parser time.

use criterion::{black_box, criterion_group, criterion_main, Criterion, Throughput};
use ii_core::corpus::{CollectionGenerator, CollectionSpec};
use ii_core::text::{parse_documents, parse_documents_flat, stem, tokenize};

fn sample_text() -> String {
    let gen = CollectionGenerator::new(CollectionSpec::wikipedia_like(0.2));
    gen.generate_file(0).into_iter().map(|d| d.body).collect::<Vec<_>>().join("\n")
}

fn bench_tokenize(c: &mut Criterion) {
    let text = sample_text();
    let mut g = c.benchmark_group("tokenize");
    g.throughput(Throughput::Bytes(text.len() as u64));
    g.bench_function("wikipedia_like", |b| {
        b.iter(|| {
            let mut n = 0u64;
            let mut it = tokenize::tokens(black_box(&text));
            while it.next_token().is_some() {
                n += 1;
            }
            n
        })
    });
    g.finish();
}

fn bench_stemmer(c: &mut Criterion) {
    let text = sample_text();
    let words: Vec<String> = {
        let mut out = Vec::new();
        let mut it = tokenize::tokens(&text);
        while let Some(t) = it.next_token() {
            out.push(t.to_string());
        }
        out.truncate(50_000);
        out
    };
    let mut g = c.benchmark_group("porter_stemmer");
    g.throughput(Throughput::Elements(words.len() as u64));
    g.bench_function("50k_tokens", |b| {
        b.iter(|| {
            let mut total = 0usize;
            for w in &words {
                total += stem(black_box(w)).len();
            }
            total
        })
    });
    g.finish();
}

fn bench_full_parse(c: &mut Criterion) {
    let gen = CollectionGenerator::new(CollectionSpec::wikipedia_like(0.2));
    let docs = gen.generate_file(0);
    let bytes: usize = docs.iter().map(|d| d.stored_len()).sum();
    let mut g = c.benchmark_group("parse");
    g.sample_size(10);
    g.throughput(Throughput::Bytes(bytes as u64));
    g.bench_function("grouped_steps2to5", |b| {
        b.iter(|| parse_documents(black_box(&docs), false, 0).stats.terms_kept)
    });
    g.bench_function("flat_no_regroup", |b| {
        b.iter(|| parse_documents_flat(black_box(&docs), false).1.terms_kept)
    });
    g.finish();
}

criterion_group!(benches, bench_tokenize, bench_stemmer, bench_full_parse);
criterion_main!(benches);
