//! Criterion microbench: hybrid-dictionary B-tree operations — insert and
//! search throughput, plus grouped-vs-interleaved access order (the
//! cache-locality effect behind the §III.C regrouping claim).

use criterion::{black_box, criterion_group, criterion_main, Criterion, Throughput};
use ii_core::dict::{classify, BTreeStore, SlottedStore};
use ii_core::corpus::Vocabulary;
use std::collections::HashMap;

fn keys(n: usize) -> Vec<(u32, String)> {
    let vocab = Vocabulary::generate(n, 7);
    vocab
        .terms()
        .iter()
        .map(|t| {
            let (idx, suffix) = classify(t);
            (idx.0, suffix.to_string())
        })
        .collect()
}

fn bench_insert(c: &mut Criterion) {
    let ks = keys(20_000);
    let mut g = c.benchmark_group("btree_insert");
    g.throughput(Throughput::Elements(ks.len() as u64));
    g.bench_function("20k_terms_single_tree", |b| {
        b.iter(|| {
            let mut store = BTreeStore::new();
            let mut tree = store.new_tree();
            for (_, k) in &ks {
                store.insert(&mut tree, black_box(k.as_bytes()));
            }
            store.term_count()
        })
    });
    g.bench_function("20k_terms_single_tree_slotted", |b| {
        b.iter(|| {
            let mut store = SlottedStore::new();
            let mut tree = store.new_tree();
            for (_, k) in &ks {
                store.insert(&mut tree, black_box(k.as_bytes()));
            }
            store.term_count()
        })
    });
    g.bench_function("20k_terms_grouped_by_collection", |b| {
        // One tree per trie collection, grouped insertion order.
        let mut grouped: Vec<(u32, Vec<&str>)> = {
            let mut m: HashMap<u32, Vec<&str>> = HashMap::new();
            for (ti, k) in &ks {
                m.entry(*ti).or_default().push(k);
            }
            m.into_iter().collect()
        };
        grouped.sort_by_key(|(ti, _)| *ti);
        b.iter(|| {
            let mut store = BTreeStore::new();
            for (_, terms) in &grouped {
                let mut tree = store.new_tree();
                for k in terms {
                    store.insert(&mut tree, black_box(k.as_bytes()));
                }
            }
            store.term_count()
        })
    });
    g.finish();
}

fn bench_search(c: &mut Criterion) {
    let ks = keys(20_000);
    let mut store = BTreeStore::new();
    let mut tree = store.new_tree();
    for (_, k) in &ks {
        store.insert(&mut tree, k.as_bytes());
    }
    let mut g = c.benchmark_group("btree_search");
    g.throughput(Throughput::Elements(ks.len() as u64));
    g.bench_function("20k_hits", |b| {
        b.iter(|| {
            let mut found = 0u32;
            for (_, k) in &ks {
                if store.get(&tree, black_box(k.as_bytes())).is_some() {
                    found += 1;
                }
            }
            found
        })
    });
    let mut slotted = SlottedStore::new();
    let mut stree = slotted.new_tree();
    for (_, k) in &ks {
        slotted.insert(&mut stree, k.as_bytes());
    }
    g.bench_function("20k_hits_slotted", |b| {
        b.iter(|| {
            let mut found = 0u32;
            for (_, k) in &ks {
                if slotted.get(&stree, black_box(k.as_bytes())).is_some() {
                    found += 1;
                }
            }
            found
        })
    });
    g.finish();
}

criterion_group!(benches, bench_insert, bench_search);
criterion_main!(benches);
