//! Criterion microbench: postings gap-compression codecs (variable-byte as
//! in the paper, vs Elias γ and Golomb) plus the LZSS collection codec.

use criterion::{black_box, criterion_group, criterion_main, Criterion, Throughput};
use ii_core::corpus::compress;
use ii_core::postings::{decode, encode, Codec, Posting};
use ii_core::corpus::DocId;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn postings(n: usize, mean_gap: u32) -> Vec<Posting> {
    let mut rng = StdRng::seed_from_u64(3);
    let mut doc = 0u32;
    (0..n)
        .map(|_| {
            doc += rng.gen_range(1..=mean_gap * 2);
            Posting { doc: DocId(doc), tf: rng.gen_range(1..8) }
        })
        .collect()
}

fn bench_postings_codecs(c: &mut Criterion) {
    let list = postings(50_000, 40);
    let mut g = c.benchmark_group("postings_codecs");
    g.throughput(Throughput::Elements(list.len() as u64));
    for codec in [Codec::VarByte, Codec::Gamma, Codec::Golomb(28)] {
        g.bench_function(format!("encode_{codec:?}"), |b| {
            b.iter(|| encode(black_box(&list), codec).len())
        });
        let buf = encode(&list, codec);
        g.bench_function(format!("decode_{codec:?}"), |b| {
            b.iter(|| decode(black_box(&buf), list.len(), codec).unwrap().len())
        });
    }
    g.finish();

    // Report-style size comparison (printed once under --nocapture-like
    // bench output): sizes matter as much as speed for codecs.
    for codec in [Codec::VarByte, Codec::Gamma, Codec::Golomb(28)] {
        let bytes = encode(&list, codec).len();
        eprintln!(
            "codec {:?}: {:.2} bytes/posting",
            codec,
            bytes as f64 / list.len() as f64
        );
    }
}

fn bench_lzss(c: &mut Criterion) {
    // Web-ish text block.
    let text = "<html><body><p>the quick brown fox jumped over the lazy dog</p></body></html>\n"
        .repeat(2_000);
    let data = text.as_bytes();
    let mut g = c.benchmark_group("lzss");
    g.throughput(Throughput::Bytes(data.len() as u64));
    g.bench_function("compress_html", |b| b.iter(|| compress::compress(black_box(data)).len()));
    let packed = compress::compress(data);
    g.bench_function("decompress_html", |b| {
        b.iter(|| compress::decompress(black_box(&packed)).unwrap().len())
    });
    g.finish();
}

criterion_group!(benches, bench_postings_codecs, bench_lzss);
criterion_main!(benches);
