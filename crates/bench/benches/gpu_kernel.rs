//! Criterion microbench: the GPU indexing kernel on the simulator — host
//! execution speed of the simulated kernel, and the simulated device
//! efficiency (cycles per token) that the platform model consumes.

use criterion::{black_box, criterion_group, criterion_main, Criterion, Throughput};
use ii_core::corpus::{CollectionGenerator, CollectionSpec};
use ii_core::indexer::{GpuIndexer, GpuIndexerConfig};
use ii_core::text::{parse_documents, ParsedBatch};

fn batch() -> ParsedBatch {
    let mut spec = CollectionSpec::wikipedia_like(0.2);
    spec.docs_per_file = 150;
    let gen = CollectionGenerator::new(spec.clone());
    parse_documents(&gen.generate_file(0), spec.html, 0)
}

fn bench_kernel(c: &mut Criterion) {
    let b = batch();
    let groups: Vec<&ii_core::text::TrieGroup> = b.groups.iter().collect();
    let tokens = b.stats.terms_kept;
    let mut g = c.benchmark_group("gpu_kernel");
    g.sample_size(10);
    g.throughput(Throughput::Elements(tokens));
    g.bench_function("index_batch_sim", |bch| {
        bch.iter(|| {
            let mut gpu = GpuIndexer::new(0, GpuIndexerConfig::small());
            let rep = gpu.index_batch(black_box(&groups), 0);
            rep.device_seconds
        })
    });
    g.finish();

    // One-shot device-efficiency report.
    let mut gpu = GpuIndexer::new(0, GpuIndexerConfig::small());
    let rep = gpu.index_batch(&groups, 0);
    let m = gpu.kernel_metrics;
    eprintln!(
        "device: {:.4}s simulated for {} tokens ({:.0} tokens/device-sec)",
        rep.device_seconds,
        tokens,
        tokens as f64 / rep.device_seconds
    );
    eprintln!(
        "traffic: {} global transactions, {:.2} transactions per 64B segment (1.0 = coalesced), {} bank-conflict cycles",
        m.global_transactions,
        m.transactions_per_segment(),
        m.bank_conflict_cycles
    );
}

criterion_group!(benches, bench_kernel);
criterion_main!(benches);
