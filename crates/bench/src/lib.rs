//! # ii-bench — experiment harnesses
//!
//! One binary per table and figure of the paper's evaluation section (see
//! DESIGN.md §4 for the index), plus criterion microbenches of the hot
//! kernels. This library holds the shared scaffolding: scaled synthetic
//! collections, run directories, and table formatting.

#![warn(missing_docs)]

use ii_core::corpus::{CollectionSpec, StoredCollection};
use std::path::PathBuf;
use std::sync::Arc;

/// Default scale factor applied to paper-sized collections for measured
/// (non-simulated) experiments on this host. Reports must print it.
pub const MEASURED_SCALE: f64 = 0.5;

/// Generate (or reuse a cached copy of) a stored collection.
pub fn stored_collection(tag: &str, spec: CollectionSpec) -> Arc<StoredCollection> {
    let dir = bench_dir(tag);
    if let Ok(existing) = StoredCollection::open(&dir) {
        if existing.manifest.spec == spec {
            return Arc::new(existing);
        }
    }
    let _ = std::fs::remove_dir_all(&dir);
    Arc::new(StoredCollection::generate(spec, &dir).expect("generate collection"))
}

/// Directory for bench artifacts.
pub fn bench_dir(tag: &str) -> PathBuf {
    std::env::temp_dir().join("ii-bench-data").join(tag)
}

/// Persist an observability snapshot next to the bench artifacts (same
/// JSON format as `ii build --stats-json`) and print where it went.
pub fn write_stats_snapshot(tag: &str, snapshot: &ii_core::obs::Snapshot) -> PathBuf {
    let dir = bench_dir("obs");
    std::fs::create_dir_all(&dir).expect("create obs dir");
    let path = dir.join(format!("{tag}.json"));
    snapshot.write_json(&path).expect("write obs snapshot");
    println!("\n[obs] stage snapshot written to {}", path.display());
    path
}

/// Print a horizontal rule sized to a table width.
pub fn rule(width: usize) {
    println!("{}", "-".repeat(width));
}

/// Format seconds with sensible precision.
pub fn fmt_s(s: f64) -> String {
    if s >= 100.0 {
        format!("{s:.0}")
    } else if s >= 1.0 {
        format!("{s:.2}")
    } else {
        format!("{s:.4}")
    }
}

/// Print a paper-vs-reproduced comparison row.
pub fn compare_row(label: &str, paper: f64, ours: f64, unit: &str) {
    let ratio = if paper > 0.0 { ours / paper } else { f64::NAN };
    println!("{label:<44}{paper:>12.2}{ours:>12.2}  {unit:<6} (x{ratio:.2} of paper)");
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stored_collection_caches() {
        let spec = CollectionSpec::tiny(123);
        let a = stored_collection("lib-test", spec.clone());
        let b = stored_collection("lib-test", spec);
        assert_eq!(a.manifest.stats, b.manifest.stats);
        let _ = std::fs::remove_dir_all(bench_dir("lib-test"));
    }

    #[test]
    fn fmt_s_precision() {
        assert_eq!(fmt_s(123.4), "123");
        assert_eq!(fmt_s(1.234), "1.23");
        assert_eq!(fmt_s(0.01234), "0.0123");
    }
}
