//! Fig 11 — scalability of parallel indexers: per-file indexing throughput
//! across the corpus for configurations (ii) 1 CPU, (iii) 2 CPU and
//! (iv) 2 CPU + 2 GPU.
//!
//! Part (a): platsim series for the full-size ClueWeb09 model, showing the
//! B-tree-depth-driven early decline, the flattening, and the sharp drop
//! at file ~1200 where the Wikipedia-origin tail begins.
//! Part (b): measured per-file wall times from the real pipeline on the
//! scaled collection with the same 80% distribution shift.

use ii_core::corpus::CollectionSpec;
use ii_core::pipeline::{build_index, PipelineConfig};
use ii_core::platsim::{simulate, CollectionModel, PlatformModel, Scenario};

fn main() {
    let p = PlatformModel::c1060_xeon();
    let c = CollectionModel::clueweb09();
    println!("FIG 11 (a). SIMULATED PER-FILE INDEXING THROUGHPUT (MB/s), ClueWeb09 model\n");
    let configs = [
        ("(ii) 1 CPU", Scenario::new(6, 1, 0)),
        ("(iii) 2 CPU", Scenario::new(6, 2, 0)),
        ("(iv) 2 CPU + 2 GPU", Scenario::new(6, 2, 2)),
    ];
    let series: Vec<(&str, Vec<f64>)> = configs
        .iter()
        .map(|(name, s)| (*name, simulate(&p, &c, s).per_file_throughput))
        .collect();
    println!("{:<8}{:>16}{:>16}{:>20}", "file", configs[0].0, configs[1].0, configs[2].0);
    ii_bench::rule(60);
    for f in (0..c.num_files).step_by(100).chain([1150, 1199, 1200, 1250, 1491]) {
        println!(
            "{:<8}{:>16.1}{:>16.1}{:>20.1}",
            f, series[0].1[f], series[1].1[f], series[2].1[f]
        );
    }
    ii_bench::rule(60);
    for (name, s) in &series {
        let drop = s[1150] / s[1250];
        println!(
            "  {name}: start {:.0} MB/s -> pre-shift {:.0} -> post-shift {:.0} (drop {:.2}x)",
            s[0], s[1150], s[1250], drop
        );
    }
    println!("  paper: sharp early decrease, then flattening; significant drop after file 1200,");
    println!("  hitting the combined CPU+GPU configuration hardest (mistuned sampling).\n");

    println!("FIG 11 (b). MEASURED PER-FILE INDEXING TIME (ms), scaled collection with 80% shift\n");
    let mut spec = CollectionSpec::clueweb_like(2.0 * ii_bench::MEASURED_SCALE);
    spec.docs_per_file = 200; // more, smaller files => smoother series
    spec.num_files *= 2;
    let coll = ii_bench::stored_collection("fig11", spec);
    let mut cfg = PipelineConfig::small(2, 2, 2);
    cfg.popular_count = 40;
    let out = build_index(&coll, &cfg).expect("index build");
    println!("{:<8}{:>12}{:>14}{:>16}", "file", "tokens", "wall ms", "MB/s (modeled)");
    ii_bench::rule(52);
    for ft in &out.report.per_file {
        println!(
            "{:<8}{:>12}{:>14.2}{:>16.2}",
            ft.file_idx,
            ft.tokens,
            ft.wall_seconds * 1e3,
            ft.uncompressed_bytes as f64 / 1e6 / ft.modeled_seconds.max(1e-9),
        );
    }
    ii_bench::rule(52);
    let shift_at = (out.report.per_file.len() as f64 * 0.8) as usize;
    let pre: f64 = out.report.per_file[shift_at.saturating_sub(3)..shift_at]
        .iter()
        .map(|f| f.tokens as f64 / f.wall_seconds)
        .sum::<f64>()
        / 3.0;
    let post: f64 = out.report.per_file[shift_at..(shift_at + 3).min(out.report.per_file.len())]
        .iter()
        .map(|f| f.tokens as f64 / f.wall_seconds)
        .sum::<f64>()
        / 3.0;
    println!(
        "measured tokens/s just before vs after the shift: {:.0} -> {:.0} ({})",
        pre,
        post,
        if post < pre { "drop reproduced ✓" } else { "no drop at this scale" }
    );
}
