//! Ablation — §III.C regrouping claim: consuming the parsed stream grouped
//! by trie collection (vs raw document order) speeds up *serial* indexing
//! ~15x on the paper's platform via B-tree cache residency.
//!
//! Measured with the real serial indexer both ways on identical input.
//! The magnitude depends on this host's cache hierarchy; the paper's 8 MB
//! L3 Xeon with a 10x larger collection saw 15x — what must reproduce is
//! a large, consistent speedup in the grouped order.

use ii_baselines::{index_with_regrouping, index_without_regrouping};
use ii_core::corpus::{CollectionGenerator, CollectionSpec};

fn main() {
    let mut spec = CollectionSpec::clueweb_like(ii_bench::MEASURED_SCALE);
    spec.docs_per_file = 300;
    let gen = CollectionGenerator::new(spec.clone());
    println!("ABLATION: parser Step 5 regrouping (serial indexer, measured)\n");
    println!(
        "{:<8}{:>12}{:>18}{:>18}{:>12}",
        "file", "tokens", "ungrouped (ms)", "grouped (ms)", "speedup"
    );
    ii_bench::rule(70);
    let mut tot_a = 0.0;
    let mut tot_b = 0.0;
    for f in 0..spec.num_files.min(6) {
        let docs = gen.generate_file(f);
        let a = index_without_regrouping(&docs, spec.html);
        let b = index_with_regrouping(&docs, spec.html);
        assert_eq!(a.tokens, b.tokens);
        tot_a += a.indexing_seconds;
        tot_b += b.indexing_seconds;
        println!(
            "{:<8}{:>12}{:>18.2}{:>18.2}{:>11.2}x",
            f,
            a.tokens,
            a.indexing_seconds * 1e3,
            b.indexing_seconds * 1e3,
            a.indexing_seconds / b.indexing_seconds
        );
    }
    ii_bench::rule(70);
    let speedup = tot_a / tot_b;
    println!("overall speedup from regrouping: {speedup:.2}x (paper: ~15x on 8MB-L3 Xeon");
    println!("with a 1000x larger collection and far deeper B-trees)");
    assert!(speedup > 1.0, "grouped order must not be slower");
}
