//! Table IV — running times of the four indexer configurations on
//! ClueWeb09 (6 parsers throughout).
//!
//! Simulated on `ii-platsim` (DESIGN.md §2). Shape checks: 2 CPU indexers
//! ≈ 1.77x of one, adding 2 GPUs buys ~35-40% more, and the combined
//! CPU+GPU throughput exceeds the sum of its parts (the paper's
//! "superlinear" observation from affinity-aware splitting).

use ii_core::platsim::{simulate, CollectionModel, PlatformModel, Scenario};

struct PaperCol {
    name: &'static str,
    scenario: Scenario,
    pre: f64,
    indexing: f64,
    post: f64,
    total_indexer: f64,
    indexing_mb_s: f64,
    total_mb_s: f64,
}

fn main() {
    let p = PlatformModel::c1060_xeon();
    let c = CollectionModel::clueweb09();
    let cols = [
        PaperCol {
            name: "6P + 2 GPU",
            scenario: Scenario::new(6, 0, 2),
            pre: 107.01,
            indexing: 19313.6,
            post: 417.21,
            total_indexer: 19858.69,
            indexing_mb_s: 75.41,
            total_mb_s: 73.34,
        },
        PaperCol {
            name: "6P + 1 CPU",
            scenario: Scenario::new(6, 1, 0),
            pre: 93.44,
            indexing: 11243.61,
            post: 416.66,
            total_indexer: 11758.81,
            indexing_mb_s: 129.53,
            total_mb_s: 123.86,
        },
        PaperCol {
            name: "6P + 2 CPU",
            scenario: Scenario::new(6, 2, 0),
            pre: 111.74,
            indexing: 6357.67,
            post: 521.52,
            total_indexer: 7019.87,
            indexing_mb_s: 229.08,
            total_mb_s: 207.47,
        },
        PaperCol {
            name: "6P + 2 CPU + 2 GPU",
            scenario: Scenario::new(6, 2, 2),
            pre: 104.15,
            indexing: 4616.78,
            post: 464.04,
            total_indexer: 5408.25,
            indexing_mb_s: 315.46,
            total_mb_s: 269.29,
        },
    ];

    println!("TABLE IV. INDEXER CONFIGURATIONS ON CLUEWEB09 (simulated seconds)");
    println!(
        "\n{:<22}{:>14}{:>14}{:>14}{:>16}{:>14}{:>14}",
        "config", "pre (s)", "indexing (s)", "post (s)", "total idx (s)", "idx MB/s", "total MB/s"
    );
    ii_bench::rule(110);
    let total_mb = c.total_uncompressed_mb();
    let mut sim_idx_rate = Vec::new();
    for col in &cols {
        let r = simulate(&p, &c, &col.scenario);
        let total_indexer = r.indexing_busy_seconds
            + r.indexer_wait_seconds
            + r.pre_processing_seconds
            + r.post_processing_seconds;
        let idx_mb_s = total_mb / r.indexing_busy_seconds;
        sim_idx_rate.push(idx_mb_s);
        println!(
            "{:<22}{:>14.1}{:>14.1}{:>14.1}{:>16.1}{:>14.1}{:>14.1}",
            col.name,
            r.pre_processing_seconds,
            r.indexing_busy_seconds,
            r.post_processing_seconds,
            total_indexer,
            idx_mb_s,
            total_mb / total_indexer,
        );
        println!(
            "{:<22}{:>14.1}{:>14.1}{:>14.1}{:>16.1}{:>14.1}{:>14.1}   <- paper",
            "",
            col.pre,
            col.indexing,
            col.post,
            col.total_indexer,
            col.indexing_mb_s,
            col.total_mb_s,
        );
    }
    ii_bench::rule(110);

    println!("\nshape checks:");
    let speedup2 = sim_idx_rate[2] / sim_idx_rate[1];
    println!("  2 CPU vs 1 CPU indexing speedup: {speedup2:.2}x (paper: 1.77x)");
    let gpu_gain = sim_idx_rate[3] / sim_idx_rate[2] - 1.0;
    println!("  extra gain from 2 GPUs on top of 2 CPUs: {:.1}% (paper: 37.7%)", gpu_gain * 100.0);
    let superlinear = sim_idx_rate[3] - (sim_idx_rate[2] + sim_idx_rate[0]);
    println!(
        "  combined minus (CPU-only + GPU-only): {superlinear:+.1} MB/s (paper: positive, superlinear)"
    );
    assert!(speedup2 > 1.5 && speedup2 < 2.0);
    assert!(gpu_gain > 0.2);
    assert!(superlinear > -5.0);
}
