//! Table V — workload split between CPU and GPU indexers.
//!
//! *Measured*, not simulated: the real pipeline runs on a scaled
//! ClueWeb-like collection with 2 CPU + 2 (simulated) GPU indexers, and
//! the indexers' own counters report tokens / terms / characters per
//! device class. The paper's point: the GPU side sees fewer tokens
//! (~0.8x the CPU's) but far more distinct terms (~2.5x) — the Zipf head
//! goes to the CPU, the long tail to the GPU.

use ii_core::corpus::CollectionSpec;
use ii_core::pipeline::{build_index, PipelineConfig};
use ii_core::indexer::GpuIndexerConfig;

fn main() {
    let spec = CollectionSpec::clueweb_like(ii_bench::MEASURED_SCALE);
    let coll = ii_bench::stored_collection("table5", spec.clone());
    // The paper sizes the popular group by "running several tests on the
    // sample" (§III.E); on full ClueWeb09 ~100 collections absorb ~44% of
    // tokens. Do the same here: pick the smallest head of collections
    // covering ~44% of sampled tokens.
    let sample_docs = coll.read_file_docs(0).expect("file 0");
    let sample = ii_core::text::parse_documents(&sample_docs[..sample_docs.len().min(80)],
        spec.html, 0);
    let counts = ii_core::indexer::sample_counts(std::slice::from_ref(&sample));
    let mut by_tokens: Vec<u64> = counts.values().copied().collect();
    by_tokens.sort_unstable_by(|a, b| b.cmp(a));
    let total: u64 = by_tokens.iter().sum();
    let mut acc = 0u64;
    let mut popular_count = 0usize;
    for t in &by_tokens {
        if acc as f64 >= 0.44 * total as f64 {
            break;
        }
        acc += t;
        popular_count += 1;
    }
    println!(
        "sampling chose {popular_count} popular collections covering {:.0}% of sampled tokens (paper: ~100 / ~44%)\n",
        acc as f64 / total as f64 * 100.0
    );
    let cfg = PipelineConfig {
        num_parsers: 2,
        num_cpu_indexers: 2,
        num_gpus: 2,
        gpu_config: GpuIndexerConfig::small(),
        popular_count,
        ..Default::default()
    };
    let out = build_index(&coll, &cfg).expect("index build");
    ii_bench::write_stats_snapshot("table5_workload", &out.report.stages.snapshot);
    let cpu = out.report.cpu_stats;
    let gpu = out.report.gpu_stats;

    println!("TABLE V. WORK LOAD BETWEEN CPU AND GPU (measured, scaled collection)");
    println!("\n{:<22}{:>18}{:>18}", "", "CPU Indexers", "GPU Indexers");
    ii_bench::rule(58);
    println!("{:<22}{:>18}{:>18}", "Token Number", cpu.tokens, gpu.tokens);
    println!("{:<22}{:>18}{:>18}", "Term Number", cpu.terms, gpu.terms);
    println!("{:<22}{:>18}{:>18}", "Character Number", cpu.chars, gpu.chars);
    ii_bench::rule(58);
    println!("\npaper (full ClueWeb09):");
    println!("{:<22}{:>18}{:>18}", "Token Number", 14_465_084_050u64, 18_179_424_205u64);
    println!("{:<22}{:>18}{:>18}", "Term Number", 24_244_017u64, 60_555_458u64);
    println!("{:<22}{:>18}{:>18}", "Character Number", 239_433_858u64, 513_640_554u64);

    let tok_ratio = gpu.tokens as f64 / cpu.tokens.max(1) as f64;
    let term_ratio = gpu.terms as f64 / cpu.terms.max(1) as f64;
    let char_ratio = gpu.chars as f64 / cpu.chars.max(1) as f64;
    println!("\nshape (GPU/CPU ratios):");
    println!("  tokens: {tok_ratio:.2}x   (paper: 1.26x — GPU sees ~80% as many... i.e. 18.2/14.5)");
    println!("  terms:  {term_ratio:.2}x  (paper: 2.50x)");
    println!("  chars:  {char_ratio:.2}x  (paper: 2.15x)");
    println!(
        "\nkey property: term ratio >> token ratio (tail terms to the GPU): {}",
        if term_ratio > 1.5 * tok_ratio { "holds ✓" } else { "VIOLATED ✗" }
    );
    assert!(term_ratio > 1.5 * tok_ratio);
}
