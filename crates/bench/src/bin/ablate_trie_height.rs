//! Ablation — §III.B trie height: "The height of three for the trie seems
//! to work best": height 1-2 yields few, huge, skewed collections (hard to
//! balance, deeper B-trees); height 4+ yields a blizzard of tiny
//! collections (scheduling/metadata overhead).
//!
//! We regroup one parsed stream by 1-, 2-, 3- and 4-character prefixes and
//! report, for each height: collection count, token skew (share of the
//! largest collection), mean B-tree depth, and measured serial indexing
//! time over the grouped stream.

use ii_core::corpus::{CollectionGenerator, CollectionSpec};
use ii_core::dict::{BTreeStore, BTree};
use std::collections::HashMap;
use std::time::Instant;

/// Group key for a synthetic trie of the given height (prefix chars).
fn bucket(term: &str, height: usize) -> String {
    let k: String = term.chars().take(height).collect();
    k
}

fn main() {
    let mut spec = CollectionSpec::clueweb_like(0.4);
    spec.docs_per_file = 250;
    let gen = CollectionGenerator::new(spec.clone());
    let docs: Vec<_> = (0..3).flat_map(|f| gen.generate_file(f)).collect();
    let (stream, stats) = ii_core::text::parse_documents_flat(&docs, spec.html);
    println!(
        "ABLATION: trie height (grouping {} tokens / {} surface stream)\n",
        stats.terms_kept, stream.len()
    );
    println!(
        "{:<8}{:>14}{:>16}{:>14}{:>16}{:>14}",
        "height", "collections", "largest share", "mean depth", "index time ms", "max depth"
    );
    ii_bench::rule(84);
    for height in 1..=4usize {
        // Regroup by h-char prefix.
        let mut groups: HashMap<String, Vec<String>> = HashMap::new();
        for (_, trie, term) in &stream {
            // Reconstruct the surface term: trie prefix + stored suffix.
            let full = format!("{}{}", ii_core::dict::TrieIndex(trie.0).prefix(), term);
            groups.entry(bucket(&full, height)).or_default().push(full);
        }
        let total: usize = groups.values().map(|g| g.len()).sum();
        let largest = groups.values().map(|g| g.len()).max().unwrap_or(0);

        // Serial-index each group into its own B-tree, grouped order.
        let t0 = Instant::now();
        let mut store = BTreeStore::new();
        let mut trees: Vec<BTree> = Vec::new();
        let mut depths: Vec<usize> = Vec::new();
        for (prefix, terms) in &groups {
            let mut tree = store.new_tree();
            let strip = prefix.len();
            for t in terms {
                let suffix = if t.len() >= strip { &t[strip..] } else { "" };
                store.insert(&mut tree, suffix.as_bytes());
            }
            depths.push(store.depth(&tree));
            trees.push(tree);
        }
        let ms = t0.elapsed().as_secs_f64() * 1e3;
        let mean_depth = depths.iter().sum::<usize>() as f64 / depths.len().max(1) as f64;
        println!(
            "{:<8}{:>14}{:>15.1}%{:>14.2}{:>16.1}{:>14}",
            height,
            groups.len(),
            largest as f64 / total as f64 * 100.0,
            mean_depth,
            ms,
            depths.iter().max().unwrap_or(&0),
        );
    }
    ii_bench::rule(84);
    println!("\nexpected shape: height 1-2 -> few collections, heavy skew, deeper trees;");
    println!("height 4 -> ~10x more collections than height 3 with little depth benefit.");
    println!("Height 3 balances collection count against per-collection size (paper's choice).");
}
