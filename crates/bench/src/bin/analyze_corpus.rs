//! Corpus validation: measure the synthetic collections' Heaps-law
//! vocabulary growth and Zipf skew, and compare against (a) the generator
//! specs and (b) the exponents `ii-platsim` assumes for its B-tree-depth
//! model — closing the loop between the data substitute and the
//! performance model.

use ii_core::corpus::{fit_heaps, fit_zipf, vocabulary_growth, CollectionGenerator, CollectionSpec};
use ii_core::platsim::CollectionModel;
use std::collections::HashMap;

fn main() {
    println!("CORPUS ANALYSIS: Heaps and Zipf properties of the synthetic stand-ins\n");
    println!(
        "{:<22}{:>12}{:>14}{:>14}{:>14}{:>14}",
        "collection", "Zipf s spec", "Zipf s fit", "Heaps beta", "platsim beta", "vocab K"
    );
    ii_bench::rule(92);
    let jobs = [
        ("clueweb-like", CollectionSpec::clueweb_like(0.4), CollectionModel::clueweb09().heaps_beta),
        ("wikipedia-like", CollectionSpec::wikipedia_like(0.4), CollectionModel::wikipedia().heaps_beta),
        ("congress-like", CollectionSpec::congress_like(0.4), CollectionModel::congress().heaps_beta),
    ];
    for (name, mut spec, platsim_beta) in jobs {
        spec.html = false; // analyze the token stream directly
        spec.num_files = spec.num_files.max(4);
        let gen = CollectionGenerator::new(spec.clone());
        let growth = vocabulary_growth(&gen, 4);
        let (k, beta) = fit_heaps(&growth);
        let mut freq: HashMap<String, u64> = HashMap::new();
        for f in 0..2 {
            for d in gen.generate_file(f) {
                for tok in d.body.split_whitespace() {
                    *freq.entry(tok.to_string()).or_insert(0) += 1;
                }
            }
        }
        let mut counts: Vec<u64> = freq.into_values().collect();
        let s_fit = fit_zipf(&mut counts, 300);
        println!(
            "{:<22}{:>12.2}{:>14.2}{:>14.2}{:>14.2}{:>14.1}",
            name, spec.zipf_s, s_fit, beta, platsim_beta, k
        );
        assert!((spec.zipf_s - 0.4..spec.zipf_s + 0.4).contains(&s_fit), "zipf fit off: {s_fit}");
        assert!((0.25..1.0).contains(&beta), "heaps fit off: {beta}");
    }
    ii_bench::rule(92);
    println!("\nboth laws hold on the generated data: the Zipf head the load balancer");
    println!("exploits and the sublinear vocabulary growth behind Fig 11's depth curve");
    println!("are real properties of the substitute corpora, not modeling assumptions.");
}
