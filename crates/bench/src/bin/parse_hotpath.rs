//! Parse hot-path benchmark: naive reference parser vs. the
//! zero-allocation scratch parser, on the Table III synthetic corpora.
//!
//! Measures parse-stage throughput (MB/s of uncompressed input, tokens/s)
//! for both implementations on in-memory document batches, asserting byte
//! identity of every `ParsedBatch` along the way, and writes the result to
//! a committed JSON baseline (`BENCH_parse.json` at the repo root).
//!
//! Modes:
//!   parse_hotpath [--scale F] [--out PATH]   measure and write baseline
//!   parse_hotpath --check PATH [--scale F]   regression gate against a
//!       committed baseline: re-measures, normalizes for host speed via
//!       the naive parser's ratio, and fails (exit 1) if the optimized
//!       parser's throughput dropped more than 25% beyond that.

use ii_core::corpus::{CollectionGenerator, CollectionSpec, RawDocument};
use ii_core::text::{parse_documents_into, parse_documents_reference, ParseScratch};
use serde::{Deserialize, Serialize};
use std::time::Instant;

/// Throughput for one implementation on one corpus.
#[derive(Debug, Serialize, Deserialize)]
struct Throughput {
    mb_s: f64,
    tokens_s: f64,
    seconds: f64,
}

/// Measurement for one Table III corpus.
#[derive(Debug, Serialize, Deserialize)]
struct CorpusResult {
    name: String,
    files: usize,
    docs: usize,
    input_bytes: u64,
    tokens: u64,
    naive: Throughput,
    optimized: Throughput,
    speedup: f64,
}

/// The committed baseline document. No timestamps or host identifiers:
/// the `--check` gate normalizes across hosts via the naive throughput,
/// and a timestamp would churn the diff on every regeneration.
#[derive(Debug, Serialize, Deserialize)]
struct BenchReport {
    scale: f64,
    repetitions: usize,
    corpora: Vec<CorpusResult>,
    overall: Overall,
}

/// Aggregate across all corpora (total bytes / total best-rep seconds).
#[derive(Debug, Serialize, Deserialize)]
struct Overall {
    naive_mb_s: f64,
    optimized_mb_s: f64,
    speedup: f64,
}

const MB: f64 = 1024.0 * 1024.0;

fn table3_specs(scale: f64) -> Vec<CollectionSpec> {
    vec![
        CollectionSpec::clueweb_like(scale),
        CollectionSpec::wikipedia_like(scale),
        CollectionSpec::congress_like(scale),
    ]
}

/// Time `reps` full passes over the batches, returning the best (minimum)
/// wall seconds — the standard guard against scheduler noise.
fn best_of<F: FnMut()>(reps: usize, mut pass: F) -> f64 {
    let mut best = f64::INFINITY;
    for _ in 0..reps {
        let t = Instant::now();
        pass();
        best = best.min(t.elapsed().as_secs_f64());
    }
    best
}

fn measure_corpus(spec: &CollectionSpec, reps: usize) -> CorpusResult {
    let generator = CollectionGenerator::new(spec.clone());
    let batches: Vec<Vec<RawDocument>> =
        (0..spec.num_files).map(|f| generator.generate_file(f)).collect();
    let input_bytes: u64 = batches
        .iter()
        .flatten()
        .map(|d| (d.url.len() + d.body.len()) as u64)
        .sum();
    let docs: usize = batches.iter().map(Vec::len).sum();
    let html = spec.html;

    // Correctness first: every batch must be byte-identical between the
    // two implementations (with scratch reuse + recycling, as in the
    // pipeline's steady state) before we trust the timings.
    let mut scratch = ParseScratch::new();
    let mut tokens = 0u64;
    for (f, docs) in batches.iter().enumerate() {
        let reference = parse_documents_reference(docs, html, f);
        let optimized = parse_documents_into(&mut scratch, docs, html, f);
        assert_eq!(
            optimized, reference,
            "parser divergence on {} file {f}",
            spec.name
        );
        tokens += optimized.stats.tokens;
        scratch.recycle(optimized);
    }

    let naive_s = best_of(reps, || {
        for (f, docs) in batches.iter().enumerate() {
            std::hint::black_box(parse_documents_reference(docs, html, f));
        }
    });
    let optimized_s = best_of(reps, || {
        for (f, docs) in batches.iter().enumerate() {
            let batch =
                std::hint::black_box(parse_documents_into(&mut scratch, docs, html, f));
            scratch.recycle(batch);
        }
    });

    let throughput = |s: f64| Throughput {
        mb_s: input_bytes as f64 / MB / s,
        tokens_s: tokens as f64 / s,
        seconds: s,
    };
    CorpusResult {
        name: spec.name.clone(),
        files: spec.num_files,
        docs,
        input_bytes,
        tokens,
        naive: throughput(naive_s),
        optimized: throughput(optimized_s),
        speedup: naive_s / optimized_s,
    }
}

fn measure(scale: f64, reps: usize) -> BenchReport {
    let mut corpora = Vec::new();
    for spec in table3_specs(scale) {
        eprintln!("[parse_hotpath] measuring {} ...", spec.name);
        corpora.push(measure_corpus(&spec, reps));
    }
    let total_bytes: u64 = corpora.iter().map(|c| c.input_bytes).sum();
    let naive_s: f64 = corpora.iter().map(|c| c.naive.seconds).sum();
    let optimized_s: f64 = corpora.iter().map(|c| c.optimized.seconds).sum();
    let overall = Overall {
        naive_mb_s: total_bytes as f64 / MB / naive_s,
        optimized_mb_s: total_bytes as f64 / MB / optimized_s,
        speedup: naive_s / optimized_s,
    };
    BenchReport { scale, repetitions: reps, corpora, overall }
}

fn print_report(report: &BenchReport) {
    println!(
        "{:<22} {:>9} {:>8} {:>12} {:>12} {:>8}",
        "corpus", "MB", "tokens", "naive MB/s", "opt MB/s", "speedup"
    );
    ii_bench::rule(76);
    for c in &report.corpora {
        println!(
            "{:<22} {:>9.2} {:>7}k {:>12.1} {:>12.1} {:>7.2}x",
            c.name,
            c.input_bytes as f64 / MB,
            c.tokens / 1000,
            c.naive.mb_s,
            c.optimized.mb_s,
            c.speedup
        );
    }
    ii_bench::rule(76);
    println!(
        "{:<22} {:>9} {:>8} {:>12.1} {:>12.1} {:>7.2}x",
        "overall",
        "",
        "",
        report.overall.naive_mb_s,
        report.overall.optimized_mb_s,
        report.overall.speedup
    );
}

/// Tolerated fraction of (host-normalized) baseline throughput. 25%
/// headroom absorbs CI jitter; a real regression from undoing the
/// zero-allocation work is far larger (the baseline speedup is >2x).
const CHECK_TOLERANCE: f64 = 0.75;

fn run_check(baseline_path: &str, scale_override: Option<f64>, reps: usize) -> i32 {
    let text = match std::fs::read_to_string(baseline_path) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("[parse_hotpath] cannot read baseline {baseline_path}: {e}");
            return 1;
        }
    };
    let baseline: BenchReport = match serde_json::from_str(&text) {
        Ok(b) => b,
        Err(e) => {
            eprintln!("[parse_hotpath] cannot parse baseline {baseline_path}: {e}");
            return 1;
        }
    };
    let scale = scale_override.unwrap_or(baseline.scale);
    let now = measure(scale, reps);
    print_report(&now);

    // The naive parser is the host-speed yardstick: it shares the input,
    // the output format, and the single-threaded setting, but none of the
    // optimizations under test. Its ratio to the baseline host cancels
    // out CPU-speed differences.
    let host_factor = now.overall.naive_mb_s / baseline.overall.naive_mb_s;
    let expected = baseline.overall.optimized_mb_s * host_factor;
    let floor = expected * CHECK_TOLERANCE;
    println!(
        "\n[check] baseline opt {:.1} MB/s x host factor {:.2} => expected {:.1}, \
         floor {:.1}, measured {:.1} MB/s",
        baseline.overall.optimized_mb_s,
        host_factor,
        expected,
        floor,
        now.overall.optimized_mb_s
    );
    if now.overall.optimized_mb_s < floor {
        eprintln!(
            "[check] FAIL: optimized parse throughput regressed more than {:.0}% \
             vs the committed baseline",
            (1.0 - CHECK_TOLERANCE) * 100.0
        );
        1
    } else {
        println!("[check] OK");
        0
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut scale: Option<f64> = None;
    let mut out = "BENCH_parse.json".to_string();
    let mut check: Option<String> = None;
    let mut reps = 5usize;
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--scale" => {
                i += 1;
                scale = Some(args[i].parse().expect("--scale takes a number"));
            }
            "--out" => {
                i += 1;
                out = args[i].clone();
            }
            "--check" => {
                i += 1;
                check = Some(args[i].clone());
            }
            "--reps" => {
                i += 1;
                reps = args[i].parse().expect("--reps takes an integer");
            }
            other => {
                eprintln!(
                    "unknown argument {other}\n\
                     usage: parse_hotpath [--scale F] [--out PATH] [--reps N] [--check PATH]"
                );
                std::process::exit(2);
            }
        }
        i += 1;
    }

    if let Some(baseline) = check {
        std::process::exit(run_check(&baseline, scale, reps));
    }

    let report = measure(scale.unwrap_or(0.5), reps);
    print_report(&report);
    let mut json = serde_json::to_string_pretty(&report).expect("serialize report");
    json.push('\n');
    ii_core::store::write_file_durable(&ii_core::store::RealVfs, std::path::Path::new(&out), json.as_bytes())
        .expect("write baseline");
    println!("\n[parse_hotpath] baseline written to {out}");
}
