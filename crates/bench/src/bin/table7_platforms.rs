//! Table VII — platform configuration comparison (descriptive), extended
//! with this reproduction's simulated platform.

use ii_core::gpusim::GpuConfig;

fn main() {
    println!("TABLE VII. PLATFORM CONFIGURATION COMPARISON\n");
    let rows: [(&str, [&str; 4]); 5] = [
        (
            "Processors/node",
            [
                "2x Xeon 2.8GHz quad-core + 2x Tesla C1060",
                "2x Intel single-core 2.8GHz",
                "1x Xeon 2.4GHz quad-core (1 core for DFS)",
                "host CPU + N simulated C1060 (ii-gpusim)",
            ],
        ),
        ("Memory/node", ["24 GB", "4 GB", "4 GB", "host RAM"]),
        ("Nodes", ["1", "99", "8", "1"]),
        ("Total CPU cores", ["8", "198", "24", "this host's cores"]),
        (
            "File system",
            ["remote FS via 1Gb Ethernet", "HDFS", "HDFS", "local disk + LZSS containers"],
        ),
    ];
    println!(
        "{:<18}{:<44}{:<30}{:<44}{:<44}",
        "", "This Paper", "Ivory MapReduce", "SP MapReduce", "This Reproduction"
    );
    ii_bench::rule(178);
    for (label, cols) in rows {
        println!("{:<18}{:<44}{:<30}{:<44}{:<44}", label, cols[0], cols[1], cols[2], cols[3]);
    }
    ii_bench::rule(178);

    let g = GpuConfig::default();
    println!("\nsimulated GPU parameters (ii-gpusim defaults, Tesla C1060):");
    println!("  SMs: {}   clock: {:.3} GHz   warp: {}   shared mem: {} KB / {} banks",
        g.num_sms, g.clock_hz / 1e9, g.warp_size, g.shared_bytes / 1024, g.banks);
    println!("  global latency: {} cycles   coalescing segment: {} B   PCIe: {:.1} GB/s",
        g.mem_latency, g.segment_bytes, g.pcie_bytes_per_sec / 1e9);
    assert_eq!(g.num_sms, 30);
    assert_eq!(g.warp_size, 32);
}
