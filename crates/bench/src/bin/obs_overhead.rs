//! Measures what the always-on `ii-obs` layer costs an end-to-end build.
//!
//! Three parts: (1) microbench the per-event primitives (relaxed-atomic
//! counter add, full `StageSpan` open/close, and the event tracer's span
//! in both disabled and enabled states); (2) run a real pipeline build,
//! count every event it recorded, and price the instrumentation as
//! `events x per-event cost / build wall time` — the acceptance bar for
//! the always-on path (tracing compiled in but disabled) is <2% of
//! end-to-end throughput; (3) run the same build with tracing enabled
//! and report the opt-in cost (informational, no gate).

use ii_core::corpus::CollectionSpec;
use ii_core::obs::{FlightRecorder, Heartbeat, Registry, TraceKind, Tracer};
use ii_core::pipeline::{build_index, PipelineConfig};
use std::sync::Arc;
use std::time::{Duration, Instant};

fn ns_per<F: FnMut()>(iters: u64, mut f: F) -> f64 {
    let t = Instant::now();
    for _ in 0..iters {
        f();
    }
    t.elapsed().as_nanos() as f64 / iters as f64
}

fn main() {
    // --- per-event primitive costs ---------------------------------------
    let r = Registry::new();
    let c = r.counter("bench.counter");
    let counter_ns = ns_per(10_000_000, || c.add(1));
    let stage = r.stage("bench.stage");
    let span_ns = ns_per(1_000_000, || {
        let mut s = stage.span();
        s.add_bytes(4096);
    });
    let disabled = Tracer::disabled().sink("bench");
    let disabled_trace_ns = ns_per(10_000_000, || {
        let mut s = disabled.span(TraceKind::Parse);
        s.add_bytes(4096);
    });
    let tracer = Tracer::new(65_536);
    let enabled_sink = tracer.sink("bench");
    let enabled_trace_ns = ns_per(1_000_000, || {
        let mut s = enabled_sink.span(TraceKind::Parse);
        s.add_bytes(4096);
    });
    println!("per-event cost (measured):");
    println!("  counter add        {counter_ns:>8.1} ns");
    println!("  stage span (open+bytes+close) {span_ns:>8.1} ns");
    println!("  trace span, disabled (the always-on path) {disabled_trace_ns:>8.2} ns");
    println!("  trace span, enabled (opt-in --trace)      {enabled_trace_ns:>8.1} ns");

    // --- flight recorder primitives ---------------------------------------
    // The black-box ring defaults to ON; its steady-state cost is one
    // throttle check per pipeline loop turn plus one full sample per
    // cadence interval. Watch a driver-shaped set: a stage, governor
    // gauges, queue gauges, and per-worker heartbeats.
    let off = FlightRecorder::disabled();
    let recorder_off_ns = ns_per(10_000_000, || {
        off.maybe_sample();
    });
    let fr = FlightRecorder::new(256, Duration::from_millis(20));
    fr.watch_stage("index", r.stage("bench.stage"));
    fr.watch_counter("governor.high_water_bytes", r.counter("bench.counter"));
    for g in 0..8 {
        fr.watch_gauge(&format!("gauge.{g}"), r.gauge(&format!("bench.gauge.{g}")));
    }
    for w in 0..4 {
        fr.watch_heartbeat(&format!("worker-{w}"), Arc::new(Heartbeat::new()));
    }
    // Throttled path: every call lands inside the 20 ms cadence window.
    fr.force_sample();
    let recorder_throttled_ns = ns_per(1_000_000, || {
        fr.maybe_sample();
    });
    let recorder_sample_ns = ns_per(100_000, || {
        fr.force_sample();
    });
    println!("  flight recorder, disabled maybe_sample    {recorder_off_ns:>8.2} ns");
    println!("  flight recorder, throttled maybe_sample   {recorder_throttled_ns:>8.1} ns");
    println!("  flight recorder, full sample (15 probes)  {recorder_sample_ns:>8.1} ns");

    // --- events recorded by a real build ---------------------------------
    let spec = CollectionSpec::clueweb_like(ii_bench::MEASURED_SCALE * 0.2);
    let coll = ii_bench::stored_collection("obs-overhead", spec);
    let mut cfg = PipelineConfig::small(2, 2, 1);
    cfg.popular_count = 20;
    let t = Instant::now();
    let out = build_index(&coll, &cfg).expect("build");
    let wall_ns = t.elapsed().as_nanos() as f64;

    let snap = &out.report.stages.snapshot;
    // Every stage item is one span; every counter value arrived through
    // add() calls (deep counters are exported once per component, so this
    // over-counts — the estimate is conservative).
    let spans: u64 = snap.stages.values().map(|s| s.items).sum();
    let n_counters = snap.counters.len() as u64;

    // --- opt-in: the same build with event tracing enabled ----------------
    let mut traced_cfg = cfg.clone();
    traced_cfg.trace.enabled = true;
    let t = Instant::now();
    let traced = build_index(&coll, &traced_cfg).expect("traced build");
    let traced_wall_ns = t.elapsed().as_nanos() as f64;
    let trace = traced.report.trace.as_ref().expect("trace present when enabled");
    let trace_events = (trace.num_events() as u64) + trace.dropped;

    // The disabled tracer costs one branch per would-be span; price those
    // events at the measured disabled rate alongside the metrics layer.
    let cost_ns = spans as f64 * span_ns
        + n_counters as f64 * counter_ns
        + trace_events as f64 * disabled_trace_ns;
    let overhead = cost_ns / wall_ns * 100.0;

    println!("\nend-to-end build: {:.3} s, {} spans, {} counters, {} trace call sites",
        wall_ns / 1e9, spans, n_counters, trace_events);
    println!("instrumentation cost (tracing compiled in, disabled): {:.1} µs total = {overhead:.4}% of build wall time",
        cost_ns / 1e3);
    let enabled_cost_ns = trace_events as f64 * enabled_trace_ns;
    println!("tracing enabled (opt-in --trace): {trace_events} events recorded, \
              ~{:.1} µs recording cost, traced build wall {:.3} s vs {:.3} s untraced",
        enabled_cost_ns / 1e3, traced_wall_ns / 1e9, wall_ns / 1e9);
    println!("acceptance bar (disabled path): < 2%  ->  {}",
        if overhead < 2.0 { "PASS" } else { "FAIL" });
    assert!(overhead < 2.0, "observability overhead {overhead:.3}% exceeds 2%");

    // --- flight recorder priced over the same build ------------------------
    // The driver calls maybe_sample once per loop turn; spans over-counts
    // loop turns, so pricing every span at the throttle-check rate is
    // conservative. Full samples are cadence-bounded: at most one per
    // 20 ms of build wall time (plus the forced sample a bundle cuts).
    let cadence_ns = 20e6;
    let max_samples = (wall_ns / cadence_ns).ceil() + 1.0;
    let recorder_cost_ns =
        spans as f64 * recorder_throttled_ns + max_samples * recorder_sample_ns;
    let recorder_pct = recorder_cost_ns / wall_ns * 100.0;
    let recorder_off_pct = spans as f64 * recorder_off_ns / wall_ns * 100.0;
    println!("\nflight recorder (enabled, 20 ms cadence): ≤{max_samples:.0} samples, \
              {:.1} µs priced = {recorder_pct:.4}% of build wall time",
        recorder_cost_ns / 1e3);
    println!("flight recorder (disabled): {recorder_off_pct:.5}% of build wall time");
    println!("acceptance bar (recorder enabled): < 2%  ->  {}",
        if recorder_pct < 2.0 { "PASS" } else { "FAIL" });
    assert!(recorder_pct < 2.0, "flight recorder overhead {recorder_pct:.3}% exceeds 2%");
    assert!(
        recorder_off_pct < 0.1,
        "disabled flight recorder must be free, costs {recorder_off_pct:.4}%"
    );
}
