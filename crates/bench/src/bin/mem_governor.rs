//! Memory-governor benchmark: the cost of a budget.
//!
//! Measures the unconstrained build's memory high-water mark on a
//! Table III-style corpus, then re-runs the identical build at shrinking
//! fractions of that figure and records the budget-vs-throughput curve —
//! how much wall-clock the degradation ladder (credit-gate backpressure,
//! early run flushes, GPU-shard shedding) costs at each budget. Before any
//! timing is trusted, every constrained build's dictionary must be
//! byte-identical to the unconstrained one. Results land in a committed
//! JSON baseline (`BENCH_memory.json` at the repo root).
//!
//! Modes:
//!   mem_governor [--scale F] [--out PATH] [--reps N]   measure + write
//!   mem_governor --check PATH [--scale F] [--reps N]   regression gate:
//!       re-measures, normalizes for host speed via the unconstrained
//!       build's throughput, and fails (exit 1) if any budget point's
//!       throughput dropped more than 40% beyond that, if a point's
//!       refusal outcome flipped, or if a tight budget no longer reduces
//!       the measured high-water mark below the unconstrained one.
//!
//! The corpus is deliberately many-small-files (unlike the Table III
//! stand-ins): the credit gate admits a whole batch at a time, so a
//! corpus of three huge containers would measure nothing but the
//! always-admit-the-laggard rule. Small batches make the gate, the flush
//! watermark, and the shed rung all do real work.

use ii_core::corpus::{CollectionSpec, StoredCollection};
use ii_core::pipeline::{
    build_index, GovernorPolicy, IndexOutput, PipelineConfig, PipelineError,
};
use serde::{Deserialize, Serialize};
use std::sync::Arc;

/// One point on the budget-vs-throughput curve.
#[derive(Debug, Serialize, Deserialize)]
struct CurvePoint {
    /// Fraction of the unconstrained high-water mark (1.0 = exactly it).
    fraction: f64,
    budget_bytes: u64,
    /// The build refused with `MemoryBudgetExceeded` (tiny budgets on
    /// small corpora legitimately cannot fit the fixed dictionary
    /// tables). Refusal is content-deterministic, so it must reproduce.
    refused: bool,
    mb_s: f64,
    seconds: f64,
    high_water_bytes: u64,
    early_flushes: u64,
    gpu_sheds: u64,
    credit_waits: u64,
}

/// The committed baseline. No timestamps or host identifiers: the
/// `--check` gate normalizes across hosts via the unconstrained build's
/// throughput, and a timestamp would churn the diff on every regeneration.
#[derive(Debug, Serialize, Deserialize)]
struct BenchReport {
    scale: f64,
    repetitions: usize,
    corpus: String,
    input_bytes: u64,
    docs: u32,
    unconstrained: Unconstrained,
    curve: Vec<CurvePoint>,
}

#[derive(Debug, Serialize, Deserialize)]
struct Unconstrained {
    high_water_bytes: u64,
    mb_s: f64,
    seconds: f64,
}

const FRACTIONS: [f64; 4] = [1.0, 0.75, 0.5, 0.25];

/// Many small containers (`--scale` multiplies the file count): batch
/// footprints stay well under the credit gate at every measured budget.
fn bench_spec(scale: f64) -> CollectionSpec {
    CollectionSpec {
        name: "governor-bench".into(),
        num_files: ((48.0 * scale).round() as usize).max(8),
        docs_per_file: 120,
        mean_doc_tokens: 300,
        vocab_size: 30_000,
        zipf_s: 1.0,
        html: false,
        seed: 0x9013,
        shift: None,
    }
}

fn cfg_with(governor: GovernorPolicy) -> PipelineConfig {
    let mut cfg = PipelineConfig::small(2, 1, 1);
    cfg.batches_per_run = 2;
    cfg.governor = governor;
    cfg
}

fn gauge(out: &IndexOutput, name: &str) -> u64 {
    out.report.stages.gauge(name) as u64
}

/// Best-of-`reps` build at one governor policy. Returns the fastest
/// output (all repetitions produce identical bytes).
fn timed_build(
    coll: &Arc<StoredCollection>,
    governor: GovernorPolicy,
    reps: usize,
) -> Result<IndexOutput, PipelineError> {
    let cfg = cfg_with(governor);
    let mut best: Option<IndexOutput> = None;
    for _ in 0..reps {
        let out = build_index(coll, &cfg)?;
        if best.as_ref().is_none_or(|b| out.report.total_seconds < b.report.total_seconds) {
            best = Some(out);
        }
    }
    Ok(best.expect("reps >= 1"))
}

fn measure(scale: f64, reps: usize) -> BenchReport {
    let spec = bench_spec(scale);
    let dir = std::env::temp_dir().join(format!("ii-bench-governor-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let coll =
        Arc::new(StoredCollection::generate(spec.clone(), &dir).expect("generate corpus"));

    eprintln!("[mem_governor] unconstrained build ...");
    let base = timed_build(&coll, GovernorPolicy::unlimited(), reps)
        .expect("unconstrained build cannot be refused");
    let high_water = gauge(&base, "governor.high_water_bytes");
    assert!(high_water > 0, "governor accounting must run even unlimited");

    let mut curve = Vec::new();
    for fraction in FRACTIONS {
        let budget = (high_water as f64 * fraction) as u64;
        eprintln!(
            "[mem_governor] budget {:.0}% of high water ({:.1} MB) ...",
            fraction * 100.0,
            budget as f64 / 1e6
        );
        match timed_build(&coll, GovernorPolicy::default().with_budget(budget), reps) {
            Ok(out) => {
                // Correctness before timing: a budget changes run
                // boundaries, never the dictionary.
                assert_eq!(
                    out.dict_bytes, base.dict_bytes,
                    "budget {budget} produced a different dictionary"
                );
                curve.push(CurvePoint {
                    fraction,
                    budget_bytes: budget,
                    refused: false,
                    mb_s: out.report.throughput_mb_s(),
                    seconds: out.report.total_seconds,
                    high_water_bytes: gauge(&out, "governor.high_water_bytes"),
                    early_flushes: out.report.stages.counter("governor.early_flushes"),
                    gpu_sheds: out.report.stages.counter("governor.gpu_sheds"),
                    credit_waits: out.report.stages.counter("governor.credit_waits"),
                });
            }
            Err(PipelineError::MemoryBudgetExceeded { .. }) => {
                curve.push(CurvePoint {
                    fraction,
                    budget_bytes: budget,
                    refused: true,
                    mb_s: 0.0,
                    seconds: 0.0,
                    high_water_bytes: 0,
                    early_flushes: 0,
                    gpu_sheds: 0,
                    credit_waits: 0,
                });
            }
            Err(e) => panic!("budget {budget}: unexpected error {e}"),
        }
    }
    let _ = std::fs::remove_dir_all(&dir);
    BenchReport {
        scale,
        repetitions: reps,
        corpus: spec.name,
        input_bytes: base.report.uncompressed_bytes,
        docs: base.report.docs,
        unconstrained: Unconstrained {
            high_water_bytes: high_water,
            mb_s: base.report.throughput_mb_s(),
            seconds: base.report.total_seconds,
        },
        curve,
    }
}

fn print_report(report: &BenchReport) {
    println!(
        "{:<14} {:>12} {:>10} {:>12} {:>8} {:>7} {:>7}",
        "budget", "bytes", "MB/s", "high water", "eflush", "sheds", "waits"
    );
    ii_bench::rule(76);
    println!(
        "{:<14} {:>12} {:>10.1} {:>12} {:>8} {:>7} {:>7}",
        "unlimited",
        "-",
        report.unconstrained.mb_s,
        report.unconstrained.high_water_bytes,
        "-",
        "-",
        "-"
    );
    for p in &report.curve {
        if p.refused {
            println!(
                "{:<14} {:>12} {:>10} (typed MemoryBudgetExceeded refusal)",
                format!("{:.0}% of HW", p.fraction * 100.0),
                p.budget_bytes,
                "refused"
            );
        } else {
            println!(
                "{:<14} {:>12} {:>10.1} {:>12} {:>8} {:>7} {:>7}",
                format!("{:.0}% of HW", p.fraction * 100.0),
                p.budget_bytes,
                p.mb_s,
                p.high_water_bytes,
                p.early_flushes,
                p.gpu_sheds,
                p.credit_waits
            );
        }
    }
}

/// Tolerated fraction of (host-normalized) baseline throughput per curve
/// point. Budget-constrained builds jitter more than unconstrained ones
/// (backpressure interacts with scheduling), so the floor is looser than
/// the hot-path gates.
const CHECK_TOLERANCE: f64 = 0.6;

fn run_check(baseline_path: &str, scale_override: Option<f64>, reps: usize) -> i32 {
    let text = match std::fs::read_to_string(baseline_path) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("[mem_governor] cannot read baseline {baseline_path}: {e}");
            return 1;
        }
    };
    let baseline: BenchReport = match serde_json::from_str(&text) {
        Ok(b) => b,
        Err(e) => {
            eprintln!("[mem_governor] cannot parse baseline {baseline_path}: {e}");
            return 1;
        }
    };
    let scale = scale_override.unwrap_or(baseline.scale);
    let now = measure(scale, reps);
    print_report(&now);

    // The unconstrained build is the host-speed yardstick: same corpus,
    // same pipeline, no governor pressure. Its ratio to the baseline host
    // cancels out CPU-speed differences.
    let host_factor = now.unconstrained.mb_s / baseline.unconstrained.mb_s;
    println!("\n[check] host factor {host_factor:.2} vs baseline");
    let mut failures = 0;
    for (b, n) in baseline.curve.iter().zip(&now.curve) {
        if b.refused != n.refused {
            eprintln!(
                "[check] FAIL: budget point {:.0}% flipped refusal outcome \
                 (baseline refused={}, now refused={})",
                b.fraction * 100.0,
                b.refused,
                n.refused
            );
            failures += 1;
            continue;
        }
        if n.refused {
            continue;
        }
        // The footprint contract: any real budget must measurably shrink
        // the high-water mark vs the unconstrained build (the exact bound
        // is budget + one batch per parser, which only the build itself
        // can know — "strictly below unconstrained" is the host-portable
        // invariant).
        if n.fraction < 1.0 && n.high_water_bytes >= now.unconstrained.high_water_bytes {
            eprintln!(
                "[check] FAIL: budget point {:.0}% high water {} did not shrink below \
                 the unconstrained {}",
                n.fraction * 100.0,
                n.high_water_bytes,
                now.unconstrained.high_water_bytes
            );
            failures += 1;
        }
        let floor = b.mb_s * host_factor * CHECK_TOLERANCE;
        println!(
            "[check] {:.0}%: baseline {:.1} MB/s => floor {:.1}, measured {:.1} MB/s",
            b.fraction * 100.0,
            b.mb_s,
            floor,
            n.mb_s
        );
        if n.mb_s < floor {
            eprintln!(
                "[check] FAIL: budgeted throughput at {:.0}% regressed more than {:.0}%",
                b.fraction * 100.0,
                (1.0 - CHECK_TOLERANCE) * 100.0
            );
            failures += 1;
        }
    }
    if failures > 0 {
        eprintln!("[check] {failures} budget point(s) failed");
        1
    } else {
        println!("[check] OK");
        0
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut scale: Option<f64> = None;
    let mut out = "BENCH_memory.json".to_string();
    let mut check: Option<String> = None;
    let mut reps = 3usize;
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--scale" => {
                i += 1;
                scale = Some(args[i].parse().expect("--scale takes a number"));
            }
            "--out" => {
                i += 1;
                out = args[i].clone();
            }
            "--check" => {
                i += 1;
                check = Some(args[i].clone());
            }
            "--reps" => {
                i += 1;
                reps = args[i].parse().expect("--reps takes an integer");
            }
            other => {
                eprintln!(
                    "unknown argument {other}\n\
                     usage: mem_governor [--scale F] [--out PATH] [--reps N] [--check PATH]"
                );
                std::process::exit(2);
            }
        }
        i += 1;
    }

    if let Some(baseline) = check {
        std::process::exit(run_check(&baseline, scale, reps));
    }

    let report = measure(scale.unwrap_or(1.0), reps);
    print_report(&report);
    let mut json = serde_json::to_string_pretty(&report).expect("serialize report");
    json.push('\n');
    ii_core::store::write_file_durable(&ii_core::store::RealVfs, std::path::Path::new(&out), json.as_bytes())
        .expect("write baseline");
    println!("\n[mem_governor] baseline written to {out}");
}
