//! Ablation — size of the popular group (§III.E).
//!
//! The paper assigns "around one hundred" popular trie collections to the
//! CPU. This harness sweeps the popular-group size on a real collection
//! and reports the resulting CPU/GPU token split and distinct-term split,
//! showing the Zipf-head concentration the load balancer exploits: a few
//! dozen collections already carry ~half the tokens while holding only a
//! sliver of the distinct terms.

use ii_core::corpus::CollectionSpec;
use ii_core::indexer::GpuIndexerConfig;
use ii_core::pipeline::{build_index, PipelineConfig};

fn main() {
    let spec = CollectionSpec::clueweb_like(0.4);
    let coll = ii_bench::stored_collection("ablate-popular", spec);
    println!("ABLATION: popular-group size vs CPU/GPU workload split (measured)\n");
    println!(
        "{:<12}{:>14}{:>14}{:>16}{:>16}",
        "popular", "CPU tokens %", "CPU terms %", "GPU/CPU tokens", "GPU/CPU terms"
    );
    ii_bench::rule(74);
    for popular in [0usize, 5, 20, 50, 100, 200, 400] {
        let cfg = PipelineConfig {
            num_parsers: 2,
            num_cpu_indexers: 2,
            num_gpus: 2,
            gpu_config: GpuIndexerConfig::small(),
            popular_count: popular,
            ..Default::default()
        };
        let out = build_index(&coll, &cfg).expect("index build");
        let cpu = out.report.cpu_stats;
        let gpu = out.report.gpu_stats;
        let tok_total = (cpu.tokens + gpu.tokens) as f64;
        let term_total = (cpu.terms + gpu.terms) as f64;
        println!(
            "{:<12}{:>13.1}%{:>13.1}%{:>15.2}x{:>15.2}x",
            popular,
            cpu.tokens as f64 / tok_total * 100.0,
            cpu.terms as f64 / term_total * 100.0,
            gpu.tokens as f64 / cpu.tokens.max(1) as f64,
            gpu.terms as f64 / cpu.terms.max(1) as f64,
        );
    }
    ii_bench::rule(74);
    println!("\nexpected shape: token share grows fast then saturates (Zipf head), while the");
    println!("CPU's distinct-term share stays small — exactly why popular collections are");
    println!("cache-friendly on the CPU and the long tail is data-parallel work for the GPU.");
}
