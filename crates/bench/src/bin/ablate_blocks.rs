//! Ablation — §IV.B thread-block count: the paper found 480 blocks per GPU
//! optimal for its dynamic round-robin scheduling of trie collections.
//!
//! We launch the real GPU indexer kernel over a Zipf-skewed batch with
//! varying block counts and report *simulated device seconds*: too few
//! blocks leave SMs idle behind the skewed long pole; beyond saturation
//! extra blocks stop helping.

use ii_core::corpus::{CollectionGenerator, CollectionSpec};
use ii_core::indexer::{GpuIndexer, GpuIndexerConfig};
use ii_core::text::parse_documents;

fn main() {
    let mut spec = CollectionSpec::clueweb_like(0.3);
    spec.docs_per_file = 250;
    let gen = CollectionGenerator::new(spec.clone());
    let docs = gen.generate_file(0);
    let batch = parse_documents(&docs, spec.html, 0);
    let groups: Vec<&ii_core::text::TrieGroup> = batch.groups.iter().collect();
    println!(
        "ABLATION: GPU thread-block count ({} trie collections, {} tokens)\n",
        groups.len(),
        batch.stats.terms_kept
    );
    println!("{:<10}{:>22}{:>16}", "blocks", "device seconds (sim)", "SM utilization");
    ii_bench::rule(50);
    let mut results = Vec::new();
    for blocks in [1usize, 8, 30, 60, 120, 240, 480, 960] {
        let cfg = GpuIndexerConfig { num_blocks: blocks, ..GpuIndexerConfig::small() };
        let mut gpu = GpuIndexer::new(0, cfg);
        let rep = gpu.index_batch(&groups, 0);
        println!("{:<10}{:>22.4}{:>15.1}%", blocks, rep.device_seconds, rep.utilization * 100.0);
        results.push((blocks, rep.device_seconds));
    }
    ii_bench::rule(50);
    let t1 = results[0].1;
    let t480 = results.iter().find(|(b, _)| *b == 480).unwrap().1;
    let t960 = results.iter().find(|(b, _)| *b == 960).unwrap().1;
    println!("\nshape: 480 blocks {:.1}x faster than 1 block; 960 within {:.1}% of 480",
        t1 / t480,
        ((t960 - t480) / t480 * 100.0).abs()
    );
    println!("(paper: best performance at 480 thread blocks per C1060)");
    assert!(t480 < t1, "parallel blocks must beat a single block");
    assert!((t960 - t480).abs() / t480 < 0.10, "beyond saturation: flat");
}
