//! Dictionary insert hot-path benchmark: frozen reference shard (binary
//! search over `[u8; 4]` caches, per-visit node clones, `HashMap` tree
//! lookup) vs. the slotted-node fast path, on the Table III synthetic
//! corpora.
//!
//! Measures dictionary-insert throughput (tokens/s, MB/s of term payload)
//! for both implementations over the exact token streams the indexers see
//! (parsed trie groups in batch order), asserting identical insert
//! outcomes and byte-identical combined dictionaries before trusting the
//! timings, and writes the result to a committed JSON baseline
//! (`BENCH_index.json` at the repo root).
//!
//! Modes:
//!   dict_hotpath [--scale F] [--out PATH]   measure and write baseline
//!   dict_hotpath --check PATH [--scale F]   regression gate against a
//!       committed baseline: re-measures, normalizes for host speed via
//!       the reference path's ratio, and fails (exit 1) if the slotted
//!       path's throughput dropped more than 25% beyond that.

use ii_core::corpus::{CollectionGenerator, CollectionSpec};
use ii_core::dict::{
    combine_reference, GlobalDictionary, PartialDictionary, ReferenceDictionary,
};
use ii_core::text::{parse_documents, ParsedBatch};
use serde::{Deserialize, Serialize};
use std::time::Instant;

/// Throughput for one implementation on one corpus.
#[derive(Debug, Serialize, Deserialize)]
struct Throughput {
    mb_s: f64,
    tokens_s: f64,
    seconds: f64,
}

/// Measurement for one Table III corpus.
#[derive(Debug, Serialize, Deserialize)]
struct CorpusResult {
    name: String,
    files: usize,
    docs: usize,
    /// Term payload bytes fed to the dictionary (per pass).
    input_bytes: u64,
    tokens: u64,
    terms: u64,
    naive: Throughput,
    optimized: Throughput,
    speedup: f64,
}

/// The committed baseline document. No timestamps or host identifiers:
/// the `--check` gate normalizes across hosts via the reference-path
/// throughput, and a timestamp would churn the diff on every regeneration.
#[derive(Debug, Serialize, Deserialize)]
struct BenchReport {
    scale: f64,
    repetitions: usize,
    corpora: Vec<CorpusResult>,
    overall: Overall,
}

/// Aggregate across all corpora (total bytes / total best-rep seconds).
#[derive(Debug, Serialize, Deserialize)]
struct Overall {
    naive_mb_s: f64,
    optimized_mb_s: f64,
    speedup: f64,
}

const MB: f64 = 1024.0 * 1024.0;

fn table3_specs(scale: f64) -> Vec<CollectionSpec> {
    vec![
        CollectionSpec::clueweb_like(scale),
        CollectionSpec::wikipedia_like(scale),
        CollectionSpec::congress_like(scale),
    ]
}

/// Time `reps` full passes, returning the best (minimum) wall seconds.
fn best_of<F: FnMut()>(reps: usize, mut pass: F) -> f64 {
    let mut best = f64::INFINITY;
    for _ in 0..reps {
        let t = Instant::now();
        pass();
        best = best.min(t.elapsed().as_secs_f64());
    }
    best
}

fn insert_all_reference(batches: &[ParsedBatch]) -> ReferenceDictionary {
    let mut dict = ReferenceDictionary::new(0);
    for batch in batches {
        for g in &batch.groups {
            for (_, term) in g.iter_terms() {
                std::hint::black_box(dict.insert_reference(g.trie_index, term));
            }
        }
    }
    dict
}

fn insert_all_slotted(batches: &[ParsedBatch]) -> PartialDictionary {
    let mut dict = PartialDictionary::new(0);
    for batch in batches {
        for g in &batch.groups {
            for (_, term) in g.iter_terms() {
                std::hint::black_box(dict.insert_term(g.trie_index, term));
            }
        }
    }
    dict
}

fn measure_corpus(spec: &CollectionSpec, reps: usize) -> CorpusResult {
    let generator = CollectionGenerator::new(spec.clone());
    let batches: Vec<ParsedBatch> = (0..spec.num_files)
        .map(|f| parse_documents(&generator.generate_file(f), spec.html, f))
        .collect();
    let docs: usize = batches.iter().map(|b| b.num_docs as usize).sum();
    let input_bytes: u64 = batches
        .iter()
        .flat_map(|b| b.groups.iter())
        .map(|g| g.term_bytes.len() as u64)
        .sum();
    let tokens: u64 = batches.iter().map(|b| b.stats.tokens).sum();

    // Correctness first: the slotted path must agree with the frozen
    // reference token by token (outcome stream) and produce a
    // byte-identical combined dictionary before we trust the timings.
    let mut reference = ReferenceDictionary::new(0);
    let mut slotted = PartialDictionary::new(0);
    for batch in &batches {
        for g in &batch.groups {
            for (_, term) in g.iter_terms() {
                let a = reference.insert_reference(g.trie_index, term);
                let b = slotted.insert_term(g.trie_index, term);
                assert_eq!(
                    a,
                    b,
                    "dictionary divergence on {} term {:?}",
                    spec.name,
                    String::from_utf8_lossy(term)
                );
            }
        }
    }
    let terms = u64::from(slotted.term_count());
    let g_ref = combine_reference(&[reference]);
    let g_new = GlobalDictionary::combine(&[slotted]);
    let (mut ref_bytes, mut new_bytes) = (Vec::new(), Vec::new());
    g_ref.write_to(&mut ref_bytes).expect("serialize reference dictionary");
    g_new.write_to(&mut new_bytes).expect("serialize slotted dictionary");
    assert_eq!(ref_bytes, new_bytes, "combined dictionaries differ on {}", spec.name);

    let naive_s = best_of(reps, || {
        std::hint::black_box(insert_all_reference(&batches));
    });
    let optimized_s = best_of(reps, || {
        std::hint::black_box(insert_all_slotted(&batches));
    });

    let throughput = |s: f64| Throughput {
        mb_s: input_bytes as f64 / MB / s,
        tokens_s: tokens as f64 / s,
        seconds: s,
    };
    CorpusResult {
        name: spec.name.clone(),
        files: spec.num_files,
        docs,
        input_bytes,
        tokens,
        terms,
        naive: throughput(naive_s),
        optimized: throughput(optimized_s),
        speedup: naive_s / optimized_s,
    }
}

fn measure(scale: f64, reps: usize) -> BenchReport {
    let mut corpora = Vec::new();
    for spec in table3_specs(scale) {
        eprintln!("[dict_hotpath] measuring {} ...", spec.name);
        corpora.push(measure_corpus(&spec, reps));
    }
    let total_bytes: u64 = corpora.iter().map(|c| c.input_bytes).sum();
    let naive_s: f64 = corpora.iter().map(|c| c.naive.seconds).sum();
    let optimized_s: f64 = corpora.iter().map(|c| c.optimized.seconds).sum();
    let overall = Overall {
        naive_mb_s: total_bytes as f64 / MB / naive_s,
        optimized_mb_s: total_bytes as f64 / MB / optimized_s,
        speedup: naive_s / optimized_s,
    };
    BenchReport { scale, repetitions: reps, corpora, overall }
}

fn print_report(report: &BenchReport) {
    println!(
        "{:<22} {:>9} {:>8} {:>12} {:>12} {:>8}",
        "corpus", "term MB", "tokens", "ref MB/s", "slot MB/s", "speedup"
    );
    ii_bench::rule(76);
    for c in &report.corpora {
        println!(
            "{:<22} {:>9.2} {:>7}k {:>12.1} {:>12.1} {:>7.2}x",
            c.name,
            c.input_bytes as f64 / MB,
            c.tokens / 1000,
            c.naive.mb_s,
            c.optimized.mb_s,
            c.speedup
        );
    }
    ii_bench::rule(76);
    println!(
        "{:<22} {:>9} {:>8} {:>12.1} {:>12.1} {:>7.2}x",
        "overall",
        "",
        "",
        report.overall.naive_mb_s,
        report.overall.optimized_mb_s,
        report.overall.speedup
    );
}

/// Tolerated fraction of (host-normalized) baseline throughput. 25%
/// headroom absorbs CI jitter; a real regression from undoing the slotted
/// work is far larger (the committed baseline speedup is >1.5x).
const CHECK_TOLERANCE: f64 = 0.75;

fn run_check(baseline_path: &str, scale_override: Option<f64>, reps: usize) -> i32 {
    let text = match std::fs::read_to_string(baseline_path) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("[dict_hotpath] cannot read baseline {baseline_path}: {e}");
            return 1;
        }
    };
    let baseline: BenchReport = match serde_json::from_str(&text) {
        Ok(b) => b,
        Err(e) => {
            eprintln!("[dict_hotpath] cannot parse baseline {baseline_path}: {e}");
            return 1;
        }
    };
    let scale = scale_override.unwrap_or(baseline.scale);
    let now = measure(scale, reps);
    print_report(&now);

    // The frozen reference shard is the host-speed yardstick: it consumes
    // the same token stream and produces the same dictionary, but has none
    // of the optimizations under test. Its ratio to the baseline host
    // cancels out CPU-speed differences.
    let host_factor = now.overall.naive_mb_s / baseline.overall.naive_mb_s;
    let expected = baseline.overall.optimized_mb_s * host_factor;
    let floor = expected * CHECK_TOLERANCE;
    println!(
        "\n[check] baseline slotted {:.1} MB/s x host factor {:.2} => expected {:.1}, \
         floor {:.1}, measured {:.1} MB/s",
        baseline.overall.optimized_mb_s,
        host_factor,
        expected,
        floor,
        now.overall.optimized_mb_s
    );
    if now.overall.optimized_mb_s < floor {
        eprintln!(
            "[check] FAIL: slotted dictionary-insert throughput regressed more than \
             {:.0}% vs the committed baseline",
            (1.0 - CHECK_TOLERANCE) * 100.0
        );
        1
    } else {
        println!("[check] OK");
        0
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut scale: Option<f64> = None;
    let mut out = "BENCH_index.json".to_string();
    let mut check: Option<String> = None;
    let mut reps = 5usize;
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--scale" => {
                i += 1;
                scale = Some(args[i].parse().expect("--scale takes a number"));
            }
            "--out" => {
                i += 1;
                out = args[i].clone();
            }
            "--check" => {
                i += 1;
                check = Some(args[i].clone());
            }
            "--reps" => {
                i += 1;
                reps = args[i].parse().expect("--reps takes an integer");
            }
            other => {
                eprintln!(
                    "unknown argument {other}\n\
                     usage: dict_hotpath [--scale F] [--out PATH] [--reps N] [--check PATH]"
                );
                std::process::exit(2);
            }
        }
        i += 1;
    }

    if let Some(baseline) = check {
        std::process::exit(run_check(&baseline, scale, reps));
    }

    let report = measure(scale.unwrap_or(0.5), reps);
    print_report(&report);
    let mut json = serde_json::to_string_pretty(&report).expect("serialize report");
    json.push('\n');
    ii_core::store::write_file_durable(&ii_core::store::RealVfs, std::path::Path::new(&out), json.as_bytes())
        .expect("write baseline");
    println!("\n[dict_hotpath] baseline written to {out}");
}
