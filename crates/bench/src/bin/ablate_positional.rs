//! Ablation — positional postings cost.
//!
//! §IV.D notes that Ivory MapReduce "generates positional postings lists,
//! which will add some extra cost". This harness quantifies that cost in
//! our own system: plain `<doc, tf>` indexing vs the positional extension
//! over identical parsed batches, plus the index-size inflation, and
//! demonstrates the capability the extra cost buys (phrase search).

use ii_core::corpus::{CollectionGenerator, CollectionSpec};
use ii_core::indexer::{CpuIndexer, PositionalIndexer};
use ii_core::postings::Codec;
use ii_core::text::parse_documents;
use std::time::Instant;

fn main() {
    let mut spec = CollectionSpec::wikipedia_like(0.4);
    spec.docs_per_file = 300;
    let gen = CollectionGenerator::new(spec.clone());
    let batches: Vec<_> =
        (0..spec.num_files.min(4)).map(|f| parse_documents(&gen.generate_file(f), spec.html, f)).collect();
    let tokens: u64 = batches.iter().map(|b| b.stats.terms_kept).sum();
    println!("ABLATION: positional postings ({} tokens)\n", tokens);

    // Plain indexing.
    let t0 = Instant::now();
    let mut plain = CpuIndexer::new(0);
    let mut offset = 0u32;
    for b in &batches {
        for g in &b.groups {
            plain.index_group(g, offset);
        }
        offset += b.num_docs;
    }
    let plain_s = t0.elapsed().as_secs_f64();
    let plain_run = plain.flush_run(0, Codec::VarByte);
    let plain_bytes = plain_run.to_bytes().len();
    let plain_payload = plain_run.payload.len();

    // Positional indexing.
    let t0 = Instant::now();
    let mut posix = PositionalIndexer::new();
    let mut offset = 0u32;
    for b in &batches {
        posix.index_batch(b, offset);
        offset += b.num_docs;
    }
    let pos_s = t0.elapsed().as_secs_f64();
    let pos = posix.finish();
    let mut pos_bytes = Vec::new();
    pos.write_to(&mut pos_bytes).unwrap();
    // Payload-only comparison excludes the differing file-format headers
    // (the run file spends 28 B/term on its mapping table).
    let pos_payload: usize = out_payload(&pos);

    println!("{:<26}{:>14}{:>16}", "", "plain <doc,tf>", "positional");
    ii_bench::rule(56);
    println!("{:<26}{:>14.3}{:>16.3}", "indexing seconds", plain_s, pos_s);
    println!(
        "{:<26}{:>14}{:>16}",
        "serialized bytes",
        plain_bytes,
        pos_bytes.len()
    );
    println!(
        "{:<26}{:>14}{:>16}",
        "postings payload bytes",
        plain_payload,
        pos_payload
    );
    println!(
        "{:<26}{:>14}{:>16}",
        "distinct terms",
        plain.dict.term_count(),
        pos.len()
    );
    ii_bench::rule(56);
    println!(
        "\ntime overhead: {:+.0}%   payload size overhead: {:+.0}%",
        (pos_s / plain_s - 1.0) * 100.0,
        (pos_payload as f64 / plain_payload as f64 - 1.0) * 100.0
    );

    // What the overhead buys: phrase queries.
    let probe = pos
        .phrase_search("information retrieval")
        .len()
        .max(pos.phrase_search("web search").len());
    println!("phrase-search capability check: best probe phrase hits {probe} documents");
    assert_eq!(plain.dict.term_count() as usize, pos.len());
    assert!(pos_payload > plain_payload, "positions must cost payload bytes");
}

/// Total encoded positional payload bytes (headers excluded).
fn out_payload(pos: &ii_core::indexer::PositionalIndex) -> usize {
    let mut buf = Vec::new();
    pos.write_to(&mut buf).unwrap();
    // Subtract the per-entry fixed header: 4 (trie) + 1 (len) + suffix + 8.
    // Easiest exact route: re-encode each list via the public API.
    // PositionalIndex doesn't expose iteration, so approximate from the
    // serialized stream: parse it the same way read_from does.
    let mut total = 0usize;
    let mut i = 8usize;
    while i < buf.len() {
        let suffix_len = buf[i + 4] as usize;
        i += 5 + suffix_len;
        let plen =
            u32::from_le_bytes(buf[i + 4..i + 8].try_into().unwrap()) as usize;
        i += 8 + plen;
        total += plen;
    }
    total
}
