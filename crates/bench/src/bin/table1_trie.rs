//! Table I — trie-collection index definition.
//!
//! Prints the category table with the paper's own examples classified live
//! by `ii_dict::trie`, and verifies the entry count (17,613).

use ii_core::dict::{trie_index, TrieIndex, TRIE_ENTRIES};

fn main() {
    println!("TABLE I. TRIE-COLLECTION INDEX DEFINITION (reproduced live)");
    ii_bench::rule(78);
    println!("{:<10}{:<48}{:<20}", "Index", "Term Category", "Examples");
    ii_bench::rule(78);
    println!("{:<10}{:<48}{:<20}", 0, "Terms that can't fall into other categories", "\"-80\", \"3d\", \"Česky\"");
    println!("{:<10}{:<48}{:<20}", "1..=10", "Pure numbers by first digit (10 entries)", "\"01\", \"0195\", \"9\", \"954\"");
    println!(
        "{:<10}{:<48}{:<20}",
        "11..=36",
        "<=3 letters or special char in first 3 (26)",
        "\"a\", \"at\", \"act\", \"zoé\""
    );
    println!(
        "{:<10}{:<48}{:<20}",
        "37..=17612",
        ">3 letters, plain first 3 letters (26^3)",
        "\"aaat\", \"aabomycin\", \"zzzy\""
    );
    ii_bench::rule(78);
    println!("total entries: {TRIE_ENTRIES} (paper: 17613)");
    assert_eq!(TRIE_ENTRIES, 17613);

    println!("\nlive classification of the paper's example terms:");
    for term in ["-80", "3d", "Česky", "01", "0195", "9", "954", "a", "at", "act", "z", "zoo",
                 "zoé", "aaat", "aabomycin", "zzzy", "application"] {
        let idx = trie_index(term);
        println!(
            "  {:<12} -> index {:>6}  (prefix '{}', stored suffix '{}')",
            format!("\"{term}\""),
            idx.0,
            idx.prefix(),
            &term[idx.prefix_len().min(term.len())..]
        );
    }
    // The paper's row anchors.
    assert_eq!(trie_index("01"), TrieIndex(1));
    assert_eq!(trie_index("954"), TrieIndex(10));
    assert_eq!(trie_index("a"), TrieIndex(11));
    assert_eq!(trie_index("zoo"), TrieIndex(36));
    assert_eq!(trie_index("aaat"), TrieIndex(37));
    assert_eq!(trie_index("zzzy"), TrieIndex(17612));
    println!("\nall Table I anchors verified ✓");
}
