//! Ablation — postings compression codecs (§II background).
//!
//! The paper compresses postings with variable-byte encoding and cites
//! γ and Golomb as the classic alternatives. This harness builds a real
//! index and re-encodes every postings list with each codec, reporting
//! bytes per posting and encode/decode wall time — the trade-off that
//! justifies the paper's variable-byte choice (speed at modest size cost).

use ii_core::corpus::CollectionSpec;
use ii_core::pipeline::{build_index, PipelineConfig};
use ii_core::postings::{bits::golomb_parameter, decode, encode, Codec, Posting};
use std::time::Instant;

fn main() {
    let mut spec = CollectionSpec::wikipedia_like(0.4);
    spec.docs_per_file = 300;
    let coll = ii_bench::stored_collection("ablate-codecs", spec);
    let out = build_index(&coll, &PipelineConfig::small(2, 1, 0)).expect("index build");
    let total_docs = out.report.docs as u64;

    // Materialize all postings lists once.
    let lists: Vec<Vec<Posting>> = out
        .dictionary
        .entries()
        .iter()
        .map(|e| out.run_sets[&e.indexer].fetch(e.postings).postings().to_vec())
        .collect();
    let postings: u64 = lists.iter().map(|l| l.len() as u64).sum();
    println!(
        "ABLATION: postings codecs over a real index ({} terms, {} postings)\n",
        lists.len(),
        postings
    );
    println!(
        "{:<24}{:>16}{:>16}{:>16}",
        "codec", "bytes/posting", "encode Mp/s", "decode Mp/s"
    );
    ii_bench::rule(72);
    for (name, pick) in [
        ("VarByte (paper)", None),
        ("Elias gamma", Some(Codec::Gamma)),
        ("Golomb (per-list b)", None),
    ] {
        let codec_for = |l: &Vec<Posting>| match (name, pick) {
            ("VarByte (paper)", _) => Codec::VarByte,
            (_, Some(c)) => c,
            _ => Codec::Golomb(golomb_parameter(total_docs, l.len() as u64)),
        };
        let t0 = Instant::now();
        let encoded: Vec<(Vec<u8>, Codec, usize)> = lists
            .iter()
            .map(|l| {
                let c = codec_for(l);
                (encode(l, c), c, l.len())
            })
            .collect();
        let enc_s = t0.elapsed().as_secs_f64();
        let bytes: u64 = encoded.iter().map(|(b, _, _)| b.len() as u64).sum();
        let t0 = Instant::now();
        let mut decoded_postings = 0u64;
        for (buf, c, n) in &encoded {
            decoded_postings += decode(buf, *n, *c).expect("roundtrip").len() as u64;
        }
        let dec_s = t0.elapsed().as_secs_f64();
        assert_eq!(decoded_postings, postings);
        println!(
            "{:<24}{:>16.3}{:>16.2}{:>16.2}",
            name,
            bytes as f64 / postings as f64,
            postings as f64 / 1e6 / enc_s,
            postings as f64 / 1e6 / dec_s
        );
    }
    ii_bench::rule(72);
    println!("\nexpected shape: bit-level codecs (gamma/Golomb) compress tighter, byte-level");
    println!("variable-byte en/decodes fastest — the classic IR trade-off the paper resolves");
    println!("in favour of variable-byte for its post-processing stage.");
}
