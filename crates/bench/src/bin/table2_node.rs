//! Table II — data structure of one B-tree node.
//!
//! Prints the field layout straight from the implementation and verifies
//! the 512-byte total and field offsets against `std::mem`.

use ii_core::dict::node::{
    BTreeNode, NODE_BYTES, OFF_CACHE, OFF_CHILDREN, OFF_COUNT, OFF_LEAF, OFF_POSTINGS,
    OFF_TERM_PTR, TABLE_II,
};
use std::mem::{align_of, offset_of, size_of};

fn main() {
    println!("TABLE II. DATA STRUCTURE OF ONE B-TREE NODE (reproduced live)");
    ii_bench::rule(62);
    println!("{:<34}{:>8}{:>18}", "Field", "Number", "Data Size (Byte)");
    ii_bench::rule(62);
    let mut total = 0usize;
    for (field, number, size) in TABLE_II {
        println!("{field:<34}{number:>8}{size:>18}");
        total += size;
    }
    ii_bench::rule(62);
    println!("{:<34}{:>8}{:>18}", "Total Size", "", total);
    assert_eq!(total, 512);

    println!("\ncompile-time layout checks:");
    println!("  size_of::<BTreeNode>()  = {} (paper: 512)", size_of::<BTreeNode>());
    println!("  align_of::<BTreeNode>() = {}", align_of::<BTreeNode>());
    assert_eq!(size_of::<BTreeNode>(), NODE_BYTES);
    for (name, expect, actual) in [
        ("count", OFF_COUNT, offset_of!(BTreeNode, count)),
        ("term_ptr", OFF_TERM_PTR, offset_of!(BTreeNode, term_ptr)),
        ("leaf", OFF_LEAF, offset_of!(BTreeNode, leaf)),
        ("postings_ptr", OFF_POSTINGS, offset_of!(BTreeNode, postings_ptr)),
        ("children", OFF_CHILDREN, offset_of!(BTreeNode, children)),
        ("cache", OFF_CACHE, offset_of!(BTreeNode, cache)),
    ] {
        println!("  offset({name:<13}) = {actual:>3} (expected {expect})");
        assert_eq!(expect, actual);
    }
    println!("\nTable II layout verified ✓ (degree 16, 31 keys = one CUDA warp per node)");
}
