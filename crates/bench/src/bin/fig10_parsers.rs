//! Fig 10 — optimal number of parallel parsers and indexers, plus the
//! §IV.A intake-bandwidth analysis.
//!
//! Reproduced on `ii-platsim` (this host has one core; DESIGN.md §2). The
//! platform model's constants come from the paper's sub-measurements; the
//! three scenario curves, the near-linear region for 1..5 parsers, and the
//! divergence beyond 5 parsers are emergent from the pipeline recurrence.

use ii_core::platsim::{intake_bandwidth, simulate, CollectionModel, PlatformModel, Scenario};

fn main() {
    let p = PlatformModel::c1060_xeon();
    let c = CollectionModel::clueweb09();
    println!("FIG 10. THROUGHPUT (MB/s) vs NUMBER OF PARALLEL PARSERS");
    println!("(platsim simulated seconds; paper platform: 8 cores + 2 C1060)\n");
    println!(
        "{:<10}{:>26}{:>26}{:>18}",
        "parsers", "(1) M + (8-M) CPU idx", "(2) M + (8-M) CPU + 2 GPU", "(3) parsers only"
    );
    ii_bench::rule(80);
    for m in 1..=7usize {
        let cpu_idx = 8 - m;
        let s1 = simulate(&p, &c, &Scenario::new(m, cpu_idx, 0));
        let s2 = simulate(&p, &c, &Scenario::new(m, cpu_idx, 2));
        let s3 = simulate(&p, &c, &Scenario::new(m, 0, 0));
        println!(
            "{:<10}{:>26.1}{:>26.1}{:>18.1}",
            m, s1.throughput_mb_s, s2.throughput_mb_s, s3.throughput_mb_s
        );
    }
    ii_bench::rule(80);

    // The paper's qualitative findings.
    let s3_1 = simulate(&p, &c, &Scenario::new(1, 0, 0)).throughput_mb_s;
    let s3_5 = simulate(&p, &c, &Scenario::new(5, 0, 0)).throughput_mb_s;
    println!("\nfindings:");
    println!(
        "  parser-only scaling 1->5: {:.2}x (paper: almost linear)",
        s3_5 / s3_1
    );
    let best_gpu = (1..=7)
        .map(|m| (m, simulate(&p, &c, &Scenario::new(m, 8 - m, 2)).throughput_mb_s))
        .max_by(|a, b| a.1.total_cmp(&b.1))
        .unwrap();
    let best_cpu = (1..=7)
        .map(|m| (m, simulate(&p, &c, &Scenario::new(m, 8 - m, 0)).throughput_mb_s))
        .max_by(|a, b| a.1.total_cmp(&b.1))
        .unwrap();
    println!(
        "  best with GPUs:    {} parsers + {} CPU indexers -> {:.1} MB/s (paper: 6 parsers)",
        best_gpu.0,
        8 - best_gpu.0,
        best_gpu.1
    );
    println!(
        "  best without GPUs: {} parsers + {} CPU indexers -> {:.1} MB/s (paper: 5:3 split)",
        best_cpu.0,
        8 - best_cpu.0,
        best_cpu.1
    );

    println!("\n§IV.A INTAKE BANDWIDTH (read + decompress of compressed files)");
    println!("{:<10}{:>22}{:>26}", "parsers", "folded decompress", "separate decompress");
    ii_bench::rule(60);
    for m in [1usize, 2, 4, 6] {
        let (folded, separate) = intake_bandwidth(&p, &c, m);
        println!("{:<10}{:>20.0} MB/s{:>24.0} MB/s", m, folded, separate);
    }
    ii_bench::rule(60);
    let (folded, separate) = intake_bandwidth(&p, &c, 6);
    println!(
        "paper at p=6: folded 263 MB/s, separate 469 MB/s; model: {folded:.0} / {separate:.0}"
    );
}
