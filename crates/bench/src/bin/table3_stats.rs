//! Table III — statistics of the document collections.
//!
//! Generates the three synthetic stand-in collections at a documented
//! scale and prints their statistics next to the paper's values, plus the
//! shape ratios (tokens/doc, compression ratio) that the substitution is
//! supposed to preserve.

use ii_core::corpus::CollectionSpec;

#[allow(dead_code)] // retained for reference alongside printed fields
struct PaperRow {
    name: &'static str,
    compressed_gb: f64,
    uncompressed_gb: f64,
    documents: f64,
    terms: f64,
    tokens: f64,
}

const PAPER: &[PaperRow] = &[
    PaperRow {
        name: "ClueWeb09 1st Eng Seg",
        compressed_gb: 230.0,
        uncompressed_gb: 1422.0,
        documents: 50_220_423.0,
        terms: 84_799_475.0,
        tokens: 32_644_508_255.0,
    },
    PaperRow {
        name: "Wikipedia 01-07",
        compressed_gb: 29.0,
        uncompressed_gb: 79.0,
        documents: 16_618_497.0,
        terms: 9_404_723.0,
        tokens: 9_375_229_726.0,
    },
    PaperRow {
        name: "Library of Congress",
        compressed_gb: 96.0,
        uncompressed_gb: 507.0,
        documents: 29_177_074.0,
        terms: 7_457_742.0,
        tokens: 16_865_180_093.0,
    },
];

fn main() {
    let scale = ii_bench::MEASURED_SCALE;
    println!("TABLE III. STATISTICS OF DOCUMENT COLLECTIONS");
    println!("(synthetic stand-ins at generator scale {scale}; shapes, not absolute sizes)\n");
    let specs = [
        ("ClueWeb09 1st Eng Seg", CollectionSpec::clueweb_like(scale)),
        ("Wikipedia 01-07", CollectionSpec::wikipedia_like(scale)),
        ("Library of Congress", CollectionSpec::congress_like(scale)),
    ];
    println!(
        "{:<24}{:>12}{:>12}{:>12}{:>12}{:>14}{:>12}{:>12}",
        "collection", "comp MB", "unc MB", "docs", "terms", "tokens", "tok/doc", "comp ratio"
    );
    ii_bench::rule(110);
    for ((name, spec), paper) in specs.into_iter().zip(PAPER) {
        let coll = ii_bench::stored_collection(&format!("table3-{}", spec.name), spec);
        let s = coll.manifest.stats;
        println!(
            "{:<24}{:>12.1}{:>12.1}{:>12}{:>12}{:>14}{:>12.0}{:>12.2}",
            name,
            s.compressed_bytes as f64 / 1e6,
            s.uncompressed_bytes as f64 / 1e6,
            s.documents,
            s.distinct_terms,
            s.tokens,
            s.tokens as f64 / s.documents as f64,
            s.uncompressed_bytes as f64 / s.compressed_bytes as f64,
        );
        println!(
            "{:<24}{:>12.0}{:>12.0}{:>12.2e}{:>12.2e}{:>14.2e}{:>12.0}{:>12.2}   <- paper (GB / absolute)",
            "  (paper)",
            paper.compressed_gb * 1000.0,
            paper.uncompressed_gb * 1000.0,
            paper.documents,
            paper.terms,
            paper.tokens,
            paper.tokens / paper.documents,
            paper.uncompressed_gb / paper.compressed_gb,
        );
    }
    ii_bench::rule(110);
    println!("\nshape check: tokens/doc within ~2x of the paper for every collection;");
    println!("web collections compress harder than pure text, as in the paper.");
}
