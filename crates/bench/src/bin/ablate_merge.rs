//! Ablation — §III.F partial-list merge: "we can combine the partial
//! postings lists of each term into a single list in a post-processing
//! step, with an additional cost of less than 10% of the total running
//! time."
//!
//! Measured: build a multi-run index, then time `merge_runs` over every
//! indexer's run set and compare to the build time.

use ii_core::corpus::CollectionSpec;
use ii_core::pipeline::{build_index, PipelineConfig};
use ii_core::postings::{merge_runs, Codec};
use std::time::Instant;

fn main() {
    let mut spec = CollectionSpec::clueweb_like(ii_bench::MEASURED_SCALE);
    spec.docs_per_file = 200;
    let coll = ii_bench::stored_collection("ablate-merge", spec);
    let cfg = PipelineConfig::small(2, 1, 1); // one run per file => many runs
    let t0 = Instant::now();
    let out = build_index(&coll, &cfg).expect("index build");
    let build_s = t0.elapsed().as_secs_f64();

    let n_runs: usize = out.run_sets.values().map(|s| s.runs().len()).sum();
    println!("ABLATION: post-processing merge of partial postings lists\n");
    println!("index built in {build_s:.2}s; {} runs across {} indexers", n_runs, out.run_sets.len());

    let t0 = Instant::now();
    let mut merged_lists = 0usize;
    for set in out.run_sets.values() {
        let merged = merge_runs(set, Codec::VarByte);
        merged_lists += merged.entries.len();
    }
    let merge_s = t0.elapsed().as_secs_f64();
    let pct = merge_s / build_s * 100.0;
    println!("merged {merged_lists} full postings lists in {merge_s:.3}s");
    println!("\nmerge cost = {pct:.1}% of total build time (paper: < 10%)");
    assert!(pct < 10.0, "merge must stay under the paper's 10% bound, got {pct:.1}%");

    // Correctness spot check: merged lists equal on-the-fly concatenation.
    let (indexer, set) = out.run_sets.iter().next().unwrap();
    let merged = merge_runs(set, Codec::VarByte);
    let mut checked = 0;
    for e in merged.entries.iter().take(200) {
        let direct = set.fetch(e.handle);
        assert_eq!(merged.get(e.handle).unwrap(), direct.postings(), "handle {}", e.handle);
        checked += 1;
    }
    println!("verified {checked} merged lists of indexer {indexer} against RunSet::fetch ✓");
}
