//! Table VI — performance on the three document collections (plus
//! ClueWeb09 without GPUs).
//!
//! Two parts: (a) platsim simulated rows against the paper's seconds for
//! the full-size collections; (b) measured rows from the real pipeline on
//! the scaled synthetic collections (wall seconds on this 1-core host —
//! shapes only).

use ii_core::corpus::CollectionSpec;
use ii_core::pipeline::{build_index, PipelineConfig};
use ii_core::platsim::{simulate, CollectionModel, PlatformModel, Scenario};

#[allow(dead_code)] // retained for reference alongside printed fields
struct PaperRow {
    name: &'static str,
    sampling: f64,
    parsers: f64,
    indexers: f64,
    combine: f64,
    write: f64,
    total: f64,
    mb_s: f64,
}

const PAPER: &[PaperRow] = &[
    PaperRow { name: "ClueWeb09", sampling: 59.53, parsers: 5410.89, indexers: 5408.25, combine: 2.46, write: 59.21, total: 5541.62, mb_s: 262.76 },
    PaperRow { name: "ClueWeb09 w/o GPUs", sampling: 57.53, parsers: 7024.86, indexers: 7019.87, combine: 2.54, write: 54.92, total: 7126.77, mb_s: 204.32 },
    PaperRow { name: "Wikipedia 01-07", sampling: 7.27, parsers: 999.45, indexers: 1023.96, combine: 0.26, write: 0.57, total: 1033.34, mb_s: 78.29 },
    PaperRow { name: "Library of Congress", sampling: 29.01, parsers: 2437.79, indexers: 2458.64, combine: 0.21, write: 0.80, total: 2495.29, mb_s: 208.06 },
];

fn main() {
    let p = PlatformModel::c1060_xeon();
    println!("TABLE VI (a). SIMULATED FULL-SCALE ROWS (platsim seconds vs paper seconds)\n");
    println!(
        "{:<22}{:>16}{:>16}{:>14}{:>14}",
        "collection", "total sim (s)", "paper total (s)", "sim MB/s", "paper MB/s"
    );
    ii_bench::rule(84);
    let sims = [
        ("ClueWeb09", CollectionModel::clueweb09(), Scenario::new(6, 2, 2)),
        ("ClueWeb09 w/o GPUs", CollectionModel::clueweb09(), Scenario::new(6, 2, 0)),
        ("Wikipedia 01-07", CollectionModel::wikipedia(), Scenario::new(6, 2, 2)),
        ("Library of Congress", CollectionModel::congress(), Scenario::new(6, 2, 2)),
    ];
    for ((name, c, s), paper) in sims.into_iter().zip(PAPER) {
        let r = simulate(&p, &c, &s);
        println!(
            "{:<22}{:>16.0}{:>16.0}{:>14.1}{:>14.1}",
            name, r.total_seconds, paper.total, r.throughput_mb_s, paper.mb_s
        );
    }
    ii_bench::rule(84);
    println!("(Wikipedia's lower MB/s is expected: 1/18th the bytes but ~1/3 the tokens)\n");

    println!("TABLE VI (b). MEASURED SCALED ROWS (real pipeline, wall seconds on this host)\n");
    let scale = ii_bench::MEASURED_SCALE;
    println!(
        "{:<26}{:>10}{:>12}{:>12}{:>10}{:>10}{:>10}{:>10}",
        "collection", "sampling", "parsers", "indexers", "combine", "write", "total", "MB/s"
    );
    ii_bench::rule(100);
    let jobs = [
        ("clueweb-like", CollectionSpec::clueweb_like(scale), 2usize),
        ("clueweb-like w/o GPU", CollectionSpec::clueweb_like(scale), 0),
        ("wikipedia-like", CollectionSpec::wikipedia_like(scale), 2),
        ("congress-like", CollectionSpec::congress_like(scale), 2),
    ];
    for (name, spec, gpus) in jobs {
        let coll = ii_bench::stored_collection(&format!("table6-{}", spec.name), spec);
        let mut cfg = PipelineConfig::small(2, 2, gpus);
        cfg.popular_count = 40;
        let out = build_index(&coll, &cfg).expect("index build");
        ii_bench::write_stats_snapshot(
            &format!("table6_{}_{}gpu", coll.manifest.spec.name, gpus),
            &out.report.stages.snapshot,
        );
        let r = &out.report;
        println!(
            "{:<26}{:>10}{:>12}{:>12}{:>10}{:>10}{:>10}{:>10.2}",
            name,
            ii_bench::fmt_s(r.sampling_seconds),
            ii_bench::fmt_s(r.parser_busy_seconds),
            ii_bench::fmt_s(r.indexing_seconds),
            ii_bench::fmt_s(r.dict_combine_seconds),
            ii_bench::fmt_s(r.dict_write_seconds),
            ii_bench::fmt_s(r.total_seconds),
            r.throughput_mb_s(),
        );
    }
    ii_bench::rule(100);
    println!("(1-core host: parser and indexer stages serialize; absolute MB/s is not comparable,");
    println!(" but dictionary combine/write remain tiny relative to total, as in the paper)");
}
