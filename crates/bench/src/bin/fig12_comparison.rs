//! Fig 12 — comparison to the fastest published indexers.
//!
//! Bars: this system with and without GPUs (platsim, full-scale model) vs
//! Ivory MapReduce [9] and Single-Pass MapReduce [8]. The MapReduce bars
//! are *projected*: we measure the per-core throughput of our own faithful
//! implementations of both algorithms (ii-baselines, in-process MapReduce
//! runtime) on a scaled synthetic corpus, then scale to each paper's
//! cluster (Table VII) with a documented Hadoop-efficiency factor.

use ii_baselines::{ivory_index, spmr_index, MapReduceConfig};
use ii_core::corpus::{CollectionGenerator, CollectionSpec};
use ii_core::platsim::{simulate, ClusterModel, CollectionModel, PlatformModel, Scenario};
use std::time::Instant;

fn measure_per_core_mb_s<F>(splits: &[Vec<ii_core::corpus::RawDocument>], runs: usize, f: F) -> f64
where
    F: Fn(&[Vec<ii_core::corpus::RawDocument>]) -> f64,
{
    let bytes: usize =
        splits.iter().flatten().map(|d| d.stored_len()).sum::<usize>() * runs;
    let mut secs = 0.0;
    for _ in 0..runs {
        secs += f(splits);
    }
    bytes as f64 / 1e6 / secs
}

fn main() {
    // Measure our MapReduce baselines' single-core rates on web-like text.
    let mut spec = CollectionSpec::clueweb_like(0.3);
    spec.docs_per_file = 150;
    let gen = CollectionGenerator::new(spec.clone());
    let splits: Vec<Vec<ii_core::corpus::RawDocument>> =
        (0..spec.num_files).map(|f| gen.generate_file(f)).collect();
    let single_core = MapReduceConfig { map_workers: 1, reduce_workers: 1 };

    println!("measuring baseline per-core throughput (scaled synthetic web corpus)...");
    let ivory_rate = measure_per_core_mb_s(&splits, 2, |s| {
        let t0 = Instant::now();
        let _ = ivory_index(s, true, single_core);
        t0.elapsed().as_secs_f64()
    });
    let spmr_rate = measure_per_core_mb_s(&splits, 2, |s| {
        let t0 = Instant::now();
        let _ = spmr_index(s, true, single_core);
        t0.elapsed().as_secs_f64()
    });
    println!("  Ivory per-core: {ivory_rate:.2} MB/s   Single-Pass per-core: {spmr_rate:.2} MB/s");
    println!("  (2008-era Xeon cores + JVM/Hadoop would be slower; projection uses these");
    println!("   host-measured rates, so the cluster bars are, if anything, generous)\n");

    // Era adjustment: these rates come from compiled Rust on a modern core
    // with an in-process shuffle; the clusters ran JVM Hadoop with HDFS and
    // on-disk spills on 2008-era Xeons. Published Hadoop-era indexing jobs
    // sustained ~1-2 MB/s per core (e.g. McCreadie et al. on .GOV2), i.e.
    // roughly 8x slower than what we just measured. We project with that
    // factor and print a sensitivity sweep so the adjustment is auditable.
    const ERA_FACTOR: f64 = 8.0;
    let ivory_core_2008 = ivory_rate / ERA_FACTOR;
    let spmr_core_2008 = spmr_rate / ERA_FACTOR;
    println!(
        "era adjustment /{ERA_FACTOR}: Ivory {ivory_core_2008:.2} MB/s/core, SP {spmr_core_2008:.2} MB/s/core (Hadoop-era published rates: ~1-2)\n"
    );

    let p = PlatformModel::c1060_xeon();
    let c = CollectionModel::clueweb09();
    let ours_gpu = simulate(&p, &c, &Scenario::new(6, 2, 2)).throughput_mb_s;
    let ours_cpu = simulate(&p, &c, &Scenario::new(6, 2, 0)).throughput_mb_s;
    let ivory_cluster = ClusterModel::ivory(ivory_core_2008).throughput_mb_s();
    let spmr_cluster = ClusterModel::single_pass(spmr_core_2008).throughput_mb_s();

    println!("FIG 12. THROUGHPUT COMPARISON (MB/s of uncompressed input)\n");
    let bars = [
        ("This paper, 1 node + 2 GPUs (sim)", ours_gpu, Some(262.76)),
        ("This paper, 1 node no GPU (sim)", ours_cpu, Some(204.32)),
        ("Ivory MapReduce, 99 nodes (proj)", ivory_cluster, None),
        ("SP MapReduce, 8 nodes (proj)", spmr_cluster, None),
    ];
    let max = bars.iter().map(|b| b.1).fold(0.0, f64::max);
    for (name, v, paper) in bars {
        let n = ((v / max) * 50.0).round() as usize;
        let tag = paper.map(|x| format!("  [paper: {x:.0}]")).unwrap_or_default();
        println!("{name:<36}{v:>8.1}  {}{tag}", "#".repeat(n));
    }

    println!("\nheadline claim: a single heterogeneous node beats both clusters.");
    println!(
        "  with GPUs {:.0} MB/s vs Ivory {:.0} MB/s (99 nodes): {}",
        ours_gpu,
        ivory_cluster,
        if ours_gpu > ivory_cluster { "holds ✓" } else { "VIOLATED ✗" }
    );
    println!(
        "  even w/o GPUs {:.0} MB/s vs SP-MR {:.0} MB/s (8 nodes): {}",
        ours_cpu,
        spmr_cluster,
        if ours_cpu > spmr_cluster { "holds ✓" } else { "VIOLATED ✗" }
    );

    println!("\nsensitivity of the headline to the era factor:");
    println!("{:<14}{:>16}{:>22}", "era factor", "Ivory MB/s", "single node wins?");
    for f in [4.0, 6.0, 8.0, 12.0] {
        let iv = ClusterModel::ivory(ivory_rate / f).throughput_mb_s();
        println!(
            "{:<14}{:>16.0}{:>22}",
            f,
            iv,
            if ours_gpu > iv { "yes" } else { "no (cluster wins)" }
        );
    }
    println!("(the paper's conclusion holds whenever a 2008 Hadoop core is >=~6x slower");
    println!(" than this host's core running compiled Rust — comfortably the case)");
}
