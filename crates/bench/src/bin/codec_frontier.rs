//! Codec frontier benchmark: every postings codec (varbyte, gamma, Golomb,
//! BP128, PForDelta, Elias-Fano, and the per-length-class Auto policy)
//! measured on seeded synthetic lists in the three length classes the
//! policy distinguishes — short (< 128 postings), medium, long (>= 4096).
//!
//! For each (class, codec) pair it reports bytes per posting (skip table
//! included — that is what hits disk) and encode/decode throughput in
//! millions of postings per second, verifying an exact decode roundtrip on
//! every list before trusting any timing. Results go to a committed JSON
//! baseline (`BENCH_codecs.json` at the repo root).
//!
//! Modes:
//!   codec_frontier [--out PATH] [--reps N]    measure and write baseline
//!   codec_frontier --check PATH [--reps N]    regression gate:
//!       (a) the Auto policy must still strictly dominate varbyte on the
//!           long class — >= 1.3x decode throughput at equal-or-better
//!           bytes per posting — as the ROADMAP acceptance requires, and
//!       (b) host-normalized per-class policy decode throughput must stay
//!           within 25% of the committed baseline (varbyte decode on the
//!           same class is the host-speed yardstick: it runs the same
//!           block layout with none of the SIMD-friendly work under test).

use ii_core::corpus::DocId;
use ii_core::postings::{block, Codec, Posting};
use serde::{Deserialize, Serialize};
use std::time::Instant;

/// One codec's numbers on one length class.
#[derive(Debug, Serialize, Deserialize)]
struct CodecResult {
    codec: String,
    /// Encoded bytes (skip table + blocks) per posting.
    bytes_per_posting: f64,
    /// Millions of postings encoded per second (best of reps).
    encode_mpps: f64,
    /// Millions of postings decoded per second (best of reps).
    decode_mpps: f64,
    /// Decode throughput relative to varbyte on the same class.
    decode_speedup_vs_varbyte: f64,
    /// Encoded size relative to varbyte on the same class (< 1 = smaller).
    size_ratio_vs_varbyte: f64,
}

/// One length class: the lists it was measured on plus per-codec results.
#[derive(Debug, Serialize, Deserialize)]
struct ClassResult {
    class: String,
    lists: usize,
    postings: u64,
    codecs: Vec<CodecResult>,
}

/// The committed baseline document. No timestamps or host identifiers:
/// `--check` normalizes across hosts via the varbyte yardstick, and a
/// timestamp would churn the diff on every regeneration.
#[derive(Debug, Serialize, Deserialize)]
struct BenchReport {
    seed: u64,
    repetitions: usize,
    classes: Vec<ClassResult>,
}

/// Deterministic xorshift64* — the bench must not depend on host RNG.
struct Rng(u64);

impl Rng {
    fn next(&mut self) -> u64 {
        let mut x = self.0;
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        self.0 = x;
        x.wrapping_mul(0x2545_F491_4F6C_DD1D)
    }

    fn below(&mut self, n: u64) -> u64 {
        self.next() % n
    }
}

/// A seeded postings list of `len` entries. Gaps are mostly dense
/// (uniform in [1, 2*mean_gap)) with occasional kilo-document jumps —
/// the outliers that force PForDelta exceptions and stretch the BP128
/// per-block bit width, i.e. the realistic adversarial shape.
fn synth_list(rng: &mut Rng, len: usize, mean_gap: u64) -> Vec<Posting> {
    let mut doc = 0u64;
    let mut out = Vec::with_capacity(len);
    for _ in 0..len {
        let mut gap = 1 + rng.below(2 * mean_gap);
        if rng.below(1000) < 4 {
            gap += 1000 + rng.below(50_000);
        }
        doc += gap;
        let tf = if rng.below(100) < 70 { 1 } else { 1 + rng.below(40) as u32 };
        out.push(Posting { doc: DocId(doc as u32), tf });
    }
    out
}

/// The three length classes of the Auto policy, with list shapes chosen to
/// straddle each class's boundaries. Gaps model a fixed collection of
/// ~16M documents: a list of df postings has mean gap ~universe/df, so
/// long lists are denser than short ones but still far from gap 1 — the
/// regime real inverted files occupy (and where varbyte's 1-byte
/// best-case does not apply universally).
fn classes(seed: u64) -> Vec<(String, Vec<Vec<Posting>>)> {
    let mut rng = Rng(seed | 1);
    type Shapes = &'static [(usize, u64, usize)];
    let shapes: [(&str, Shapes); 3] = [
        // (len, mean_gap ~ 2^24 / len, copies)
        ("short", &[(4, 4_000_000, 40), (24, 700_000, 30), (100, 170_000, 20), (127, 130_000, 20)]),
        ("medium", &[(128, 130_000, 12), (512, 33_000, 10), (2048, 8_200, 8), (4095, 4_100, 6)]),
        ("long", &[(4096, 4_100, 6), (16384, 1_000, 5), (65536, 256, 3)]),
    ];
    shapes
        .iter()
        .map(|(name, shapes)| {
            let lists = shapes
                .iter()
                .flat_map(|&(len, gap, copies)| {
                    (0..copies).map(|_| synth_list(&mut rng, len, gap)).collect::<Vec<_>>()
                })
                .collect();
            (name.to_string(), lists)
        })
        .collect()
}

/// Time `reps` full passes, returning the best (minimum) wall seconds.
fn best_of<F: FnMut()>(reps: usize, mut pass: F) -> f64 {
    let mut best = f64::INFINITY;
    for _ in 0..reps {
        let t = Instant::now();
        pass();
        best = best.min(t.elapsed().as_secs_f64());
    }
    best
}

fn codec_name(c: Codec) -> String {
    match c {
        Codec::Auto => "policy".into(),
        Codec::Golomb(_) => "golomb".into(),
        c => format!("{c:?}").to_lowercase(),
    }
}

fn measure_class(name: &str, lists: &[Vec<Posting>], reps: usize) -> ClassResult {
    let postings: u64 = lists.iter().map(|l| l.len() as u64).sum();
    let mpps = |s: f64| postings as f64 / 1e6 / s;
    let mut codecs = Vec::new();
    let mut varbyte: Option<(f64, f64)> = None; // (bytes_per_posting, decode_mpps)
    // Fit Golomb's divisor to the class like the legacy per-list chooser
    // did (Gallager–van Voorhis: b ~ 0.69 * mean gap); a fixed divisor
    // would strawman the codec at these gap scales.
    let gap_sum: u64 = lists.iter().filter_map(|l| l.last()).map(|p| p.doc.0 as u64).sum();
    let golomb_b = ((gap_sum as f64 / postings.max(1) as f64) * 0.69).max(1.0) as u64;
    for codec in [
        Codec::VarByte,
        Codec::Gamma,
        Codec::Golomb(golomb_b),
        Codec::Bp128,
        Codec::PFor,
        Codec::EliasFano,
        Codec::Auto,
    ] {
        // Correctness before timing: every list must roundtrip exactly.
        let encoded: Vec<block::EncodedList> =
            lists.iter().map(|l| block::encode_list(l, codec)).collect();
        for (l, e) in lists.iter().zip(&encoded) {
            let back = block::decode_list(&e.bytes, l.len(), codec)
                .unwrap_or_else(|err| panic!("{codec:?} decode failed on {name}: {err}"));
            assert_eq!(&back, l, "{codec:?} roundtrip diverged on {name}");
        }
        let bytes: u64 = encoded.iter().map(|e| e.bytes.len() as u64).sum();

        let encode_s = best_of(reps, || {
            for l in lists {
                std::hint::black_box(block::encode_list(l, codec));
            }
        });
        let decode_s = best_of(reps, || {
            for (l, e) in lists.iter().zip(&encoded) {
                std::hint::black_box(
                    block::decode_list(&e.bytes, l.len(), codec).expect("decode"),
                );
            }
        });

        let bpp = bytes as f64 / postings as f64;
        let decode_mpps = mpps(decode_s);
        if codec == Codec::VarByte {
            varbyte = Some((bpp, decode_mpps));
        }
        let (vb_bpp, vb_decode) = varbyte.expect("varbyte measured first");
        codecs.push(CodecResult {
            codec: codec_name(codec),
            bytes_per_posting: bpp,
            encode_mpps: mpps(encode_s),
            decode_mpps,
            decode_speedup_vs_varbyte: decode_mpps / vb_decode,
            size_ratio_vs_varbyte: bpp / vb_bpp,
        });
    }
    ClassResult { class: name.into(), lists: lists.len(), postings, codecs }
}

fn measure(seed: u64, reps: usize) -> BenchReport {
    let mut out = Vec::new();
    for (name, lists) in classes(seed) {
        eprintln!("[codec_frontier] measuring {name} class ...");
        out.push(measure_class(&name, &lists, reps));
    }
    BenchReport { seed, repetitions: reps, classes: out }
}

fn print_report(report: &BenchReport) {
    for c in &report.classes {
        println!(
            "\n{} class: {} lists, {} postings",
            c.class, c.lists, c.postings
        );
        println!(
            "{:<10} {:>10} {:>12} {:>12} {:>10} {:>10}",
            "codec", "bytes/pst", "enc Mp/s", "dec Mp/s", "dec vs vb", "size vs vb"
        );
        ii_bench::rule(70);
        for r in &c.codecs {
            println!(
                "{:<10} {:>10.3} {:>12.1} {:>12.1} {:>9.2}x {:>9.2}x",
                r.codec,
                r.bytes_per_posting,
                r.encode_mpps,
                r.decode_mpps,
                r.decode_speedup_vs_varbyte,
                r.size_ratio_vs_varbyte
            );
        }
    }
}

fn codec_of<'a>(report: &'a BenchReport, class: &str, codec: &str) -> Option<&'a CodecResult> {
    report
        .classes
        .iter()
        .find(|c| c.class == class)
        .and_then(|c| c.codecs.iter().find(|r| r.codec == codec))
}

/// Tolerated fraction of (host-normalized) baseline decode throughput.
const CHECK_TOLERANCE: f64 = 0.75;

/// The acceptance bar for the per-length-class policy: on the long class
/// it must beat whole-list varbyte by this factor on decode while never
/// spending more bytes.
const LONG_CLASS_MIN_SPEEDUP: f64 = 1.3;

fn run_check(baseline_path: &str, reps: usize) -> i32 {
    let text = match std::fs::read_to_string(baseline_path) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("[codec_frontier] cannot read baseline {baseline_path}: {e}");
            return 1;
        }
    };
    let baseline: BenchReport = match serde_json::from_str(&text) {
        Ok(b) => b,
        Err(e) => {
            eprintln!("[codec_frontier] cannot parse baseline {baseline_path}: {e}");
            return 1;
        }
    };
    let now = measure(baseline.seed, reps);
    print_report(&now);

    let mut failed = false;
    // (a) Absolute dominance on the long class, re-measured on this host.
    let policy = codec_of(&now, "long", "policy").expect("long/policy measured");
    println!(
        "\n[check] long-class policy vs varbyte: {:.2}x decode (need >= {:.1}), \
         {:.2}x size (need <= 1.00)",
        policy.decode_speedup_vs_varbyte, LONG_CLASS_MIN_SPEEDUP, policy.size_ratio_vs_varbyte
    );
    if policy.decode_speedup_vs_varbyte < LONG_CLASS_MIN_SPEEDUP
        || policy.size_ratio_vs_varbyte > 1.0
    {
        eprintln!("[check] FAIL: the length-class policy no longer dominates varbyte");
        failed = true;
    }
    // (b) Host-normalized regression gate per class: varbyte decode on the
    // same lists cancels CPU-speed differences between hosts.
    for class in ["short", "medium", "long"] {
        let (Some(b_vb), Some(b_pol), Some(n_vb), Some(n_pol)) = (
            codec_of(&baseline, class, "varbyte"),
            codec_of(&baseline, class, "policy"),
            codec_of(&now, class, "varbyte"),
            codec_of(&now, class, "policy"),
        ) else {
            eprintln!("[check] FAIL: baseline or measurement missing class {class}");
            failed = true;
            continue;
        };
        let host_factor = n_vb.decode_mpps / b_vb.decode_mpps;
        let floor = b_pol.decode_mpps * host_factor * CHECK_TOLERANCE;
        println!(
            "[check] {class}: baseline policy {:.1} Mp/s x host factor {:.2} => floor {:.1}, \
             measured {:.1} Mp/s",
            b_pol.decode_mpps, host_factor, floor, n_pol.decode_mpps
        );
        if n_pol.decode_mpps < floor {
            eprintln!(
                "[check] FAIL: {class}-class policy decode regressed more than {:.0}% vs \
                 the committed baseline",
                (1.0 - CHECK_TOLERANCE) * 100.0
            );
            failed = true;
        }
    }
    if failed {
        1
    } else {
        println!("[check] OK");
        0
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut out = "BENCH_codecs.json".to_string();
    let mut check: Option<String> = None;
    let mut reps = 5usize;
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--out" => {
                i += 1;
                out = args[i].clone();
            }
            "--check" => {
                i += 1;
                check = Some(args[i].clone());
            }
            "--reps" => {
                i += 1;
                reps = args[i].parse().expect("--reps takes an integer");
            }
            other => {
                eprintln!(
                    "unknown argument {other}\n\
                     usage: codec_frontier [--out PATH] [--reps N] [--check PATH]"
                );
                std::process::exit(2);
            }
        }
        i += 1;
    }

    if let Some(baseline) = check {
        std::process::exit(run_check(&baseline, reps));
    }

    let report = measure(0x00DE_CF0E, reps);
    print_report(&report);
    let mut json = serde_json::to_string_pretty(&report).expect("serialize report");
    json.push('\n');
    ii_core::store::write_file_durable(&ii_core::store::RealVfs, std::path::Path::new(&out), json.as_bytes())
        .expect("write baseline");
    println!("\n[codec_frontier] baseline written to {out}");
}
