//! Ablation — §III.B string caches: each B-tree node embeds the first four
//! bytes of every key so "it is highly likely that the required comparison
//! between two term strings can be done with only these four bytes".
//!
//! Measured: build dictionaries over real parsed streams and report the
//! fraction of comparisons the 4-byte cache settled without touching the
//! out-of-node string remainder, plus the arena bytes saved by keeping
//! short suffixes entirely in-node. The paper's corollary — stripping the
//! 3-byte trie prefix roughly doubles comparison speed on 6.6-byte average
//! terms — is checked via the measured mean suffix length.

use ii_core::corpus::{CollectionGenerator, CollectionSpec};
use ii_core::indexer::CpuIndexer;
use ii_core::text::parse_documents;

fn main() {
    println!("ABLATION: 4-byte string caches in B-tree nodes (measured)\n");
    println!(
        "{:<22}{:>12}{:>14}{:>14}{:>14}{:>16}",
        "collection", "terms", "cache hits", "cache misses", "hit rate", "mean suffix len"
    );
    ii_bench::rule(94);
    for (name, spec) in [
        ("clueweb-like", CollectionSpec::clueweb_like(0.3)),
        ("wikipedia-like", CollectionSpec::wikipedia_like(0.3)),
        ("congress-like", CollectionSpec::congress_like(0.3)),
    ] {
        let gen = CollectionGenerator::new(spec.clone());
        let mut idx = CpuIndexer::new(0);
        let mut suffix_bytes = 0u64;
        let mut tokens = 0u64;
        for f in 0..spec.num_files.min(3) {
            let docs = gen.generate_file(f);
            let batch = parse_documents(&docs, spec.html, f);
            suffix_bytes += batch.stats.chars;
            tokens += batch.stats.terms_kept;
            for g in &batch.groups {
                idx.index_group(g, (f * spec.docs_per_file) as u32);
            }
        }
        let hits = idx.dict.store.cache_hits;
        let misses = idx.dict.store.cache_misses;
        let rate = hits as f64 / (hits + misses) as f64 * 100.0;
        let mean_suffix = suffix_bytes as f64 / tokens as f64;
        println!(
            "{:<22}{:>12}{:>14}{:>14}{:>13.1}%{:>16.2}",
            name,
            idx.dict.term_count(),
            hits,
            misses,
            rate,
            mean_suffix
        );
        assert!(rate > 80.0, "cache should settle most comparisons: {rate:.1}%");
    }
    ii_bench::rule(94);
    println!("\npaper's reasoning checks:");
    println!("  * the cache settles the overwhelming majority of comparisons (no remainder");
    println!("    fetch), so B-tree search rarely leaves the 512-byte node;");
    println!("  * mean stored suffix ≈ (6.6-byte mean stemmed term − 3-byte trie prefix),");
    println!("    i.e. prefix stripping roughly halves the bytes compared per operation.");
}
