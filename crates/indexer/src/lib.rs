//! # ii-indexer — the paper's core contribution
//!
//! Parallel CPU and GPU indexers over the hybrid trie + B-tree dictionary:
//! the CPU indexer (§III.D.1) for popular (Zipf-head) trie collections, the
//! warp-per-collection GPU kernel (§III.D.2) on the simulated device, the
//! sampling-based popular/unpopular load balancer (§III.E), and the
//! run-structured indexer pool (Fig 8) that turns parsed batches into
//! compressed postings run files and dictionary shards.

#![warn(missing_docs)]

pub mod balance;
pub mod cpu;
pub mod gpu;
pub mod positional;
pub mod run;
pub mod stats;

pub use balance::{make_plan, sample_counts, BalancePlan, Owner};
pub use cpu::CpuIndexer;
pub use gpu::{GpuBatchReport, GpuIndexer, GpuIndexerConfig};
pub use positional::{PositionalIndex, PositionalIndexer};
pub use run::{BatchTiming, Host, IndexerPool, Takeover};
pub use stats::WorkloadStats;
