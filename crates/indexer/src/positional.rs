//! Positional indexing extension.
//!
//! The paper's pipeline emits `<doc, tf>` postings; Ivory MapReduce (a
//! Fig 12 comparator) additionally stores term positions, "which will add
//! some extra cost". This module quantifies and provides that option: a
//! serial positional indexer over the same parsed batches (the parser's
//! Step 5 output carries in-document token positions), producing a
//! queryable, serializable positional index for phrase search. The
//! `ablate_positional` bench measures the extra cost against the plain
//! CPU indexer.

use ii_corpus::DocId;
use ii_dict::{GlobalDictionary, PartialDictionary};
use ii_postings::positional::{phrase_matches_with_offsets, PositionalList};
use ii_text::ParsedBatch;
use std::io::{self, Read, Write};

/// Builds a positional index from parsed batches.
#[derive(Debug, Default)]
pub struct PositionalIndexer {
    dict: PartialDictionary,
    lists: Vec<PositionalList>,
    tokens: u64,
}

impl PositionalIndexer {
    /// Empty indexer.
    pub fn new() -> Self {
        Self::default()
    }

    /// Index a parsed batch at the given global doc offset.
    pub fn index_batch(&mut self, batch: &ParsedBatch, doc_offset: u32) {
        for g in &batch.groups {
            for (local, term, pos) in g.iter_terms_with_positions() {
                let out = self.dict.insert_term(g.trie_index, term);
                let slot = out.postings as usize;
                if slot >= self.lists.len() {
                    self.lists.resize_with(slot + 1, PositionalList::new);
                }
                self.lists[slot].add_occurrence(local.with_offset(doc_offset), pos);
                self.tokens += 1;
            }
        }
    }

    /// Term occurrences indexed.
    pub fn tokens(&self) -> u64 {
        self.tokens
    }

    /// Finalize into an immutable index.
    pub fn finish(self) -> PositionalIndex {
        let dict = GlobalDictionary::combine(&[self.dict]);
        PositionalIndex { dict, lists: self.lists }
    }
}

/// An immutable positional index: dictionary + per-term position lists.
#[derive(Debug, Default, PartialEq)]
pub struct PositionalIndex {
    dict: GlobalDictionary,
    lists: Vec<PositionalList>,
}

const POS_MAGIC: &[u8; 4] = b"IIPX";

impl PositionalIndex {
    /// Distinct terms.
    pub fn len(&self) -> usize {
        self.dict.len()
    }

    /// True when empty.
    pub fn is_empty(&self) -> bool {
        self.dict.is_empty()
    }

    /// Position list of an already-stemmed term.
    pub fn get(&self, stemmed: &str) -> Option<&PositionalList> {
        let e = self.dict.lookup(stemmed)?;
        self.lists.get(e.postings as usize)
    }

    /// Phrase search over a raw query: tokens are normalized exactly as
    /// documents were (lowercase, stem, stop words removed), and removed
    /// stop words widen the expected position gap, so "statue of liberty"
    /// matches documents containing that exact phrase.
    pub fn phrase_search(&self, query: &str) -> Vec<(DocId, Vec<u32>)> {
        let mut wanted: Vec<(String, u32)> = Vec::new();
        let mut ordinal = 0u32;
        let mut it = ii_text::tokenize::tokens(query);
        while let Some(tok) = it.next_token() {
            let stemmed = ii_text::stem(tok).into_owned();
            let this = ordinal;
            ordinal += 1;
            if ii_text::is_stop_word(&stemmed) {
                continue;
            }
            wanted.push((stemmed, this));
        }
        let Some(first_ord) = wanted.first().map(|(_, o)| *o) else { return Vec::new() };
        let mut lists: Vec<(&PositionalList, u32)> = Vec::with_capacity(wanted.len());
        for (term, ord) in &wanted {
            match self.get(term) {
                Some(l) => lists.push((l, ord - first_ord)),
                None => return Vec::new(),
            }
        }
        phrase_matches_with_offsets(&lists)
    }

    /// Serialize.
    pub fn write_to<W: Write>(&self, w: &mut W) -> io::Result<u64> {
        let mut bytes = 0u64;
        w.write_all(POS_MAGIC)?;
        w.write_all(&(self.dict.len() as u32).to_le_bytes())?;
        bytes += 8;
        for e in self.dict.entries() {
            let list = &self.lists[e.postings as usize];
            let payload = list.encode();
            w.write_all(&e.trie_index.to_le_bytes())?;
            w.write_all(&[e.suffix.len() as u8])?;
            w.write_all(&e.suffix)?;
            w.write_all(&(list.len() as u32).to_le_bytes())?;
            w.write_all(&(payload.len() as u32).to_le_bytes())?;
            w.write_all(&payload)?;
            bytes += 4 + 1 + e.suffix.len() as u64 + 8 + payload.len() as u64;
        }
        Ok(bytes)
    }

    /// Deserialize.
    pub fn read_from<R: Read>(r: &mut R) -> io::Result<PositionalIndex> {
        let mut head = [0u8; 8];
        r.read_exact(&mut head)?;
        if &head[..4] != POS_MAGIC {
            return Err(io::Error::new(io::ErrorKind::InvalidData, "bad positional magic"));
        }
        let n = u32::from_le_bytes(head[4..8].try_into().unwrap()) as usize;
        let mut shard = PartialDictionary::new(0);
        let mut lists = Vec::with_capacity(n);
        for _ in 0..n {
            let mut fixed = [0u8; 5];
            r.read_exact(&mut fixed)?;
            let trie = u32::from_le_bytes(fixed[..4].try_into().unwrap());
            let mut suffix = vec![0u8; fixed[4] as usize];
            r.read_exact(&mut suffix)?;
            let mut counts = [0u8; 8];
            r.read_exact(&mut counts)?;
            let n_docs = u32::from_le_bytes(counts[..4].try_into().unwrap()) as usize;
            let plen = u32::from_le_bytes(counts[4..].try_into().unwrap()) as usize;
            let mut payload = vec![0u8; plen];
            r.read_exact(&mut payload)?;
            let list = PositionalList::decode(&payload, n_docs)
                .ok_or_else(|| io::Error::new(io::ErrorKind::InvalidData, "bad list"))?;
            let out = shard.insert_term(trie, &suffix);
            if out.postings as usize >= lists.len() {
                lists.resize_with(out.postings as usize + 1, PositionalList::new);
            }
            lists[out.postings as usize] = list;
        }
        Ok(PositionalIndex { dict: GlobalDictionary::combine(&[shard]), lists })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ii_corpus::RawDocument;
    use ii_text::parse_documents;

    fn doc(body: &str) -> RawDocument {
        RawDocument { url: String::new(), body: body.into() }
    }

    fn build(bodies: &[&str]) -> PositionalIndex {
        let docs: Vec<RawDocument> = bodies.iter().map(|b| doc(b)).collect();
        let batch = parse_documents(&docs, false, 0);
        let mut ix = PositionalIndexer::new();
        ix.index_batch(&batch, 0);
        ix.finish()
    }

    #[test]
    fn positions_recorded() {
        let ix = build(&["zebra quilt zebra"]);
        let z = ix.get("zebra").unwrap();
        assert_eq!(z.postings()[0].positions, vec![0, 2]);
        let q = ix.get("quilt").unwrap();
        assert_eq!(q.postings()[0].positions, vec![1]);
    }

    #[test]
    fn phrase_search_exact() {
        let ix = build(&[
            "big zebra runs fast",   // doc 0
            "zebra big runs",        // doc 1 (reversed)
            "a big zebra",           // doc 2 ("a" is a stop word)
        ]);
        let hits = ix.phrase_search("big zebra");
        let docs: Vec<u32> = hits.iter().map(|(d, _)| d.0).collect();
        assert_eq!(docs, vec![0, 2]);
        // Reversed order does not match.
        assert!(!docs.contains(&1));
    }

    #[test]
    fn phrase_search_skips_stop_words_in_query() {
        // "statue of liberty": "of" is removed but its position gap must
        // be respected.
        let ix = build(&[
            "the statue of liberty stands",   // phrase present
            "statue liberty",                 // adjacent, no gap — not the phrase
        ]);
        let hits = ix.phrase_search("statue of liberty");
        let docs: Vec<u32> = hits.iter().map(|(d, _)| d.0).collect();
        assert_eq!(docs, vec![0]);
    }

    #[test]
    fn phrase_absent_term_is_empty() {
        let ix = build(&["zebra quilt"]);
        assert!(ix.phrase_search("zebra missingword").is_empty());
        assert!(ix.phrase_search("").is_empty());
    }

    #[test]
    fn multi_batch_offsets() {
        let b0 = parse_documents(&[doc("zebra")], false, 0);
        let b1 = parse_documents(&[doc("zebra zebra")], false, 1);
        let mut ix = PositionalIndexer::new();
        ix.index_batch(&b0, 0);
        ix.index_batch(&b1, 10);
        let done = ix.finish();
        let z = done.get("zebra").unwrap();
        let docs: Vec<u32> = z.postings().iter().map(|p| p.doc.0).collect();
        assert_eq!(docs, vec![0, 10]);
    }

    #[test]
    fn serialization_roundtrip() {
        let ix = build(&["alpha beta gamma", "beta gamma alpha beta"]);
        let mut buf = Vec::new();
        let n = ix.write_to(&mut buf).unwrap();
        assert_eq!(n as usize, buf.len());
        let back = PositionalIndex::read_from(&mut buf.as_slice()).unwrap();
        assert_eq!(back.len(), ix.len());
        for term in ["alpha", "beta", "gamma"] {
            assert_eq!(back.get(term), ix.get(term), "{term}");
        }
        // Corruption detected.
        buf[0] = b'X';
        assert!(PositionalIndex::read_from(&mut buf.as_slice()).is_err());
    }

    #[test]
    fn tf_matches_plain_indexer() {
        let docs = vec![doc("zebra quilt zebra zebra"), doc("quilt")];
        let batch = parse_documents(&docs, false, 0);
        let mut plain = crate::cpu::CpuIndexer::new(0);
        for g in &batch.groups {
            plain.index_group(g, 0);
        }
        let mut posix = PositionalIndexer::new();
        posix.index_batch(&batch, 0);
        let done = posix.finish();
        let z = done.get("zebra").unwrap();
        let h = plain.dict.lookup(ii_dict::trie_index("zebra").0, b"ra").unwrap();
        let zp = plain.pending_list(h).unwrap();
        assert_eq!(z.len(), zp.len());
        for (a, b) in z.postings().iter().zip(zp.postings()) {
            assert_eq!(a.to_posting(), *b);
        }
    }
}
