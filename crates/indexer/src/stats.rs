//! Workload accounting (paper Table V).
//!
//! Table V reports, per device class, the number of tokens (term
//! occurrences processed), terms (distinct terms inserted) and characters
//! handled — the quantities that demonstrate the popular/unpopular split
//! works: the GPU sees ~0.8x the CPU's tokens but ~2.5x its terms.

/// Counters one indexer accumulates over its lifetime.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct WorkloadStats {
    /// Term occurrences consumed (`<term, doc>` tuples).
    pub tokens: u64,
    /// Distinct terms inserted into the dictionary.
    pub terms: u64,
    /// Bytes of term text processed (stored suffixes).
    pub chars: u64,
}

impl WorkloadStats {
    /// Accumulate.
    pub fn merge(&mut self, o: &WorkloadStats) {
        self.tokens += o.tokens;
        self.terms += o.terms;
        self.chars += o.chars;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn merge_sums() {
        let mut a = WorkloadStats { tokens: 1, terms: 2, chars: 3 };
        a.merge(&WorkloadStats { tokens: 10, terms: 20, chars: 30 });
        assert_eq!(a, WorkloadStats { tokens: 11, terms: 22, chars: 33 });
    }
}
