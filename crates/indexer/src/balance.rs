//! CPU/GPU load balancing (paper §III.E).
//!
//! A sample of the collection (the paper uses ~1 MB per GB) is parsed and
//! per-trie-collection token counts are gathered. The collections holding
//! the most tokens — the Zipf head, "around one hundred" — become the
//! *popular* group and are split into N1 sets of roughly equal token counts
//! for the CPU indexers. The remaining (*unpopular*) collections go to GPU
//! g = i mod N2 by trie index, exactly the paper's example scheme. Once
//! assigned, a collection is bound to its indexer for the program lifetime.

use ii_text::ParsedBatch;
use std::collections::HashMap;

/// Where a trie collection's indexing happens.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Owner {
    /// CPU indexer thread `n` (0-based).
    Cpu(usize),
    /// GPU indexer `n` (0-based).
    Gpu(usize),
}

/// The lifetime-fixed assignment of trie collections to indexers.
///
/// The *shard* assignment (trie collection → indexer slot) never changes;
/// what may change mid-build is which executor *hosts* a slot after its
/// original worker dies. [`BalancePlan::takeover_host`] picks the new host
/// from the same sampled loads the plan was built from.
#[derive(Clone, Debug)]
pub struct BalancePlan {
    owners: HashMap<u32, Owner>,
    /// Popular collections, most tokens first.
    pub popular: Vec<u32>,
    n_cpu: usize,
    n_gpu: usize,
    /// Sampled token load per CPU set (same order as `Owner::Cpu(i)`).
    cpu_load: Vec<u64>,
    /// Sampled token load per GPU (same order as `Owner::Gpu(i)`).
    gpu_load: Vec<u64>,
}

impl BalancePlan {
    /// Number of CPU indexers planned for.
    pub fn n_cpu(&self) -> usize {
        self.n_cpu
    }

    /// Number of GPU indexers planned for.
    pub fn n_gpu(&self) -> usize {
        self.n_gpu
    }

    /// Sampled token load assigned to `owner` when the plan was built.
    pub fn sampled_load(&self, owner: Owner) -> u64 {
        match owner {
            Owner::Cpu(i) => self.cpu_load.get(i).copied().unwrap_or(0),
            Owner::Gpu(i) => self.gpu_load.get(i).copied().unwrap_or(0),
        }
    }

    /// Pick the CPU executor that should absorb a dead worker's shard: the
    /// alive survivor carrying the least load, counting both its sampled
    /// plan load and any load already adopted from earlier deaths
    /// (`adopted_load`, indexed like `alive`). Ties break toward the lower
    /// executor index for determinism. `None` when no CPU executor is
    /// alive (the caller degrades to its own thread).
    pub fn takeover_host(&self, alive: &[bool], adopted_load: &[u64]) -> Option<usize> {
        (0..self.n_cpu)
            .filter(|&i| alive.get(i).copied().unwrap_or(false))
            .min_by_key(|&i| {
                self.cpu_load.get(i).copied().unwrap_or(0)
                    + adopted_load.get(i).copied().unwrap_or(0)
            })
    }

    /// Order in which GPU shards should be parked when the memory
    /// governor sheds under sustained pressure: heaviest sampled load
    /// first (its device state holds the most pending postings, so
    /// salvaging it relieves the most memory), ties toward the lower GPU
    /// index. Only alive GPUs (per `alive`, indexed like `Owner::Gpu`)
    /// are listed. Deterministic: depends only on the plan and the
    /// liveness vector, never on timing.
    pub fn shed_order(&self, alive: &[bool]) -> Vec<usize> {
        let mut order: Vec<usize> =
            (0..self.n_gpu).filter(|&g| alive.get(g).copied().unwrap_or(false)).collect();
        order.sort_by_key(|&g| {
            (std::cmp::Reverse(self.gpu_load.get(g).copied().unwrap_or(0)), g)
        });
        order
    }

    /// Owner of a trie collection. Collections absent from the sample are
    /// unpopular by definition and follow the deterministic modulo rule, so
    /// all indexers agree without communication.
    pub fn owner(&self, trie_index: u32) -> Owner {
        if let Some(&o) = self.owners.get(&trie_index) {
            return o;
        }
        if self.n_gpu > 0 {
            Owner::Gpu(trie_index as usize % self.n_gpu)
        } else {
            Owner::Cpu(trie_index as usize % self.n_cpu)
        }
    }

    /// Collections assigned to a specific owner within a known universe
    /// (testing/report helper).
    pub fn collections_for(&self, owner: Owner, universe: &[u32]) -> Vec<u32> {
        universe.iter().copied().filter(|&ti| self.owner(ti) == owner).collect()
    }
}

/// Count tokens per trie collection in a parsed sample.
pub fn sample_counts(batches: &[ParsedBatch]) -> HashMap<u32, u64> {
    let mut counts = HashMap::new();
    for b in batches {
        for g in &b.groups {
            *counts.entry(g.trie_index).or_insert(0) += g.total_terms();
        }
    }
    counts
}

/// Build a plan from sampled token counts.
///
/// `popular_count` is the size of the popular group (the paper observes
/// ~100). With `n_gpu == 0`, *all* collections are spread over the CPU
/// indexers by balanced token counts (the CPU-only configurations of
/// Fig 10/Table IV). `n_cpu == 0` with GPUs sends everything to the GPUs.
pub fn make_plan(
    counts: &HashMap<u32, u64>,
    n_cpu: usize,
    n_gpu: usize,
    popular_count: usize,
) -> BalancePlan {
    assert!(n_cpu + n_gpu > 0, "need at least one indexer");
    let mut by_tokens: Vec<(u32, u64)> = counts.iter().map(|(&k, &v)| (k, v)).collect();
    // Most tokens first; trie index tiebreak for determinism.
    by_tokens.sort_unstable_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));

    let mut owners = HashMap::new();
    let mut popular = Vec::new();

    type CountSlice<'a> = &'a [(u32, u64)];
    let (popular_slice, rest): (CountSlice, CountSlice) = if n_cpu == 0 {
        (&[], &by_tokens[..])
    } else if n_gpu == 0 {
        (&by_tokens[..], &[])
    } else {
        let cut = popular_count.min(by_tokens.len());
        (&by_tokens[..cut], &by_tokens[cut..])
    };

    let mut cpu_load = vec![0u64; n_cpu];
    if n_cpu > 0 {
        // Greedy balanced partition into N1 sets by token count (items
        // arrive heaviest-first, go to the lightest set).
        for &(ti, tok) in popular_slice {
            let lightest =
                (0..n_cpu).min_by_key(|&s| cpu_load[s]).expect("n_cpu > 0");
            cpu_load[lightest] += tok;
            owners.insert(ti, Owner::Cpu(lightest));
            popular.push(ti);
        }
    }
    let mut gpu_load = vec![0u64; n_gpu];
    if n_gpu > 0 {
        // Paper's scheme: i-th unpopular collection (by trie index order)
        // goes to GPU index position mod N2.
        let mut unpop: Vec<u32> = rest.iter().map(|&(ti, _)| ti).collect();
        unpop.sort_unstable();
        for (i, ti) in unpop.into_iter().enumerate() {
            owners.insert(ti, Owner::Gpu(i % n_gpu));
            gpu_load[i % n_gpu] += counts.get(&ti).copied().unwrap_or(0);
        }
    } else {
        // CPU-only: the "rest" is empty by construction above.
        debug_assert!(rest.is_empty());
    }

    BalancePlan { owners, popular, n_cpu, n_gpu, cpu_load, gpu_load }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn counts(pairs: &[(u32, u64)]) -> HashMap<u32, u64> {
        pairs.iter().copied().collect()
    }

    #[test]
    fn paper_example_modulo_assignment() {
        // §III.E: unpopular indices (0, 13, 27, 175, 384, 5810, 10041,
        // 17316) over 2 GPUs -> evens of the sorted order to GPU 0.
        let idxs = [0u32, 13, 27, 175, 384, 5810, 10041, 17316];
        let c: HashMap<u32, u64> = idxs.iter().map(|&i| (i, 1)).collect();
        let plan = make_plan(&c, 0, 2, 0);
        let gpu0: Vec<u32> = idxs.iter().copied().filter(|&i| plan.owner(i) == Owner::Gpu(0)).collect();
        let gpu1: Vec<u32> = idxs.iter().copied().filter(|&i| plan.owner(i) == Owner::Gpu(1)).collect();
        assert_eq!(gpu0, vec![0, 27, 384, 10041]);
        assert_eq!(gpu1, vec![13, 175, 5810, 17316]);
    }

    #[test]
    fn popular_go_to_cpu_balanced() {
        let c = counts(&[(10, 1000), (20, 900), (30, 800), (40, 10), (50, 5)]);
        let plan = make_plan(&c, 2, 1, 3);
        assert_eq!(plan.popular.len(), 3);
        // Heaviest item alone vs next two together: greedy puts 1000 on one
        // CPU set, 900+800 on... no: heaviest-first greedy: 1000->cpu0,
        // 900->cpu1, 800->cpu1? cpu1 has 900 vs cpu0 1000 -> 800 goes to
        // cpu1 (lighter). Totals: 1000 vs 1700. Still both CPUs used.
        let cpus: std::collections::HashSet<Owner> =
            plan.popular.iter().map(|&ti| plan.owner(ti)).collect();
        assert_eq!(cpus.len(), 2);
        assert!(matches!(plan.owner(40), Owner::Gpu(0)));
        assert!(matches!(plan.owner(50), Owner::Gpu(0)));
    }

    #[test]
    fn unseen_collections_follow_modulo_rule() {
        let plan = make_plan(&counts(&[(1, 10)]), 1, 2, 1);
        assert_eq!(plan.owner(9999), Owner::Gpu(9999 % 2));
        assert_eq!(plan.owner(10000), Owner::Gpu(0));
        let cpu_only = make_plan(&counts(&[(1, 10)]), 3, 0, 1);
        assert_eq!(cpu_only.owner(9999), Owner::Cpu(9999 % 3));
    }

    #[test]
    fn cpu_only_plan_spreads_everything() {
        let c = counts(&[(1, 100), (2, 90), (3, 80), (4, 70), (5, 60), (6, 50)]);
        let plan = make_plan(&c, 3, 0, 2);
        for ti in [1u32, 2, 3, 4, 5, 6] {
            assert!(matches!(plan.owner(ti), Owner::Cpu(_)));
        }
        // Roughly balanced: no CPU set should hold more than half the load.
        let mut loads = vec![0u64; 3];
        for (&ti, &tok) in &c {
            if let Owner::Cpu(s) = plan.owner(ti) {
                loads[s] += tok;
            }
        }
        let total: u64 = loads.iter().sum();
        assert!(loads.iter().all(|&l| l <= total / 2), "{loads:?}");
    }

    #[test]
    fn gpu_only_plan() {
        let c = counts(&[(1, 100), (2, 90)]);
        let plan = make_plan(&c, 0, 2, 1);
        assert!(matches!(plan.owner(1), Owner::Gpu(_)));
        assert!(matches!(plan.owner(2), Owner::Gpu(_)));
    }

    #[test]
    #[should_panic(expected = "at least one indexer")]
    fn zero_indexers_rejected() {
        make_plan(&HashMap::new(), 0, 0, 100);
    }

    #[test]
    fn sampled_loads_match_the_assignment() {
        let c = counts(&[(10, 1000), (20, 900), (30, 800), (40, 10), (50, 5)]);
        let plan = make_plan(&c, 2, 1, 3);
        // Greedy: 1000→cpu0, 900→cpu1, 800→cpu1.
        assert_eq!(plan.sampled_load(Owner::Cpu(0)), 1000);
        assert_eq!(plan.sampled_load(Owner::Cpu(1)), 1700);
        assert_eq!(plan.sampled_load(Owner::Gpu(0)), 15);
        assert_eq!(plan.sampled_load(Owner::Cpu(9)), 0, "out-of-range owner carries nothing");
    }

    #[test]
    fn takeover_prefers_lightest_alive_survivor() {
        let c = counts(&[(10, 1000), (20, 900), (30, 800), (40, 10)]);
        let plan = make_plan(&c, 3, 1, 3);
        // Loads: cpu0 = 1000, cpu1 = 900, cpu2 = 800.
        assert_eq!(plan.takeover_host(&[true, true, true], &[0, 0, 0]), Some(2));
        // Adopted load counts against a survivor: cpu2 already absorbed 500.
        assert_eq!(plan.takeover_host(&[true, true, true], &[0, 0, 500]), Some(1));
        // Dead executors are never hosts.
        assert_eq!(plan.takeover_host(&[true, false, false], &[0, 0, 0]), Some(0));
        assert_eq!(plan.takeover_host(&[false, false, false], &[0, 0, 0]), None);
        // Ties break toward the lower index.
        let even = make_plan(&counts(&[(1, 10), (2, 10)]), 2, 0, 2);
        assert_eq!(even.takeover_host(&[true, true], &[0, 0]), Some(0));
    }

    #[test]
    fn shed_order_prefers_heaviest_alive_gpu() {
        // Unpopular collections 1..6 over 2 GPUs: sorted trie order is
        // 1,2,3,4,5,6 → GPU0 gets {1,3,5} (100+80+60), GPU1 gets {2,4,6}
        // (90+70+50).
        let c = counts(&[(1, 100), (2, 90), (3, 80), (4, 70), (5, 60), (6, 50)]);
        let plan = make_plan(&c, 0, 2, 0);
        assert_eq!(plan.sampled_load(Owner::Gpu(0)), 240);
        assert_eq!(plan.sampled_load(Owner::Gpu(1)), 210);
        assert_eq!(plan.shed_order(&[true, true]), vec![0, 1], "heaviest first");
        assert_eq!(plan.shed_order(&[false, true]), vec![1], "dead GPUs excluded");
        assert_eq!(plan.shed_order(&[false, false]), Vec::<usize>::new());
        // Ties break toward the lower index.
        let even = make_plan(&counts(&[(1, 10), (2, 10)]), 0, 2, 0);
        assert_eq!(even.shed_order(&[true, true]), vec![0, 1]);
    }

    #[test]
    fn sample_counts_accumulate_across_batches() {
        use ii_corpus::RawDocument;
        let docs =
            vec![RawDocument { url: String::new(), body: "zebra zebra quilt".into() }];
        let b1 = ii_text::parse_documents(&docs, false, 0);
        let b2 = ii_text::parse_documents(&docs, false, 1);
        let c = sample_counts(&[b1, b2]);
        let z = ii_dict::trie_index("zebra").0;
        assert_eq!(c[&z], 4);
    }
}
