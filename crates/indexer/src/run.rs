//! The indexer pool: parallel CPU + GPU indexers consuming parsed batches
//! and producing runs (paper Fig 8).
//!
//! A *single run* starts with parsed data in parser buffers and ends with
//! postings lists: pre-processing moves GPU input to device memory,
//! indexing runs on all indexers, post-processing flushes postings into
//! per-indexer run files (variable-byte compressed). The pool also owns the
//! global document-ID offset: parsers emit local IDs and "a global document
//! ID offset will be calculated by the indexer" (§III.C).

use crate::balance::{BalancePlan, Owner};
use crate::cpu::CpuIndexer;
use crate::gpu::{GpuBatchReport, GpuIndexer, GpuIndexerConfig};
use crate::stats::WorkloadStats;
use ii_dict::PartialDictionary;
use ii_obs::{TraceKind, TraceSink, Tracer};
use ii_postings::{Codec, RunFile};
use ii_text::ParsedBatch;
use std::time::Instant;

/// Timing of one batch through the pool.
#[derive(Clone, Debug, Default)]
pub struct BatchTiming {
    /// Measured wall seconds of each CPU indexer's work on this batch.
    pub cpu_seconds: Vec<f64>,
    /// Simulated timing of each GPU indexer on this batch.
    pub gpu: Vec<GpuBatchReport>,
}

impl BatchTiming {
    /// The batch's indexing-stage latency: indexers run in parallel, so it
    /// is the max of per-indexer times (GPU time = device + transfer).
    pub fn stage_seconds(&self) -> f64 {
        let cpu = self.cpu_seconds.iter().copied().fold(0.0, f64::max);
        let gpu = self
            .gpu
            .iter()
            .map(|g| g.device_seconds + g.transfer_seconds)
            .fold(0.0, f64::max);
        cpu.max(gpu)
    }
}

/// All indexers of the system plus the routing plan.
pub struct IndexerPool {
    /// CPU indexers (ids `0..n_cpu`).
    pub cpus: Vec<CpuIndexer>,
    /// GPU indexers (ids `n_cpu..n_cpu+n_gpu`).
    pub gpus: Vec<GpuIndexer>,
    /// The lifetime-fixed collection→indexer assignment.
    pub plan: BalancePlan,
    /// Postings codec for run files.
    pub codec: Codec,
    next_doc: u32,
    docs_indexed: u32,
    next_run: u32,
    /// Per-CPU-indexer trace timelines (disabled unless
    /// [`Self::attach_tracer`] ran). `cpu-N`/`gpu-N` are *logical* workers:
    /// the pool executes them serially on the calling thread, so their
    /// spans never overlap within a batch by construction.
    cpu_sinks: Vec<TraceSink>,
    gpu_sinks: Vec<TraceSink>,
}

impl IndexerPool {
    /// Build a pool matching `plan`'s indexer counts.
    pub fn new(plan: BalancePlan, gpu_config: GpuIndexerConfig, codec: Codec) -> Self {
        let cpus: Vec<CpuIndexer> = (0..plan.n_cpu()).map(|i| CpuIndexer::new(i as u32)).collect();
        let gpus: Vec<GpuIndexer> = (0..plan.n_gpu())
            .map(|i| GpuIndexer::new((plan.n_cpu() + i) as u32, gpu_config))
            .collect();
        let cpu_sinks = vec![TraceSink::disabled(); cpus.len()];
        let gpu_sinks = vec![TraceSink::disabled(); gpus.len()];
        IndexerPool {
            cpus,
            gpus,
            plan,
            codec,
            next_doc: 0,
            docs_indexed: 0,
            next_run: 0,
            cpu_sinks,
            gpu_sinks,
        }
    }

    /// Register one timeline per indexer (`cpu-0..`, `gpu-0..`) on
    /// `tracer`; subsequent [`Self::index_batch`] and [`Self::flush_run`]
    /// calls record per-indexer spans. No-op for a disabled tracer.
    pub fn attach_tracer(&mut self, tracer: &Tracer) {
        self.cpu_sinks =
            (0..self.cpus.len()).map(|i| tracer.sink(&format!("cpu-{i}"))).collect();
        self.gpu_sinks =
            (0..self.gpus.len()).map(|i| tracer.sink(&format!("gpu-{i}"))).collect();
    }

    /// Rebuild a pool from checkpointed dictionary shards plus the scalar
    /// counters a resumed build must continue from. Each shard is routed to
    /// the indexer whose id it carries (CPU shards are adopted directly,
    /// GPU shards are uploaded back into device memory), so postings-handle
    /// assignment continues exactly where the checkpoint left off.
    pub fn restore(
        plan: BalancePlan,
        gpu_config: GpuIndexerConfig,
        codec: Codec,
        parts: Vec<PartialDictionary>,
        next_doc: u32,
        docs_indexed: u32,
        next_run: u32,
    ) -> Self {
        let mut pool = IndexerPool::new(plan, gpu_config, codec);
        for part in parts {
            let id = part.indexer_id as usize;
            assert!(
                id < pool.cpus.len() + pool.gpus.len(),
                "checkpoint shard for indexer {id} but pool has {} indexers",
                pool.cpus.len() + pool.gpus.len()
            );
            if id < pool.cpus.len() {
                pool.cpus[id] = CpuIndexer::restore(part);
            } else {
                let g = id - pool.cpus.len();
                pool.gpus[g].restore_dictionary(&part);
            }
        }
        pool.next_doc = next_doc;
        pool.docs_indexed = docs_indexed;
        pool.next_run = next_run;
        pool
    }

    /// Documents actually indexed (doc-ID gaps reserved via
    /// [`Self::skip_docs`] are excluded).
    pub fn docs_indexed(&self) -> u32 {
        self.docs_indexed
    }

    /// The next global document-ID offset (indexed + skipped documents) —
    /// the doc-ID high-water mark a checkpoint records.
    pub fn next_doc(&self) -> u32 {
        self.next_doc
    }

    /// Runs flushed so far (the next run id to be assigned).
    pub fn runs_flushed(&self) -> u32 {
        self.next_run
    }

    /// Reserve `n` doc IDs without indexing anything — the slot of a
    /// quarantined file, keeping later files' global IDs identical to a
    /// clean build's.
    pub fn skip_docs(&mut self, n: u32) {
        self.next_doc += n;
    }

    /// Index one parsed batch: routes each trie group to its owner and
    /// advances the global document-ID offset.
    pub fn index_batch(&mut self, batch: &ParsedBatch) -> BatchTiming {
        let offset = self.next_doc;
        self.next_doc += batch.num_docs;
        self.docs_indexed += batch.num_docs;

        // Route groups.
        let mut cpu_groups: Vec<Vec<&ii_text::TrieGroup>> =
            vec![Vec::new(); self.cpus.len()];
        let mut gpu_groups: Vec<Vec<&ii_text::TrieGroup>> =
            vec![Vec::new(); self.gpus.len()];
        for g in &batch.groups {
            match self.plan.owner(g.trie_index) {
                Owner::Cpu(i) => cpu_groups[i].push(g),
                Owner::Gpu(i) => gpu_groups[i].push(g),
            }
        }

        let batch_id = batch.file_idx as u32;
        let mut timing = BatchTiming::default();
        for (i, groups) in cpu_groups.iter().enumerate() {
            let t0 = Instant::now();
            self.cpus[i].index_groups(groups, offset, &self.cpu_sinks[i], batch_id);
            timing.cpu_seconds.push(t0.elapsed().as_secs_f64());
        }
        for (i, groups) in gpu_groups.iter().enumerate() {
            timing.gpu.push(self.gpus[i].index_batch_traced(
                groups,
                offset,
                &self.gpu_sinks[i],
                batch_id,
            ));
        }
        timing
    }

    /// End a run: every indexer flushes its postings into a run file.
    /// Returns one file per indexer (some may be empty).
    pub fn flush_run(&mut self) -> Vec<RunFile> {
        let run_id = self.next_run;
        self.next_run += 1;
        let mut out = Vec::with_capacity(self.cpus.len() + self.gpus.len());
        for (c, sink) in self.cpus.iter_mut().zip(&self.cpu_sinks) {
            let mut span = sink.span(TraceKind::Flush);
            let run = c.flush_run(run_id, self.codec);
            span.add_bytes(run.payload.len() as u64);
            out.push(run);
        }
        for (g, sink) in self.gpus.iter_mut().zip(&self.gpu_sinks) {
            let mut span = sink.span(TraceKind::Flush);
            let run = g.flush_run(run_id, self.codec);
            span.add_bytes(run.payload.len() as u64);
            out.push(run);
        }
        out
    }

    /// Aggregate CPU-side and GPU-side workload (paper Table V).
    pub fn workload_split(&self) -> (WorkloadStats, WorkloadStats) {
        let mut cpu = WorkloadStats::default();
        for c in &self.cpus {
            cpu.merge(&c.stats);
        }
        let mut gpu = WorkloadStats::default();
        for g in &self.gpus {
            gpu.merge(&g.stats);
        }
        (cpu, gpu)
    }

    /// End of program: collect every indexer's dictionary shard (GPU shards
    /// are downloaded and reinterpreted).
    pub fn finish(mut self) -> Vec<PartialDictionary> {
        let mut parts: Vec<PartialDictionary> =
            self.cpus.iter().map(|c| c.dict.clone()).collect();
        for g in &mut self.gpus {
            parts.push(g.into_partial_dictionary());
        }
        parts
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::balance::{make_plan, sample_counts};
    use ii_corpus::RawDocument;
    use ii_dict::GlobalDictionary;
    use ii_postings::RunSet;
    use ii_text::parse_documents;
    use std::collections::HashMap;

    fn parse(bodies: &[&str], file_idx: usize) -> ParsedBatch {
        let docs: Vec<RawDocument> = bodies
            .iter()
            .map(|b| RawDocument { url: String::new(), body: (*b).into() })
            .collect();
        parse_documents(&docs, false, file_idx)
    }

    fn pool(n_cpu: usize, n_gpu: usize, sample: &ParsedBatch) -> IndexerPool {
        let counts = sample_counts(std::slice::from_ref(sample));
        let plan = make_plan(&counts, n_cpu, n_gpu, 2);
        IndexerPool::new(plan, GpuIndexerConfig::small(), Codec::VarByte)
    }

    #[test]
    fn end_to_end_small_index() {
        let b0 = parse(&["the zebra runs", "zebra quilt zebra"], 0);
        let b1 = parse(&["quilt and zebra again"], 1);
        let mut p = pool(1, 1, &b0);
        p.index_batch(&b0);
        p.index_batch(&b1);
        assert_eq!(p.docs_indexed(), 3);
        let runs = p.flush_run();
        assert_eq!(runs.len(), 2);

        // Build run sets per indexer id.
        let mut sets: HashMap<u32, RunSet> = HashMap::new();
        for r in runs {
            sets.entry(r.indexer_id).or_default().push(r);
        }
        let parts = p.finish();
        let dict = GlobalDictionary::combine(&parts);
        // zebra appears in global docs 0, 1, 2 with tf 1, 2, 1.
        let e = dict.lookup("zebra").expect("zebra indexed");
        let list = sets[&e.indexer].fetch(e.postings);
        let docs_tfs: Vec<(u32, u32)> =
            list.postings().iter().map(|p| (p.doc.0, p.tf)).collect();
        assert_eq!(docs_tfs, vec![(0, 1), (1, 2), (2, 1)]);
    }

    #[test]
    fn cpu_only_and_gpu_only_agree_with_mixed() {
        let batches =
            vec![parse(&["alpha beta gamma beta", "delta alpha"], 0), parse(&["gamma gamma epsilon"], 1)];
        type Fingerprint = Vec<(String, Vec<(u32, u32)>)>;
        let mut results: Vec<Fingerprint> = Vec::new();
        for (n_cpu, n_gpu) in [(2, 0), (0, 1), (1, 2)] {
            let mut p = pool(n_cpu, n_gpu, &batches[0]);
            for b in &batches {
                p.index_batch(b);
            }
            let runs = p.flush_run();
            let mut sets: HashMap<u32, RunSet> = HashMap::new();
            for r in runs {
                sets.entry(r.indexer_id).or_default().push(r);
            }
            let dict = GlobalDictionary::combine(&p.finish());
            let mut terms: Vec<(String, Vec<(u32, u32)>)> = dict
                .entries()
                .iter()
                .map(|e| {
                    let l = sets[&e.indexer].fetch(e.postings);
                    (
                        e.full_term(),
                        l.postings().iter().map(|p| (p.doc.0, p.tf)).collect(),
                    )
                })
                .collect();
            terms.sort();
            results.push(terms);
        }
        assert_eq!(results[0], results[1], "cpu-only vs gpu-only");
        assert_eq!(results[0], results[2], "cpu-only vs mixed");
    }

    #[test]
    fn multi_run_postings_concatenate() {
        let mut p = pool(1, 0, &parse(&["omega"], 0));
        p.index_batch(&parse(&["omega"], 0));
        let r0 = p.flush_run();
        p.index_batch(&parse(&["omega omega"], 1));
        let r1 = p.flush_run();
        let mut set = RunSet::new();
        set.push(r0.into_iter().next().unwrap());
        set.push(r1.into_iter().next().unwrap());
        let dict = GlobalDictionary::combine(&p.finish());
        let e = dict.lookup("omega").unwrap();
        let l = set.fetch(e.postings);
        assert_eq!(l.len(), 2);
        assert_eq!(l.postings()[1].tf, 2);
    }

    /// The checkpoint/restore contract behind `build --resume`: flushing a
    /// run, serializing every shard, restoring a fresh pool from those
    /// bytes, and indexing the remaining batches must produce bit-identical
    /// dictionaries and run files to the uninterrupted pool.
    #[test]
    fn restored_pool_continues_byte_identically() {
        let batches = [
            parse(&["zebra quilt xylophone", "the banana zebra"], 0),
            parse(&["quilt again and again"], 1),
            parse(&["xylophone zebra 954 zebra"], 2),
        ];
        for (n_cpu, n_gpu) in [(2, 0), (0, 1), (1, 1)] {
            // Uninterrupted reference.
            let mut full = pool(n_cpu, n_gpu, &batches[0]);
            full.index_batch(&batches[0]);
            let full_r0 = full.flush_run();
            full.index_batch(&batches[1]);
            full.index_batch(&batches[2]);
            let full_r1 = full.flush_run();

            // Checkpointed: flush, serialize shards, restore, continue.
            let mut first = pool(n_cpu, n_gpu, &batches[0]);
            first.index_batch(&batches[0]);
            let ckpt_r0 = first.flush_run();
            let next_doc = first.next_doc();
            let docs = first.docs_indexed();
            let runs = first.runs_flushed();
            let shard_bytes: Vec<Vec<u8>> = first
                .finish()
                .iter()
                .map(|p| {
                    let mut b = Vec::new();
                    p.write_to(&mut b).unwrap();
                    b
                })
                .collect();
            let parts: Vec<PartialDictionary> = shard_bytes
                .iter()
                .map(|b| PartialDictionary::read_from(&mut b.as_slice()).unwrap())
                .collect();
            let counts = sample_counts(std::slice::from_ref(&batches[0]));
            let plan = make_plan(&counts, n_cpu, n_gpu, 2);
            let mut resumed = IndexerPool::restore(
                plan,
                GpuIndexerConfig::small(),
                Codec::VarByte,
                parts,
                next_doc,
                docs,
                runs,
            );
            resumed.index_batch(&batches[1]);
            resumed.index_batch(&batches[2]);
            let ckpt_r1 = resumed.flush_run();

            let encode =
                |runs: &[RunFile]| -> Vec<Vec<u8>> { runs.iter().map(|r| r.to_bytes()).collect() };
            assert_eq!(encode(&full_r0), encode(&ckpt_r0), "cfg ({n_cpu},{n_gpu}) run 0");
            assert_eq!(encode(&full_r1), encode(&ckpt_r1), "cfg ({n_cpu},{n_gpu}) run 1");
            let dict_bytes = |parts: &[PartialDictionary]| {
                let mut b = Vec::new();
                GlobalDictionary::combine(parts).write_to(&mut b).unwrap();
                b
            };
            assert_eq!(
                dict_bytes(&full.finish()),
                dict_bytes(&resumed.finish()),
                "cfg ({n_cpu},{n_gpu}) dictionary"
            );
        }
    }

    #[test]
    fn workload_split_partitions_tokens() {
        let b = parse(&["the cat and the dog chased the big cats dogs zebra"], 0);
        let mut p = pool(1, 1, &b);
        p.index_batch(&b);
        let (cpu, gpu) = p.workload_split();
        let total = cpu.tokens + gpu.tokens;
        assert_eq!(total, b.stats.terms_kept);
        assert!(cpu.tokens > 0, "popular collections must hit the CPU");
    }
}
