//! The indexer pool: parallel CPU + GPU indexers consuming parsed batches
//! and producing runs (paper Fig 8).
//!
//! A *single run* starts with parsed data in parser buffers and ends with
//! postings lists: pre-processing moves GPU input to device memory,
//! indexing runs on all indexers, post-processing flushes postings into
//! per-indexer run files (variable-byte compressed). The pool also owns the
//! global document-ID offset: parsers emit local IDs and "a global document
//! ID offset will be calculated by the indexer" (§III.C).

use crate::balance::{BalancePlan, Owner};
use crate::cpu::CpuIndexer;
use crate::gpu::{GpuBatchReport, GpuIndexer, GpuIndexerConfig};
use crate::stats::WorkloadStats;
use ii_dict::PartialDictionary;
use ii_obs::{Heartbeat, TraceKind, TraceSink, Tracer};
use ii_postings::{Codec, RunFile};
use ii_text::ParsedBatch;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::Arc;
use std::time::Instant;

/// Where a dictionary shard's work executes after a supervision
/// reassignment.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Host {
    /// CPU indexer executor `n` (0-based).
    Cpu(usize),
    /// The driver thread itself — the last-resort degraded mode when no
    /// CPU executor survives.
    Driver,
}

impl std::fmt::Display for Host {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Host::Cpu(i) => write!(f, "cpu-{i}"),
            Host::Driver => write!(f, "driver"),
        }
    }
}

/// Record of one dictionary shard moving to a new host after a worker
/// death.
#[derive(Clone, Debug)]
pub struct Takeover {
    /// Dictionary shard (indexer id) that moved.
    pub shard: u32,
    /// Where the shard's work continues.
    pub host: Host,
    /// True when the shard was salvaged off a dead GPU onto the CPU path
    /// (graceful degradation); false for CPU-executor rehosting.
    pub gpu_takeover: bool,
}

/// Timing of one batch through the pool.
#[derive(Clone, Debug, Default)]
pub struct BatchTiming {
    /// Measured wall seconds of each CPU executor's work on this batch
    /// (its own shard plus any shards it adopted).
    pub cpu_seconds: Vec<f64>,
    /// Simulated timing of each GPU indexer on this batch (zeroed entries
    /// for GPUs that died — their shards' CPU time lands in
    /// `cpu_seconds`/`fallback_seconds`).
    pub gpu: Vec<GpuBatchReport>,
    /// Wall seconds of shard work hosted on the driver thread because no
    /// CPU executor survived.
    pub fallback_seconds: f64,
    /// Shards whose work panicked during this batch: `(shard id, panic
    /// message)`. The shard's host was declared dead and its shards were
    /// reassigned; the batch continued on the survivors.
    pub panics: Vec<(u32, String)>,
    /// Reassignments triggered by panics inside this batch.
    pub takeovers: Vec<Takeover>,
}

impl BatchTiming {
    /// The batch's indexing-stage latency: indexers run in parallel, so it
    /// is the max of per-indexer times (GPU time = device + transfer);
    /// driver-hosted fallback work is serial with everything else.
    pub fn stage_seconds(&self) -> f64 {
        let cpu = self.cpu_seconds.iter().copied().fold(0.0, f64::max);
        let gpu = self
            .gpu
            .iter()
            .map(|g| g.device_seconds + g.transfer_seconds)
            .fold(0.0, f64::max);
        cpu.max(gpu) + self.fallback_seconds
    }
}

fn panic_text(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "indexer panicked (non-string payload)".to_string()
    }
}

/// All indexers of the system plus the routing plan.
///
/// Failure-domain model: the *shard* assignment (trie collection →
/// indexer id, fixed by the [`BalancePlan`]) never changes — what changes
/// when a worker dies is which executor *hosts* each shard. CPU shards
/// live in host memory and survive their executor, so rehosting them is
/// state-free; a dead GPU's shard is salvaged (dictionary download +
/// pending-postings drain) into an adopted [`CpuIndexer`] that continues
/// the shard on the CPU path. Because run files and dictionary entries
/// are keyed by shard id — not by host — a takeover at a batch boundary
/// keeps the final index byte-identical to a healthy build.
pub struct IndexerPool {
    /// CPU indexers (ids `0..n_cpu`). Shard structs stay in place even
    /// when their executor dies; `cpu_host` says who runs them.
    pub cpus: Vec<CpuIndexer>,
    /// GPU indexers (ids `n_cpu..n_cpu+n_gpu`). A dead GPU's struct is
    /// retained for its pre-death workload/transfer stats; its live state
    /// moves to `adopted`.
    pub gpus: Vec<GpuIndexer>,
    /// The lifetime-fixed collection→indexer assignment.
    pub plan: BalancePlan,
    /// Postings codec for run files.
    pub codec: Codec,
    next_doc: u32,
    docs_indexed: u32,
    next_run: u32,
    /// Per-CPU-indexer trace timelines (disabled unless
    /// [`Self::attach_tracer`] ran). `cpu-N`/`gpu-N` are *logical* workers:
    /// the pool executes them serially on the calling thread, so their
    /// spans never overlap within a batch by construction.
    cpu_sinks: Vec<TraceSink>,
    gpu_sinks: Vec<TraceSink>,
    /// Executor liveness (indexed like `cpus` / `gpus`).
    cpu_alive: Vec<bool>,
    gpu_alive: Vec<bool>,
    /// Host executor of each CPU shard (initially `Cpu(i)` for shard i).
    cpu_host: Vec<Host>,
    /// CPU-side continuation of each dead GPU's shard, plus its host.
    adopted: Vec<Option<(CpuIndexer, Host)>>,
    /// Sampled load each CPU executor absorbed through takeovers (feeds
    /// [`BalancePlan::takeover_host`] so successive deaths spread out).
    adopted_load: Vec<u64>,
}

impl IndexerPool {
    /// Build a pool matching `plan`'s indexer counts.
    pub fn new(plan: BalancePlan, gpu_config: GpuIndexerConfig, codec: Codec) -> Self {
        let cpus: Vec<CpuIndexer> = (0..plan.n_cpu()).map(|i| CpuIndexer::new(i as u32)).collect();
        let gpus: Vec<GpuIndexer> = (0..plan.n_gpu())
            .map(|i| GpuIndexer::new((plan.n_cpu() + i) as u32, gpu_config))
            .collect();
        let cpu_sinks = vec![TraceSink::disabled(); cpus.len()];
        let gpu_sinks = vec![TraceSink::disabled(); gpus.len()];
        let n_cpu = cpus.len();
        let n_gpu = gpus.len();
        IndexerPool {
            cpus,
            gpus,
            plan,
            codec,
            next_doc: 0,
            docs_indexed: 0,
            next_run: 0,
            cpu_sinks,
            gpu_sinks,
            cpu_alive: vec![true; n_cpu],
            gpu_alive: vec![true; n_gpu],
            cpu_host: (0..n_cpu).map(Host::Cpu).collect(),
            adopted: (0..n_gpu).map(|_| None).collect(),
            adopted_load: vec![0; n_cpu],
        }
    }

    /// Register one timeline per indexer (`cpu-0..`, `gpu-0..`) on
    /// `tracer`; subsequent [`Self::index_batch`] and [`Self::flush_run`]
    /// calls record per-indexer spans. No-op for a disabled tracer.
    pub fn attach_tracer(&mut self, tracer: &Tracer) {
        self.cpu_sinks =
            (0..self.cpus.len()).map(|i| tracer.sink(&format!("cpu-{i}"))).collect();
        self.gpu_sinks =
            (0..self.gpus.len()).map(|i| tracer.sink(&format!("gpu-{i}"))).collect();
    }

    /// Attach liveness beacons to the indexer timelines: every span an
    /// indexer records (index, flush) bumps its beacon, feeding the
    /// supervisor watchdog with zero extra instrumentation. Call after
    /// [`Self::attach_tracer`] (which replaces the sinks).
    pub fn attach_heartbeats(&mut self, cpu: &[Arc<Heartbeat>], gpu: &[Arc<Heartbeat>]) {
        for (sink, hb) in self.cpu_sinks.iter_mut().zip(cpu) {
            *sink = std::mem::take(sink).with_heartbeat(Arc::clone(hb));
        }
        for (sink, hb) in self.gpu_sinks.iter_mut().zip(gpu) {
            *sink = std::mem::take(sink).with_heartbeat(Arc::clone(hb));
        }
    }

    /// Whether CPU executor `i` is still alive.
    pub fn cpu_is_alive(&self, i: usize) -> bool {
        self.cpu_alive.get(i).copied().unwrap_or(false)
    }

    /// Whether GPU `g` is still alive.
    pub fn gpu_is_alive(&self, g: usize) -> bool {
        self.gpu_alive.get(g).copied().unwrap_or(false)
    }

    /// Surviving CPU executors.
    pub fn alive_cpus(&self) -> usize {
        self.cpu_alive.iter().filter(|&&a| a).count()
    }

    /// Surviving GPUs.
    pub fn alive_gpus(&self) -> usize {
        self.gpu_alive.iter().filter(|&&a| a).count()
    }

    /// Shards salvaged off dead GPUs and continued on the CPU path.
    pub fn adopted_shards(&self) -> impl Iterator<Item = &CpuIndexer> {
        self.adopted.iter().flatten().map(|(c, _)| c)
    }

    /// Declare CPU executor `i` dead and rehost every shard it was
    /// running onto the lightest surviving CPU executor (or the driver
    /// thread when none survive). Idempotent; returns the reassignments.
    pub fn kill_cpu(&mut self, i: usize) -> Vec<Takeover> {
        if i >= self.cpus.len() || !self.cpu_alive[i] {
            return Vec::new();
        }
        self.cpu_alive[i] = false;
        self.rehost_orphans()
    }

    /// Declare GPU `g` dead: salvage its dictionary shard and pending
    /// postings into an adopted [`CpuIndexer`] hosted by the lightest
    /// surviving CPU executor (or the driver thread), degrading the shard
    /// to the CPU path for the rest of the build. Idempotent; returns the
    /// reassignment.
    pub fn kill_gpu(&mut self, g: usize) -> Vec<Takeover> {
        if g >= self.gpus.len() || !self.gpu_alive[g] {
            return Vec::new();
        }
        self.gpu_alive[g] = false;
        let dict = self.gpus[g].into_partial_dictionary();
        let lists = self.gpus[g].salvage_pending_lists();
        let host = match self.plan.takeover_host(&self.cpu_alive, &self.adopted_load) {
            Some(e) => {
                self.adopted_load[e] += self.plan.sampled_load(Owner::Gpu(g));
                Host::Cpu(e)
            }
            None => Host::Driver,
        };
        self.adopted[g] = Some((CpuIndexer::adopt(dict, lists), host));
        vec![Takeover { shard: (self.plan.n_cpu() + g) as u32, host, gpu_takeover: true }]
    }

    /// Rehost every shard whose host executor is dead. Called after an
    /// executor death; also re-levels adopted GPU shards stranded on a
    /// newly-dead host.
    fn rehost_orphans(&mut self) -> Vec<Takeover> {
        let mut moves = Vec::new();
        for s in 0..self.cpus.len() {
            if let Host::Cpu(h) = self.cpu_host[s] {
                if !self.cpu_alive[h] {
                    let host = match self.plan.takeover_host(&self.cpu_alive, &self.adopted_load)
                    {
                        Some(e) => {
                            self.adopted_load[e] += self.plan.sampled_load(Owner::Cpu(s));
                            Host::Cpu(e)
                        }
                        None => Host::Driver,
                    };
                    self.cpu_host[s] = host;
                    moves.push(Takeover { shard: s as u32, host, gpu_takeover: false });
                }
            }
        }
        for g in 0..self.adopted.len() {
            let stranded = matches!(
                &self.adopted[g],
                Some((_, Host::Cpu(h))) if !self.cpu_alive[*h]
            );
            if stranded {
                let host = match self.plan.takeover_host(&self.cpu_alive, &self.adopted_load) {
                    Some(e) => {
                        self.adopted_load[e] += self.plan.sampled_load(Owner::Gpu(g));
                        Host::Cpu(e)
                    }
                    None => Host::Driver,
                };
                if let Some((_, h)) = &mut self.adopted[g] {
                    *h = host;
                }
                moves.push(Takeover {
                    shard: (self.plan.n_cpu() + g) as u32,
                    host,
                    gpu_takeover: true,
                });
            }
        }
        moves
    }

    /// Resident bytes per pool, probed at batch boundaries by the memory
    /// governor: `(dictionary arenas, pending postings, device state)`.
    /// Dictionary and postings figures cover CPU shards *and* adopted
    /// continuations of dead/shed GPUs; the device figure covers live
    /// GPUs' content (a salvaged GPU's state is already counted on the
    /// CPU side). Every term is a deterministic function of the documents
    /// indexed, so budget decisions keyed on these replay identically.
    pub fn resident_bytes(&self) -> (u64, u64, u64) {
        let mut dict = 0u64;
        let mut postings = 0u64;
        for c in &self.cpus {
            dict += c.dict.mem_bytes();
            postings += c.pending_postings_bytes();
        }
        for a in self.adopted_shards() {
            dict += a.dict.mem_bytes();
            postings += a.pending_postings_bytes();
        }
        let device = self
            .gpus
            .iter()
            .enumerate()
            .filter(|(g, _)| self.gpu_alive[*g])
            .map(|(_, gpu)| gpu.resident_bytes())
            .sum();
        (dict, postings, device)
    }

    /// Memory-governor shed: park the alive GPU whose shard holds the
    /// most sampled load (see [`BalancePlan::shed_order`]) onto the CPU
    /// salvage path, freeing its device state. Returns the GPU index and
    /// the reassignments, or `None` when no GPU is left to shed. This is
    /// a *governor* event, not a worker death — the shard continues
    /// loss-lessly on a CPU host, exactly like [`Self::kill_gpu`].
    pub fn shed_gpu(&mut self) -> Option<(usize, Vec<Takeover>)> {
        let g = self.plan.shed_order(&self.gpu_alive).into_iter().next()?;
        let moves = self.kill_gpu(g);
        Some((g, moves))
    }

    /// Rebuild a pool from checkpointed dictionary shards plus the scalar
    /// counters a resumed build must continue from. Each shard is routed to
    /// the indexer whose id it carries (CPU shards are adopted directly,
    /// GPU shards are uploaded back into device memory), so postings-handle
    /// assignment continues exactly where the checkpoint left off.
    pub fn restore(
        plan: BalancePlan,
        gpu_config: GpuIndexerConfig,
        codec: Codec,
        parts: Vec<PartialDictionary>,
        next_doc: u32,
        docs_indexed: u32,
        next_run: u32,
    ) -> Self {
        let mut pool = IndexerPool::new(plan, gpu_config, codec);
        for part in parts {
            let id = part.indexer_id as usize;
            assert!(
                id < pool.cpus.len() + pool.gpus.len(),
                "checkpoint shard for indexer {id} but pool has {} indexers",
                pool.cpus.len() + pool.gpus.len()
            );
            if id < pool.cpus.len() {
                pool.cpus[id] = CpuIndexer::restore(part);
            } else {
                let g = id - pool.cpus.len();
                pool.gpus[g].restore_dictionary(&part);
            }
        }
        pool.next_doc = next_doc;
        pool.docs_indexed = docs_indexed;
        pool.next_run = next_run;
        pool
    }

    /// Documents actually indexed (doc-ID gaps reserved via
    /// [`Self::skip_docs`] are excluded).
    pub fn docs_indexed(&self) -> u32 {
        self.docs_indexed
    }

    /// The next global document-ID offset (indexed + skipped documents) —
    /// the doc-ID high-water mark a checkpoint records.
    pub fn next_doc(&self) -> u32 {
        self.next_doc
    }

    /// Runs flushed so far (the next run id to be assigned).
    pub fn runs_flushed(&self) -> u32 {
        self.next_run
    }

    /// Reserve `n` doc IDs without indexing anything — the slot of a
    /// quarantined file, keeping later files' global IDs identical to a
    /// clean build's.
    pub fn skip_docs(&mut self, n: u32) {
        self.next_doc += n;
    }

    /// Index one parsed batch: routes each trie group to its owner shard
    /// (running wherever that shard is currently hosted) and advances the
    /// global document-ID offset.
    ///
    /// Every shard's work runs under `catch_unwind`: a panic no longer
    /// kills the build — the panicking shard's host executor is declared
    /// dead, its shards are reassigned to survivors, and the batch
    /// continues. The panic and the reassignments are reported in the
    /// returned [`BatchTiming`] (a mid-group panic may have lost that
    /// shard's partial work for this batch — the caller records it as a
    /// lossy incident).
    pub fn index_batch(&mut self, batch: &ParsedBatch) -> BatchTiming {
        let offset = self.next_doc;
        self.next_doc += batch.num_docs;
        self.docs_indexed += batch.num_docs;

        // Route groups.
        let mut cpu_groups: Vec<Vec<&ii_text::TrieGroup>> =
            vec![Vec::new(); self.cpus.len()];
        let mut gpu_groups: Vec<Vec<&ii_text::TrieGroup>> =
            vec![Vec::new(); self.gpus.len()];
        for g in &batch.groups {
            match self.plan.owner(g.trie_index) {
                Owner::Cpu(i) => cpu_groups[i].push(g),
                Owner::Gpu(i) => gpu_groups[i].push(g),
            }
        }

        let batch_id = batch.file_idx as u32;
        let mut timing = BatchTiming {
            cpu_seconds: vec![0.0; self.cpus.len()],
            ..BatchTiming::default()
        };
        for (i, groups) in cpu_groups.iter().enumerate() {
            let t0 = Instant::now();
            let outcome = {
                let shard = &mut self.cpus[i];
                let sink = &self.cpu_sinks[i];
                catch_unwind(AssertUnwindSafe(|| {
                    shard.index_groups(groups, offset, sink, batch_id)
                }))
            };
            let dt = t0.elapsed().as_secs_f64();
            self.attribute(self.cpu_host[i], dt, &mut timing);
            if let Err(payload) = outcome {
                timing.panics.push((i as u32, panic_text(payload.as_ref())));
                if let Host::Cpu(h) = self.cpu_host[i] {
                    timing.takeovers.extend(self.kill_cpu(h));
                }
            }
        }
        for (g, groups) in gpu_groups.iter().enumerate() {
            if self.gpu_alive[g] {
                let outcome = {
                    let gpu = &mut self.gpus[g];
                    let sink = &self.gpu_sinks[g];
                    catch_unwind(AssertUnwindSafe(|| {
                        gpu.index_batch_traced(groups, offset, sink, batch_id)
                    }))
                };
                match outcome {
                    Ok(report) => timing.gpu.push(report),
                    Err(payload) => {
                        // A mid-launch GPU panic leaves unknown device
                        // progress: salvage what the device holds and
                        // degrade the shard to the CPU path (lossy — the
                        // caller flags it).
                        let shard = (self.plan.n_cpu() + g) as u32;
                        timing.panics.push((shard, panic_text(payload.as_ref())));
                        timing.takeovers.extend(self.kill_gpu(g));
                        timing.gpu.push(GpuBatchReport::default());
                    }
                }
            } else {
                let (host, outcome, dt) = {
                    let (shard, host) =
                        self.adopted[g].as_mut().expect("dead GPU has an adopted shard");
                    let sink = &self.gpu_sinks[g];
                    let t0 = Instant::now();
                    let outcome = catch_unwind(AssertUnwindSafe(|| {
                        shard.index_groups(groups, offset, sink, batch_id)
                    }));
                    (*host, outcome, t0.elapsed().as_secs_f64())
                };
                self.attribute(host, dt, &mut timing);
                if let Err(payload) = outcome {
                    let shard = (self.plan.n_cpu() + g) as u32;
                    timing.panics.push((shard, panic_text(payload.as_ref())));
                    if let Host::Cpu(h) = host {
                        timing.takeovers.extend(self.kill_cpu(h));
                    }
                }
                timing.gpu.push(GpuBatchReport::default());
            }
        }
        timing
    }

    /// Credit `dt` seconds of shard work to its host executor.
    fn attribute(&self, host: Host, dt: f64, timing: &mut BatchTiming) {
        match host {
            Host::Cpu(h) => timing.cpu_seconds[h] += dt,
            Host::Driver => timing.fallback_seconds += dt,
        }
    }

    /// End a run: every shard flushes its postings into a run file, in
    /// shard-id order regardless of which executor hosts it (dead GPUs'
    /// shards flush from their adopted CPU continuation) — so the run-file
    /// sequence is identical to a healthy build's.
    pub fn flush_run(&mut self) -> Vec<RunFile> {
        let run_id = self.next_run;
        self.next_run += 1;
        let mut out = Vec::with_capacity(self.cpus.len() + self.gpus.len());
        for (c, sink) in self.cpus.iter_mut().zip(&self.cpu_sinks) {
            let mut span = sink.span(TraceKind::Flush);
            let run = c.flush_run(run_id, self.codec);
            span.add_bytes(run.payload.len() as u64);
            out.push(run);
        }
        let IndexerPool { gpus, gpu_alive, adopted, gpu_sinks, codec, .. } = self;
        for (g, (gpu, sink)) in gpus.iter_mut().zip(gpu_sinks.iter()).enumerate() {
            let mut span = sink.span(TraceKind::Flush);
            let run = if gpu_alive[g] {
                gpu.flush_run(run_id, *codec)
            } else {
                let (shard, _) = adopted[g].as_mut().expect("dead GPU has an adopted shard");
                shard.flush_run(run_id, *codec)
            };
            span.add_bytes(run.payload.len() as u64);
            out.push(run);
        }
        out
    }

    /// Aggregate CPU-side and GPU-side workload (paper Table V). Work a
    /// dead GPU performed before dying stays on the GPU side; its adopted
    /// shard's post-death work counts on the CPU side.
    pub fn workload_split(&self) -> (WorkloadStats, WorkloadStats) {
        let mut cpu = WorkloadStats::default();
        for c in &self.cpus {
            cpu.merge(&c.stats);
        }
        for a in self.adopted_shards() {
            cpu.merge(&a.stats);
        }
        let mut gpu = WorkloadStats::default();
        for g in &self.gpus {
            gpu.merge(&g.stats);
        }
        (cpu, gpu)
    }

    /// Collect every shard's dictionary without consuming the pool (the
    /// checkpoint path). Dead GPUs' shards come from their adopted CPU
    /// continuation.
    pub fn snapshot_shards(&mut self) -> Vec<PartialDictionary> {
        let mut parts: Vec<PartialDictionary> =
            self.cpus.iter().map(|c| c.dict.clone()).collect();
        for (g, gpu) in self.gpus.iter_mut().enumerate() {
            match &self.adopted[g] {
                Some((shard, _)) => parts.push(shard.dict.clone()),
                None => parts.push(gpu.into_partial_dictionary()),
            }
        }
        parts
    }

    /// End of program: collect every indexer's dictionary shard (live GPU
    /// shards are downloaded and reinterpreted; dead GPUs' shards come
    /// from their adopted CPU continuation).
    pub fn finish(mut self) -> Vec<PartialDictionary> {
        self.snapshot_shards()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::balance::{make_plan, sample_counts};
    use ii_corpus::RawDocument;
    use ii_dict::GlobalDictionary;
    use ii_postings::RunSet;
    use ii_text::parse_documents;
    use std::collections::HashMap;

    fn parse(bodies: &[&str], file_idx: usize) -> ParsedBatch {
        let docs: Vec<RawDocument> = bodies
            .iter()
            .map(|b| RawDocument { url: String::new(), body: (*b).into() })
            .collect();
        parse_documents(&docs, false, file_idx)
    }

    fn pool(n_cpu: usize, n_gpu: usize, sample: &ParsedBatch) -> IndexerPool {
        let counts = sample_counts(std::slice::from_ref(sample));
        let plan = make_plan(&counts, n_cpu, n_gpu, 2);
        IndexerPool::new(plan, GpuIndexerConfig::small(), Codec::VarByte)
    }

    #[test]
    fn end_to_end_small_index() {
        let b0 = parse(&["the zebra runs", "zebra quilt zebra"], 0);
        let b1 = parse(&["quilt and zebra again"], 1);
        let mut p = pool(1, 1, &b0);
        p.index_batch(&b0);
        p.index_batch(&b1);
        assert_eq!(p.docs_indexed(), 3);
        let runs = p.flush_run();
        assert_eq!(runs.len(), 2);

        // Build run sets per indexer id.
        let mut sets: HashMap<u32, RunSet> = HashMap::new();
        for r in runs {
            sets.entry(r.indexer_id).or_default().push(r);
        }
        let parts = p.finish();
        let dict = GlobalDictionary::combine(&parts);
        // zebra appears in global docs 0, 1, 2 with tf 1, 2, 1.
        let e = dict.lookup("zebra").expect("zebra indexed");
        let list = sets[&e.indexer].fetch(e.postings);
        let docs_tfs: Vec<(u32, u32)> =
            list.postings().iter().map(|p| (p.doc.0, p.tf)).collect();
        assert_eq!(docs_tfs, vec![(0, 1), (1, 2), (2, 1)]);
    }

    #[test]
    fn cpu_only_and_gpu_only_agree_with_mixed() {
        let batches =
            vec![parse(&["alpha beta gamma beta", "delta alpha"], 0), parse(&["gamma gamma epsilon"], 1)];
        type Fingerprint = Vec<(String, Vec<(u32, u32)>)>;
        let mut results: Vec<Fingerprint> = Vec::new();
        for (n_cpu, n_gpu) in [(2, 0), (0, 1), (1, 2)] {
            let mut p = pool(n_cpu, n_gpu, &batches[0]);
            for b in &batches {
                p.index_batch(b);
            }
            let runs = p.flush_run();
            let mut sets: HashMap<u32, RunSet> = HashMap::new();
            for r in runs {
                sets.entry(r.indexer_id).or_default().push(r);
            }
            let dict = GlobalDictionary::combine(&p.finish());
            let mut terms: Vec<(String, Vec<(u32, u32)>)> = dict
                .entries()
                .iter()
                .map(|e| {
                    let l = sets[&e.indexer].fetch(e.postings);
                    (
                        e.full_term(),
                        l.postings().iter().map(|p| (p.doc.0, p.tf)).collect(),
                    )
                })
                .collect();
            terms.sort();
            results.push(terms);
        }
        assert_eq!(results[0], results[1], "cpu-only vs gpu-only");
        assert_eq!(results[0], results[2], "cpu-only vs mixed");
    }

    #[test]
    fn multi_run_postings_concatenate() {
        let mut p = pool(1, 0, &parse(&["omega"], 0));
        p.index_batch(&parse(&["omega"], 0));
        let r0 = p.flush_run();
        p.index_batch(&parse(&["omega omega"], 1));
        let r1 = p.flush_run();
        let mut set = RunSet::new();
        set.push(r0.into_iter().next().unwrap());
        set.push(r1.into_iter().next().unwrap());
        let dict = GlobalDictionary::combine(&p.finish());
        let e = dict.lookup("omega").unwrap();
        let l = set.fetch(e.postings);
        assert_eq!(l.len(), 2);
        assert_eq!(l.postings()[1].tf, 2);
    }

    /// The checkpoint/restore contract behind `build --resume`: flushing a
    /// run, serializing every shard, restoring a fresh pool from those
    /// bytes, and indexing the remaining batches must produce bit-identical
    /// dictionaries and run files to the uninterrupted pool.
    #[test]
    fn restored_pool_continues_byte_identically() {
        let batches = [
            parse(&["zebra quilt xylophone", "the banana zebra"], 0),
            parse(&["quilt again and again"], 1),
            parse(&["xylophone zebra 954 zebra"], 2),
        ];
        for (n_cpu, n_gpu) in [(2, 0), (0, 1), (1, 1)] {
            // Uninterrupted reference.
            let mut full = pool(n_cpu, n_gpu, &batches[0]);
            full.index_batch(&batches[0]);
            let full_r0 = full.flush_run();
            full.index_batch(&batches[1]);
            full.index_batch(&batches[2]);
            let full_r1 = full.flush_run();

            // Checkpointed: flush, serialize shards, restore, continue.
            let mut first = pool(n_cpu, n_gpu, &batches[0]);
            first.index_batch(&batches[0]);
            let ckpt_r0 = first.flush_run();
            let next_doc = first.next_doc();
            let docs = first.docs_indexed();
            let runs = first.runs_flushed();
            let shard_bytes: Vec<Vec<u8>> = first
                .finish()
                .iter()
                .map(|p| {
                    let mut b = Vec::new();
                    p.write_to(&mut b).unwrap();
                    b
                })
                .collect();
            let parts: Vec<PartialDictionary> = shard_bytes
                .iter()
                .map(|b| PartialDictionary::read_from(&mut b.as_slice()).unwrap())
                .collect();
            let counts = sample_counts(std::slice::from_ref(&batches[0]));
            let plan = make_plan(&counts, n_cpu, n_gpu, 2);
            let mut resumed = IndexerPool::restore(
                plan,
                GpuIndexerConfig::small(),
                Codec::VarByte,
                parts,
                next_doc,
                docs,
                runs,
            );
            resumed.index_batch(&batches[1]);
            resumed.index_batch(&batches[2]);
            let ckpt_r1 = resumed.flush_run();

            let encode =
                |runs: &[RunFile]| -> Vec<Vec<u8>> { runs.iter().map(|r| r.to_bytes()).collect() };
            assert_eq!(encode(&full_r0), encode(&ckpt_r0), "cfg ({n_cpu},{n_gpu}) run 0");
            assert_eq!(encode(&full_r1), encode(&ckpt_r1), "cfg ({n_cpu},{n_gpu}) run 1");
            let dict_bytes = |parts: &[PartialDictionary]| {
                let mut b = Vec::new();
                GlobalDictionary::combine(parts).write_to(&mut b).unwrap();
                b
            };
            assert_eq!(
                dict_bytes(&full.finish()),
                dict_bytes(&resumed.finish()),
                "cfg ({n_cpu},{n_gpu}) dictionary"
            );
        }
    }

    /// The degradation contract behind the supervisor: killing the GPU at
    /// any batch boundary — including mid-run, with pending un-flushed
    /// postings — must leave every later run file and the final dictionary
    /// byte-identical to the healthy build, because the salvage hands the
    /// CPU successor the exact device state.
    #[test]
    fn gpu_killed_mid_run_continues_byte_identically_on_cpu() {
        let batches = [
            parse(&["zebra quilt xylophone", "the banana zebra"], 0),
            parse(&["quilt again and again"], 1),
            parse(&["xylophone zebra 954 zebra"], 2),
            parse(&["banana 954 quilt banana"], 3),
        ];
        let build = |kill_after: Option<usize>| {
            let mut p = pool(1, 1, &batches[0]);
            let mut runs = Vec::new();
            for (i, b) in batches.iter().enumerate() {
                p.index_batch(b);
                if i == 1 {
                    runs.extend(p.flush_run()); // mid-build run boundary
                }
                if Some(i) == kill_after {
                    let moves = p.kill_gpu(0);
                    assert_eq!(moves.len(), 1);
                    assert_eq!(moves[0].shard, 1);
                    assert!(moves[0].gpu_takeover);
                    assert_eq!(moves[0].host, Host::Cpu(0));
                }
            }
            runs.extend(p.flush_run());
            let enc: Vec<Vec<u8>> = runs.iter().map(|r| r.to_bytes()).collect();
            let mut dict = Vec::new();
            GlobalDictionary::combine(&p.finish()).write_to(&mut dict).unwrap();
            (enc, dict)
        };
        let healthy = build(None);
        for kill_after in 0..batches.len() {
            // Kill points 0 and 1 leave pending postings on the device
            // (run 0 flushes after batch 1); 2 and 3 are mid-second-run.
            let degraded = build(Some(kill_after));
            assert_eq!(healthy.0, degraded.0, "runs differ, kill after batch {kill_after}");
            assert_eq!(healthy.1, degraded.1, "dict differs, kill after batch {kill_after}");
        }
    }

    /// CPU shards live in host memory, so rehosting them after an executor
    /// death is state-free: output stays byte-identical and the work is
    /// re-attributed to the surviving host.
    #[test]
    fn cpu_executor_death_rehosts_shard_byte_identically() {
        let batches = [
            parse(&["zebra quilt xylophone", "the banana zebra"], 0),
            parse(&["quilt again and again"], 1),
            parse(&["xylophone zebra 954 zebra"], 2),
        ];
        let build = |kill: bool| {
            let mut p = pool(2, 1, &batches[0]);
            p.index_batch(&batches[0]);
            if kill {
                let moves = p.kill_cpu(0);
                assert_eq!(moves.len(), 1, "only shard 0 was hosted by executor 0");
                assert_eq!(moves[0].shard, 0);
                assert_eq!(moves[0].host, Host::Cpu(1));
                assert!(!moves[0].gpu_takeover);
                assert!(!p.cpu_is_alive(0));
                assert_eq!(p.alive_cpus(), 1);
            }
            let t = p.index_batch(&batches[1]);
            if kill {
                assert_eq!(t.cpu_seconds[0], 0.0, "dead executor does no work");
            }
            p.index_batch(&batches[2]);
            let runs: Vec<Vec<u8>> = p.flush_run().iter().map(|r| r.to_bytes()).collect();
            let mut dict = Vec::new();
            GlobalDictionary::combine(&p.finish()).write_to(&mut dict).unwrap();
            (runs, dict)
        };
        assert_eq!(build(false), build(true));
    }

    /// With every CPU executor dead, shards degrade to the driver thread
    /// (`Host::Driver`) and the build still completes identically.
    #[test]
    fn all_executors_dead_degrades_to_driver_host() {
        let batches =
            [parse(&["zebra quilt xylophone banana"], 0), parse(&["quilt zebra zebra"], 1)];
        let build = |kill: bool| {
            let mut p = pool(1, 1, &batches[0]);
            p.index_batch(&batches[0]);
            if kill {
                let moves = p.kill_cpu(0);
                assert_eq!(moves[0].host, Host::Driver);
                let gpu_moves = p.kill_gpu(0);
                assert_eq!(gpu_moves[0].host, Host::Driver, "no CPU survivor to adopt");
                assert_eq!(p.alive_cpus() + p.alive_gpus(), 0);
            }
            let t = p.index_batch(&batches[1]);
            if kill {
                assert!(t.fallback_seconds > 0.0, "work lands on the driver bucket");
            }
            let runs: Vec<Vec<u8>> = p.flush_run().iter().map(|r| r.to_bytes()).collect();
            let mut dict = Vec::new();
            GlobalDictionary::combine(&p.finish()).write_to(&mut dict).unwrap();
            (runs, dict)
        };
        assert_eq!(build(false).0, build(true).0);
        assert_eq!(build(false).1, build(true).1);
    }

    /// A panic inside a shard's indexing work is contained: the host dies,
    /// survivors absorb its shards, and the pool keeps accepting batches.
    #[test]
    fn shard_panic_is_contained_and_reassigned() {
        let b0 = parse(&["zebra quilt xylophone", "banana zebra"], 0);
        let mut p = pool(2, 0, &b0);
        p.index_batch(&b0);
        // Poison shard 0 so its next insert panics: shrink its term arena
        // is not reachable, so instead kill via the public injection path
        // and verify idempotence + double-death cascade.
        let first = p.kill_cpu(0);
        assert_eq!(first.len(), 1);
        assert!(p.kill_cpu(0).is_empty(), "idempotent");
        // Killing the survivor strands both shards on the driver.
        let second = p.kill_cpu(1);
        assert_eq!(second.len(), 2, "own shard + adopted shard rehost");
        assert!(second.iter().all(|t| t.host == Host::Driver));
        let t = p.index_batch(&parse(&["quilt banana"], 1));
        assert!(t.panics.is_empty());
        assert_eq!(p.flush_run().len(), 2);
    }

    /// The governor's probe: postings bytes fall to zero at a flush, and a
    /// shed moves the device-side footprint onto the CPU ledger while the
    /// output stays byte-identical (covered by the kill_gpu tests above —
    /// shed reuses that path).
    #[test]
    fn resident_accounting_tracks_index_flush_and_shed() {
        let b0 = parse(&["zebra quilt xylophone banana zebra"], 0);
        let b1 = parse(&["banana xylophone quilt"], 1);
        let mut p = pool(1, 1, &b0);
        let (d0, po0, dev0) = p.resident_bytes();
        assert!(d0 > 0, "even an empty shard carries its fixed trie-roots table");
        assert_eq!((po0, dev0), (0, 0), "no pending postings or device content yet");
        p.index_batch(&b0);
        let (d1, po1, dev1) = p.resident_bytes();
        assert!(d1 > d0, "dictionary arenas grew");
        assert!(po1 > 0, "popular terms pend on the CPU side");
        assert!(dev1 > 0, "unpopular terms pend on the device");
        p.flush_run();
        let (d2, po2, dev2) = p.resident_bytes();
        assert_eq!(po2, 0, "flush drains pending CPU postings");
        assert_eq!(d2, d1, "flushing postings never shrinks the dictionary");
        // The device keeps its dictionary arenas and per-term table across
        // runs; only the postings log drains, so the figure never grows.
        assert!(dev2 <= dev1, "flush never grows device residency");
        // Shed: device footprint moves onto the CPU ledger.
        p.index_batch(&b1);
        let (shed_gpu, moves) = p.shed_gpu().expect("one GPU to shed");
        assert_eq!(shed_gpu, 0);
        assert!(moves[0].gpu_takeover);
        let (d3, _, dev3) = p.resident_bytes();
        assert_eq!(dev3, 0, "no live GPU, no device bytes");
        assert!(d3 >= d2, "adopted shard's dictionary now counts on the CPU side");
        assert!(p.shed_gpu().is_none(), "nothing left to shed");
        // The pool still finishes.
        p.index_batch(&parse(&["quilt zebra"], 2));
        assert_eq!(p.flush_run().len(), 2);
    }

    #[test]
    fn workload_split_partitions_tokens() {
        let b = parse(&["the cat and the dog chased the big cats dogs zebra"], 0);
        let mut p = pool(1, 1, &b);
        p.index_batch(&b);
        let (cpu, gpu) = p.workload_split();
        let total = cpu.tokens + gpu.tokens;
        assert_eq!(total, b.stats.terms_kept);
        assert!(cpu.tokens > 0, "popular collections must hit the CPU");
    }
}
