//! The CPU indexer (paper §III.D.1).
//!
//! A single CPU thread owning a set of popular trie collections: for every
//! incoming `<term, doc>` tuple it inserts the term into the collection's
//! B-tree (string caches included) and appends to the term's postings list.
//! Zipf-head collections are CPU-friendly because the B-tree paths to the
//! few dominant terms stay hot in cache.

use crate::stats::WorkloadStats;
use ii_dict::PartialDictionary;
use ii_obs::{TraceKind, TraceSink};
use ii_postings::{Codec, PostingsList, RunFile};
use ii_text::TrieGroup;

/// One CPU indexing thread's state.
#[derive(Clone, Debug)]
pub struct CpuIndexer {
    /// Indexer identity (also stamped on run files and dictionary shard).
    pub id: u32,
    /// This indexer's exclusive dictionary shard.
    pub dict: PartialDictionary,
    /// In-memory postings lists, indexed by postings handle.
    lists: Vec<PostingsList>,
    /// Lifetime workload counters.
    pub stats: WorkloadStats,
}

impl CpuIndexer {
    /// New indexer with an empty shard.
    pub fn new(id: u32) -> Self {
        CpuIndexer {
            id,
            dict: PartialDictionary::new(id),
            lists: Vec::new(),
            stats: WorkloadStats::default(),
        }
    }

    /// Rebuild an indexer from a checkpointed dictionary shard. Postings
    /// lists restart empty — checkpoints are taken at run boundaries, where
    /// pending lists have just been flushed — sized so every restored
    /// handle stays addressable and the next new term allocates the same
    /// handle an uninterrupted build would. Workload counters restart from
    /// zero (they describe work actually performed by this process).
    pub fn restore(dict: PartialDictionary) -> Self {
        let mut lists = Vec::new();
        lists.resize_with(dict.term_count() as usize, PostingsList::new);
        CpuIndexer { id: dict.indexer_id, dict, lists, stats: WorkloadStats::default() }
    }

    /// Take over a dead worker's shard mid-run: adopt its dictionary
    /// *and* its pending (un-flushed) postings lists, so indexing continues
    /// exactly where the dead worker stopped. Unlike [`Self::restore`]
    /// (which assumes a run-boundary checkpoint with empty lists), this is
    /// the mid-run takeover path — the GPU salvage drain hands over lists
    /// in the same doc order the CPU path maintains, so the continued
    /// build's run files stay byte-identical. Lists are padded so every
    /// dictionary handle is addressable.
    pub fn adopt(dict: PartialDictionary, mut lists: Vec<PostingsList>) -> Self {
        if lists.len() < dict.term_count() as usize {
            lists.resize_with(dict.term_count() as usize, PostingsList::new);
        }
        CpuIndexer { id: dict.indexer_id, dict, lists, stats: WorkloadStats::default() }
    }

    /// Index one parsed trie group. `doc_offset` is the global document-ID
    /// offset of the batch (the parser assigned local IDs from 0).
    pub fn index_group(&mut self, group: &TrieGroup, doc_offset: u32) {
        for (local_doc, term) in group.iter_terms() {
            let doc = local_doc.with_offset(doc_offset);
            let out = self.dict.insert_term(group.trie_index, term);
            self.stats.tokens += 1;
            self.stats.chars += term.len() as u64;
            if out.is_new {
                self.stats.terms += 1;
            }
            let slot = out.postings as usize;
            if slot >= self.lists.len() {
                self.lists.resize_with(slot + 1, PostingsList::new);
            }
            self.lists[slot].add_occurrence(doc);
        }
    }

    /// Index a batch's routed group slice under one `index` trace span on
    /// this worker's timeline (`sink` disabled → identical to looping
    /// [`Self::index_group`]). The span carries the batch id, the trie-slot
    /// range touched, and the term payload bytes.
    pub fn index_groups(
        &mut self,
        groups: &[&TrieGroup],
        doc_offset: u32,
        sink: &TraceSink,
        batch_id: u32,
    ) {
        let mut span = sink.span(TraceKind::Index);
        span.set_batch(batch_id);
        if let (Some(lo), Some(hi)) = (
            groups.iter().map(|g| g.trie_index).min(),
            groups.iter().map(|g| g.trie_index).max(),
        ) {
            span.set_tries(lo, hi);
        }
        span.add_bytes(groups.iter().map(|g| g.term_bytes.len() as u64).sum());
        for g in groups {
            self.index_group(g, doc_offset);
        }
    }

    /// Number of in-memory postings accumulated since the last flush.
    pub fn pending_postings(&self) -> usize {
        self.lists.iter().map(|l| l.len()).sum()
    }

    /// Resident bytes of the pending (un-flushed) postings lists
    /// (memory-governor accounting). Deterministic: a function of the
    /// documents indexed since the last flush, never of allocator state.
    pub fn pending_postings_bytes(&self) -> u64 {
        self.lists.iter().map(|l| l.mem_bytes()).sum()
    }

    /// End-of-run flush: encode all non-empty lists into a run file and
    /// clear them (handles remain valid; later runs append new partial
    /// lists under the same handles).
    pub fn flush_run(&mut self, run_id: u32, codec: Codec) -> RunFile {
        let mut it = self
            .lists
            .iter()
            .enumerate()
            .map(|(h, l)| (h as u32, l));
        let run = RunFile::build(run_id, self.id, &mut it, codec);
        for l in &mut self.lists {
            l.take();
        }
        run
    }

    /// Direct read access to a pending postings list (tests).
    pub fn pending_list(&self, handle: u32) -> Option<&PostingsList> {
        self.lists.get(handle as usize)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ii_corpus::DocId;
    use ii_text::parse_documents;

    fn parse(bodies: &[&str]) -> ii_text::ParsedBatch {
        let docs: Vec<ii_corpus::RawDocument> = bodies
            .iter()
            .map(|b| ii_corpus::RawDocument { url: String::new(), body: (*b).into() })
            .collect();
        parse_documents(&docs, false, 0)
    }

    #[test]
    fn indexes_groups_and_builds_postings() {
        let batch = parse(&["zebra zebra quilt", "zebra"]);
        let mut idx = CpuIndexer::new(0);
        for g in &batch.groups {
            idx.index_group(g, 0);
        }
        assert_eq!(idx.stats.tokens, 4);
        assert_eq!(idx.stats.terms, 2);
        // zebra appears in docs 0 (tf 2) and 1 (tf 1).
        let h = idx.dict.lookup(ii_dict::trie_index("zebra").0, b"ra").unwrap();
        let l = idx.pending_list(h).unwrap();
        assert_eq!(l.len(), 2);
        assert_eq!(l.postings()[0].tf, 2);
        assert_eq!(l.postings()[1].doc, DocId(1));
    }

    #[test]
    fn doc_offset_applied() {
        let batch = parse(&["quilt"]);
        let mut idx = CpuIndexer::new(0);
        for g in &batch.groups {
            idx.index_group(g, 500);
        }
        let h = idx.dict.lookup(ii_dict::trie_index("quilt").0, b"lt").unwrap();
        assert_eq!(idx.pending_list(h).unwrap().postings()[0].doc, DocId(500));
    }

    #[test]
    fn flush_run_drains_and_handles_persist() {
        let mut idx = CpuIndexer::new(2);
        let b1 = parse(&["zebra"]);
        for g in &b1.groups {
            idx.index_group(g, 0);
        }
        let run0 = idx.flush_run(0, Codec::VarByte);
        assert_eq!(run0.indexer_id, 2);
        assert_eq!(run0.entries.len(), 1);
        assert_eq!(idx.pending_postings(), 0);

        // Same term again in a later batch: same handle, new run.
        let b2 = parse(&["zebra zebra"]);
        for g in &b2.groups {
            idx.index_group(g, 10);
        }
        let run1 = idx.flush_run(1, Codec::VarByte);
        assert_eq!(run1.entries.len(), 1);
        assert_eq!(run0.entries[0].handle, run1.entries[0].handle);
        assert_eq!(run1.entries[0].doc_min, 10);
        // Stats count both batches.
        assert_eq!(idx.stats.tokens, 3);
        assert_eq!(idx.stats.terms, 1);
    }

    #[test]
    fn multiple_collections_one_indexer() {
        let batch = parse(&["zebra quilt xylophone banana"]);
        let mut idx = CpuIndexer::new(0);
        for g in &batch.groups {
            idx.index_group(g, 0);
        }
        assert!(idx.dict.trie_indices().count() >= 3);
        assert_eq!(idx.stats.terms, 4);
    }
}
