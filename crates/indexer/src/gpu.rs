//! The GPU indexer (paper §III.D.2), written against `ii-gpusim`.
//!
//! One warp (32-thread block) builds the B-tree and postings of one trie
//! collection:
//!
//! * term strings live in device memory in the Fig 6 length-prefixed
//!   layout and are staged into shared memory in coalesced 512 B chunks;
//! * each B-tree node visited is moved device→shared with one coalesced
//!   512 B load;
//! * a probe term is compared against all 31 node keys in parallel
//!   (lane *i* handles slot *i*) and the insert position / match slot is
//!   found with a single packed parallel reduction (Fig 7, [11]);
//! * inserts shift the tail slots with warp-parallel reads/writes, splits
//!   build the new sibling in shared memory and store both halves back
//!   with coalesced writes;
//! * postings are aggregated on-device in a per-handle current-posting
//!   table; completed postings are appended to a device log that the host
//!   drains at the end of each run.
//!
//! Node bytes in device memory use the *identical* 512-byte layout as the
//! CPU dictionary (`ii_dict::node`), so at end of program the device arenas
//! are downloaded and reinterpreted directly as a `PartialDictionary`.

use crate::stats::WorkloadStats;
use ii_corpus::DocId;
use ii_dict::node::{
    BTreeNode, MAX_KEYS, NODE_BYTES, NULL, OFF_CACHE, OFF_CHILDREN, OFF_COUNT, OFF_LEAF,
    OFF_POSTINGS, OFF_TERM_PTR,
};
use ii_dict::{arena, BTree, BTreeStore, PartialDictionary, TRIE_ENTRIES};
use ii_gpusim::{launch_dynamic, BlockCtx, DevPtr, DeviceMemory, GpuConfig, LaunchReport};
use ii_obs::{GpuSpanArgs, TraceKind, TraceSink};
use ii_postings::{Codec, Posting, PostingsList, RunFile};
use ii_text::TrieGroup;
use std::collections::HashMap;

/// Shared-memory layout of the kernel (well inside the 16 KB budget).
const SH_CHUNK: usize = 0; // 512 B staging for term strings
const SH_NODE: usize = 512; // current node
const SH_NODE2: usize = 1024; // child being split
const SH_NODE3: usize = 1536; // right sibling under construction
/// Staging chunk size (one coalesced transfer of 8 segments).
const CHUNK: usize = 512;
/// "Empty" marker in the current-posting table.
const EMPTY_DOC: u32 = u32::MAX;

/// Sizing and architecture of one simulated GPU indexer.
#[derive(Clone, Copy, Debug)]
pub struct GpuIndexerConfig {
    /// Architectural parameters (Tesla C1060 by default).
    pub gpu: GpuConfig,
    /// Thread blocks pulling trie collections (paper found 480 optimal).
    pub num_blocks: usize,
    /// Capacity of the device postings table (distinct terms).
    pub max_terms: usize,
    /// Device node-arena capacity (nodes).
    pub node_capacity: usize,
    /// Device string-arena capacity (bytes).
    pub string_capacity: usize,
    /// Device postings-log capacity (records).
    pub log_capacity: usize,
    /// Device input-staging capacity per batch (bytes).
    pub input_capacity: usize,
}

impl Default for GpuIndexerConfig {
    fn default() -> Self {
        GpuIndexerConfig {
            gpu: GpuConfig::default(),
            num_blocks: 480,
            max_terms: 400_000,
            node_capacity: 80_000,
            string_capacity: 8 << 20,
            log_capacity: 3 << 20,
            input_capacity: 48 << 20,
        }
    }
}

impl GpuIndexerConfig {
    /// A small configuration for unit tests and laptop-scale examples
    /// (handles batches up to a few hundred thousand tokens).
    pub fn small() -> Self {
        GpuIndexerConfig {
            gpu: GpuConfig { device_mem_bytes: 160 << 20, ..GpuConfig::default() },
            num_blocks: 64,
            max_terms: 300_000,
            node_capacity: 30_000,
            string_capacity: 4 << 20,
            log_capacity: 1 << 20,
            input_capacity: 48 << 20,
        }
    }
}

/// Timing of one indexed batch.
#[derive(Clone, Copy, Debug, Default)]
pub struct GpuBatchReport {
    /// Simulated device seconds for the kernel grid.
    pub device_seconds: f64,
    /// Simulated PCIe seconds for the input upload (pre-processing).
    pub transfer_seconds: f64,
    /// SM load-balance quality of the grid (1.0 = perfect).
    pub utilization: f64,
}

/// One simulated GPU running the indexing kernel.
pub struct GpuIndexer {
    /// Indexer identity (stamped on run files / dictionary shard).
    pub id: u32,
    /// Sizing used.
    pub config: GpuIndexerConfig,
    mem: DeviceMemory,
    // Device pointers.
    roots: DevPtr,      // TRIE_ENTRIES root cells
    ctr_nodes: DevPtr,
    ctr_strings: DevPtr,
    ctr_terms: DevPtr,
    ctr_log: DevPtr,
    node_area: DevPtr,
    string_area: DevPtr,
    table: DevPtr,
    log_area: DevPtr,
    input_area: DevPtr,
    input_top: usize,
    /// Trie collections this GPU has seen (for dictionary download).
    seen: std::collections::BTreeSet<u32>,
    /// Lifetime workload counters.
    pub stats: WorkloadStats,
    /// Accumulated simulated device time.
    pub device_seconds_total: f64,
    /// Accumulated simulated transfer time.
    pub transfer_seconds_total: f64,
    /// Merged kernel metrics across batches.
    pub kernel_metrics: ii_gpusim::Metrics,
}

/// One grid work item: a trie collection's parsed stream for this batch.
struct WorkItem {
    trie_index: u32,
    bytes_ptr: DevPtr,
    bytes_len: u32,
    spans_ptr: DevPtr,
    n_spans: u32,
    doc_offset: u32,
}

impl GpuIndexer {
    /// Allocate device regions and initialize counters.
    pub fn new(id: u32, config: GpuIndexerConfig) -> Self {
        let mut mem = DeviceMemory::new(config.gpu.device_mem_bytes);
        let roots = mem.alloc(TRIE_ENTRIES * 4, 64);
        let ctr_nodes = mem.alloc(4, 4);
        let ctr_strings = mem.alloc(4, 4);
        let ctr_terms = mem.alloc(4, 4);
        let ctr_log = mem.alloc(4, 4);
        let node_area = mem.alloc(config.node_capacity * NODE_BYTES, 64);
        let string_area = mem.alloc(config.string_capacity, 64);
        let table = mem.alloc(config.max_terms * 8, 64);
        let log_area = mem.alloc(config.log_capacity * 12, 64);
        let input_area = mem.alloc(config.input_capacity, 64);
        let mut gpu = GpuIndexer {
            id,
            config,
            mem,
            roots,
            ctr_nodes,
            ctr_strings,
            ctr_terms,
            ctr_log,
            node_area,
            string_area,
            table,
            log_area,
            input_area,
            input_top: 0,
            seen: Default::default(),
            stats: WorkloadStats::default(),
            device_seconds_total: 0.0,
            transfer_seconds_total: 0.0,
            kernel_metrics: ii_gpusim::Metrics::default(),
        };
        gpu.reset_roots_and_table();
        gpu
    }

    /// One-time (and per-flush) device-side initialization, the moral
    /// equivalent of cudaMemset (not counted as PCIe traffic).
    fn reset_roots_and_table(&mut self) {
        let roots_bytes = vec![0xFFu8; TRIE_ENTRIES * 4];
        let o = self.roots.0 as usize;
        // Direct memset-style init.
        self.memset(o, &roots_bytes);
        let table_bytes = vec![0xFFu8; self.config.max_terms * 8];
        let t = self.table.0 as usize;
        self.memset(t, &table_bytes);
        for ctr in [self.ctr_nodes, self.ctr_strings, self.ctr_terms, self.ctr_log] {
            let c = ctr.0 as usize;
            self.memset(c, &[0, 0, 0, 0]);
        }
    }

    fn memset(&mut self, at: usize, bytes: &[u8]) {
        // DeviceMemory has no uncounted write; emulate cudaMemset by a
        // host_write and then subtracting it from the transfer tally.
        let before = self.mem.transfers.h2d_bytes;
        self.mem.host_write(DevPtr(at as u32), bytes);
        self.mem.transfers.h2d_bytes = before;
    }

    /// Pre-processing: upload this batch's groups; indexing: launch the
    /// grid over them. Returns the batch timing. `groups` must all be owned
    /// by this GPU per the balance plan.
    pub fn index_batch(&mut self, groups: &[&TrieGroup], doc_offset: u32) -> GpuBatchReport {
        self.input_top = 0;
        let mut items = Vec::with_capacity(groups.len());
        let mut uploaded = 0u64;
        for g in groups {
            // Term bytes.
            let bytes_ptr = self.input_alloc(g.term_bytes.len());
            self.mem.host_write(bytes_ptr, &g.term_bytes);
            // Span records: doc, byte_start, byte_len, n_terms (16 B each).
            let mut spans = Vec::with_capacity(g.docs.len() * 16);
            for s in &g.docs {
                spans.extend_from_slice(&s.doc.0.to_le_bytes());
                spans.extend_from_slice(&s.byte_start.to_le_bytes());
                spans.extend_from_slice(&s.byte_len.to_le_bytes());
                spans.extend_from_slice(&s.n_terms.to_le_bytes());
            }
            let spans_ptr = self.input_alloc(spans.len());
            self.mem.host_write(spans_ptr, &spans);
            uploaded += (g.term_bytes.len() + spans.len()) as u64;
            self.seen.insert(g.trie_index);
            self.stats.tokens += g.total_terms();
            self.stats.chars += g
                .iter_terms()
                .map(|(_, t)| t.len() as u64)
                .sum::<u64>();
            items.push(WorkItem {
                trie_index: g.trie_index,
                bytes_ptr,
                bytes_len: g.term_bytes.len() as u32,
                spans_ptr,
                n_spans: g.docs.len() as u32,
                doc_offset,
            });
        }
        let terms_before = self.term_count();
        let cfg = self.config;
        let roots = self.roots;
        let report: LaunchReport = {
            let mem = &mut self.mem;
            let ctrs = KernelPtrs {
                roots,
                ctr_nodes: self.ctr_nodes,
                ctr_strings: self.ctr_strings,
                ctr_terms: self.ctr_terms,
                ctr_log: self.ctr_log,
                node_area: self.node_area,
                string_area: self.string_area,
                table: self.table,
                log_area: self.log_area,
                max_terms: cfg.max_terms as u32,
                node_capacity: cfg.node_capacity as u32,
                log_capacity: cfg.log_capacity as u32,
                string_capacity: cfg.string_capacity as u32,
            };
            launch_dynamic(&cfg.gpu, mem, cfg.num_blocks, &items, |ctx, mem, item| {
                kernel(ctx, mem, &ctrs, item);
            })
        };
        self.stats.terms += (self.term_count() - terms_before) as u64;
        let transfer_seconds = cfg.gpu.transfer_seconds(uploaded);
        self.device_seconds_total += report.device_seconds;
        self.transfer_seconds_total += transfer_seconds;
        self.kernel_metrics.merge(&report.metrics);
        GpuBatchReport {
            device_seconds: report.device_seconds,
            transfer_seconds,
            utilization: report.utilization(),
        }
    }

    /// [`Self::index_batch`] under an `index` trace span on this worker's
    /// timeline, with the span's kernel-counter deltas attached (`sink`
    /// disabled → identical to the untraced call).
    pub fn index_batch_traced(
        &mut self,
        groups: &[&TrieGroup],
        doc_offset: u32,
        sink: &TraceSink,
        batch_id: u32,
    ) -> GpuBatchReport {
        let metrics_before = self.kernel_metrics;
        let mut span = sink.span(TraceKind::Index);
        span.set_batch(batch_id);
        if let (Some(lo), Some(hi)) = (
            groups.iter().map(|g| g.trie_index).min(),
            groups.iter().map(|g| g.trie_index).max(),
        ) {
            span.set_tries(lo, hi);
        }
        span.add_bytes(groups.iter().map(|g| g.term_bytes.len() as u64).sum());
        let report = self.index_batch(groups, doc_offset);
        let d = self.kernel_metrics.delta(&metrics_before);
        span.set_gpu(GpuSpanArgs {
            device_ns: (report.device_seconds * 1e9) as u64,
            transfer_ns: (report.transfer_seconds * 1e9) as u64,
            warp_comparisons: d.warp_comparisons,
            global_transactions: d.global_transactions,
            global_bytes: d.global_bytes,
            instructions: d.instructions,
        });
        report
    }

    fn input_alloc(&mut self, len: usize) -> DevPtr {
        let aligned = (self.input_top + 63) & !63;
        assert!(
            aligned + len <= self.config.input_capacity,
            "GPU input staging exhausted ({} + {} > {})",
            aligned,
            len,
            self.config.input_capacity
        );
        self.input_top = aligned + len;
        DevPtr(self.input_area.0 + aligned as u32)
    }

    fn read_ctr(&self, ptr: DevPtr) -> u32 {
        u32::from_le_bytes(self.mem.debug_read(ptr, 4).try_into().unwrap())
    }

    /// Distinct terms inserted so far on this GPU.
    pub fn term_count(&self) -> u32 {
        self.read_ctr(self.ctr_terms)
    }

    /// Nodes allocated so far on this GPU.
    pub fn node_count(&self) -> u32 {
        self.read_ctr(self.ctr_nodes)
    }

    /// Post-processing: drain the device postings log + current-posting
    /// table into a run file, clearing device postings state (dictionary
    /// B-trees stay resident across runs).
    pub fn flush_run(&mut self, run_id: u32, codec: Codec) -> RunFile {
        let n_log = self.read_ctr(self.ctr_log) as usize;
        let log_bytes = self.mem.host_read(self.log_area, n_log * 12);
        let n_terms = self.term_count() as usize;
        let table_bytes = self.mem.host_read(self.table, n_terms * 8);
        let mut lists: Vec<PostingsList> = vec![PostingsList::new(); n_terms];
        for rec in log_bytes.chunks_exact(12) {
            let handle = u32::from_le_bytes(rec[0..4].try_into().unwrap()) as usize;
            let doc = u32::from_le_bytes(rec[4..8].try_into().unwrap());
            let tf = u32::from_le_bytes(rec[8..12].try_into().unwrap());
            lists[handle].push(Posting { doc: DocId(doc), tf });
        }
        for (handle, rec) in table_bytes.chunks_exact(8).enumerate() {
            let doc = u32::from_le_bytes(rec[0..4].try_into().unwrap());
            if doc != EMPTY_DOC {
                let tf = u32::from_le_bytes(rec[4..8].try_into().unwrap());
                lists[handle].push(Posting { doc: DocId(doc), tf });
            }
        }
        // Clear postings state for the next run.
        let t = self.table.0 as usize;
        let clear = vec![0xFFu8; n_terms * 8];
        self.memset(t, &clear);
        self.memset(self.ctr_log.0 as usize, &[0, 0, 0, 0]);
        let mut it = lists.iter().enumerate().map(|(h, l)| (h as u32, l));
        RunFile::build(run_id, self.id, &mut it, codec)
    }

    /// Failure-domain salvage: read the device postings log +
    /// current-posting table into per-handle host lists *without* clearing
    /// any device state — the same reconstruction [`Self::flush_run`]
    /// performs, minus the drain. Used when this GPU is declared dead
    /// mid-run: together with [`Self::into_partial_dictionary`] it gives a
    /// CPU successor the exact pending state (lists end up in the same
    /// doc order the CPU path would have appended), so a takeover at a
    /// batch boundary continues byte-identically.
    pub fn salvage_pending_lists(&mut self) -> Vec<PostingsList> {
        let n_log = self.read_ctr(self.ctr_log) as usize;
        let log_bytes = self.mem.host_read(self.log_area, n_log * 12);
        let n_terms = self.term_count() as usize;
        let table_bytes = self.mem.host_read(self.table, n_terms * 8);
        let mut lists: Vec<PostingsList> = vec![PostingsList::new(); n_terms];
        for rec in log_bytes.chunks_exact(12) {
            let handle = u32::from_le_bytes(rec[0..4].try_into().unwrap()) as usize;
            let doc = u32::from_le_bytes(rec[4..8].try_into().unwrap());
            let tf = u32::from_le_bytes(rec[8..12].try_into().unwrap());
            lists[handle].push(Posting { doc: DocId(doc), tf });
        }
        for (handle, rec) in table_bytes.chunks_exact(8).enumerate() {
            let doc = u32::from_le_bytes(rec[0..4].try_into().unwrap());
            if doc != EMPTY_DOC {
                let tf = u32::from_le_bytes(rec[4..8].try_into().unwrap());
                lists[handle].push(Posting { doc: DocId(doc), tf });
            }
        }
        lists
    }

    /// End of program: download the device arenas and reinterpret them as
    /// a host dictionary shard (identical layouts).
    pub fn into_partial_dictionary(&mut self) -> PartialDictionary {
        let n_nodes = self.node_count() as usize;
        let node_bytes = self.mem.host_read(self.node_area, n_nodes * NODE_BYTES);
        let nodes: Vec<BTreeNode> = node_bytes
            .chunks_exact(NODE_BYTES)
            .map(|c| BTreeNode::from_bytes(c.try_into().unwrap()))
            .collect();
        let n_str = self.read_ctr(self.ctr_strings) as usize;
        let string_bytes = self.mem.host_read(self.string_area, n_str);
        let store = BTreeStore::from_parts(
            arena::NodeArena::from_nodes(nodes),
            arena::StringArena::from_bytes(string_bytes),
            self.term_count(),
        );
        let mut roots = HashMap::new();
        for &ti in &self.seen {
            let cell = DevPtr(self.roots.0 + ti * 4);
            let root =
                u32::from_le_bytes(self.mem.debug_read(cell, 4).try_into().unwrap());
            if root != NULL {
                roots.insert(ti, BTree { root });
            }
        }
        PartialDictionary::from_parts(self.id, store, roots)
    }

    /// Resume support: upload a checkpointed dictionary shard back into
    /// device memory. The inverse of [`Self::into_partial_dictionary`] —
    /// node and string arenas, allocation counters, and per-collection
    /// root cells are restored byte-for-byte, so later inserts allocate
    /// node indices and postings handles exactly as the uninterrupted
    /// build would have. State is uploaded through the memset path (not
    /// counted as PCIe traffic) like the initial device initialization;
    /// the kernel is *not* replayed, because dynamic block scheduling
    /// could discover terms in a different order and reassign handles.
    pub fn restore_dictionary(&mut self, part: &PartialDictionary) {
        let nodes = part.store.to_legacy_nodes();
        assert!(
            nodes.len() <= self.config.node_capacity,
            "checkpoint has {} nodes, device capacity {}",
            nodes.len(),
            self.config.node_capacity
        );
        let strings = part.store.strings.as_bytes().to_vec();
        assert!(
            strings.len() <= self.config.string_capacity
                && part.term_count() as usize <= self.config.max_terms,
            "checkpoint exceeds device arena capacity"
        );
        let mut node_bytes = Vec::with_capacity(nodes.len() * NODE_BYTES);
        for n in &nodes {
            node_bytes.extend_from_slice(&n.to_bytes());
        }
        if !node_bytes.is_empty() {
            let at = self.node_area.0 as usize;
            self.memset(at, &node_bytes);
        }
        if !strings.is_empty() {
            let at = self.string_area.0 as usize;
            self.memset(at, &strings);
        }
        self.memset(self.ctr_nodes.0 as usize, &(nodes.len() as u32).to_le_bytes());
        self.memset(self.ctr_strings.0 as usize, &(strings.len() as u32).to_le_bytes());
        self.memset(self.ctr_terms.0 as usize, &part.term_count().to_le_bytes());
        let tis: Vec<u32> = part.trie_indices().collect();
        for ti in tis {
            let tree = part.tree(ti).expect("listed index has a tree");
            let cell = (self.roots.0 + ti * 4) as usize;
            self.memset(cell, &tree.root.to_le_bytes());
            self.seen.insert(ti);
        }
    }

    /// PCIe + metrics tallies of the device (testing/reporting).
    pub fn transfer_metrics(&self) -> ii_gpusim::Metrics {
        self.mem.transfers
    }

    /// Live device-state bytes: nodes, string remainders, the
    /// current-posting table, the postings log, and the current batch's
    /// input staging. Counts *content*, not the reserved arenas, so the
    /// figure is a deterministic function of the documents indexed — the
    /// memory governor's per-device accounting. (Arena capacity is
    /// [`DeviceMemory::used`]; its high-water mark is
    /// [`DeviceMemory::high_water`].)
    pub fn resident_bytes(&self) -> u64 {
        self.node_count() as u64 * NODE_BYTES as u64
            + self.read_ctr(self.ctr_strings) as u64
            + self.term_count() as u64 * 8
            + self.read_ctr(self.ctr_log) as u64 * 12
            + self.input_top as u64
    }
}

/// Device pointers threaded through the kernel (the CUDA kernel's
/// constant-memory arguments).
#[derive(Clone, Copy)]
struct KernelPtrs {
    roots: DevPtr,
    ctr_nodes: DevPtr,
    ctr_strings: DevPtr,
    ctr_terms: DevPtr,
    ctr_log: DevPtr,
    node_area: DevPtr,
    string_area: DevPtr,
    table: DevPtr,
    log_area: DevPtr,
    max_terms: u32,
    node_capacity: u32,
    log_capacity: u32,
    string_capacity: u32,
}

// ---- kernel ------------------------------------------------------------

fn node_ptr(k: &KernelPtrs, idx: u32) -> DevPtr {
    DevPtr(k.node_area.0 + idx * NODE_BYTES as u32)
}

/// Allocate a device node index by bumping the global counter (atomicAdd).
fn alloc_node(ctx: &mut BlockCtx, mem: &mut DeviceMemory, k: &KernelPtrs) -> u32 {
    let idx = ctx.global_read_u32(mem, k.ctr_nodes);
    assert!(idx < k.node_capacity, "GPU node arena exhausted");
    ctx.global_write_u32(mem, k.ctr_nodes, idx + 1);
    idx
}

/// Write an empty leaf into the device node `idx` by building it in shared
/// scratch and storing it coalesced.
fn write_empty_leaf(ctx: &mut BlockCtx, mem: &mut DeviceMemory, k: &KernelPtrs, idx: u32) {
    let empty = BTreeNode::default().to_bytes();
    ctx.shared_mut()[SH_NODE3..SH_NODE3 + NODE_BYTES].copy_from_slice(&empty);
    ctx.instr(4); // parallel zero-fill of the shared image
    ctx.stg(mem, SH_NODE3, node_ptr(k, idx), NODE_BYTES);
}

/// Scalar helpers over a shared-memory node image. Reads are metered as
/// single shared accesses by the callers that use them for control flow.
fn sh_u32(ctx: &BlockCtx, base: usize, off: usize) -> u32 {
    let o = base + off;
    u32::from_le_bytes(ctx.shared()[o..o + 4].try_into().unwrap())
}

fn sh_set_u32(ctx: &mut BlockCtx, base: usize, off: usize, v: u32) {
    let o = base + off;
    ctx.shared_mut()[o..o + 4].copy_from_slice(&v.to_le_bytes());
}

/// Load node `idx` into the shared image at `base` (one coalesced 512 B
/// transfer — the paper's "move the next B-tree node ... into the shared
/// memory using coalesced memory access").
fn load_node(ctx: &mut BlockCtx, mem: &DeviceMemory, k: &KernelPtrs, idx: u32, base: usize) {
    ctx.gts(mem, node_ptr(k, idx), base, NODE_BYTES);
}

fn store_node(ctx: &mut BlockCtx, mem: &mut DeviceMemory, k: &KernelPtrs, idx: u32, base: usize) {
    ctx.stg(mem, base, node_ptr(k, idx), NODE_BYTES);
}

/// Result of the warp-parallel node probe.
enum Probe {
    Found(usize),
    NotHere(usize),
}

/// Fig 7: all lanes compare the probe term against their key slot, then a
/// single packed parallel reduction yields (match slot, #keys < probe).
fn node_probe(
    ctx: &mut BlockCtx,
    mem: &DeviceMemory,
    k: &KernelPtrs,
    base: usize,
    term: &[u8],
) -> Probe {
    let count = sh_u32(ctx, base, OFF_COUNT) as usize;
    ctx.instr(1);
    let probe_cache = BTreeNode::make_cache(term);
    let probe_word = u32::from_le_bytes(probe_cache);
    // Warp gather of the 31 caches (stride-1 words: conflict-free).
    let cache_offs: [u32; 32] =
        std::array::from_fn(|i| (base + OFF_CACHE + 4 * i.min(MAX_KEYS - 1)) as u32);
    let caches = ctx.shared_read_vec_u32(cache_offs);
    // Per-lane three-way compare on the big-endian view of the 4 bytes
    // (byte-lexicographic order == integer order after byte swap).
    let probe_be = probe_word.swap_bytes();
    let mut lane_cmp = [0i32; 32]; // -1 key<probe, 0 eq, 1 key>probe
    for lane in 0..MAX_KEYS {
        if lane >= count {
            lane_cmp[lane] = 1; // virtual +inf keys
            continue;
        }
        let key_be = caches[lane].swap_bytes();
        lane_cmp[lane] = match key_be.cmp(&probe_be) {
            std::cmp::Ordering::Less => -1,
            std::cmp::Ordering::Equal => 0,
            std::cmp::Ordering::Greater => 1,
        };
    }
    lane_cmp[31] = 1;
    ctx.instr(2); // swap + compare
    ctx.metrics.warp_comparisons += MAX_KEYS as u64; // lane i vs key slot i
    // Cache ties need the string remainder (device memory, uncoalesced) —
    // the expensive, rare path the 4-byte cache exists to avoid.
    let probe_rem: &[u8] = if term.len() > 4 { &term[4..] } else { b"" };
    #[allow(clippy::needless_range_loop)] // lane indexes lane_cmp and caches
    for lane in 0..count {
        if lane_cmp[lane] != 0 {
            continue;
        }
        let tp = sh_u32(ctx, base, OFF_TERM_PTR + 4 * lane);
        let key_rem: Vec<u8> = if tp == NULL {
            Vec::new()
        } else {
            let len = ctx.global_read_bytes(mem, DevPtr(k.string_area.0 + tp), 1)[0] as usize;
            ctx.global_read_bytes(mem, DevPtr(k.string_area.0 + tp + 1), len)
        };
        if key_rem.is_empty() && probe_rem.is_empty() {
            continue; // true match
        }
        ctx.diverge(1 + (key_rem.len().max(probe_rem.len()) / 4) as u64);
        lane_cmp[lane] = match key_rem.as_slice().cmp(probe_rem) {
            std::cmp::Ordering::Less => -1,
            std::cmp::Ordering::Equal => 0,
            std::cmp::Ordering::Greater => 1,
        };
    }
    // Packed reduction: high 32 bits accumulate "#keys < probe", low 16
    // bits keep the minimum matching slot.
    let packed: [u64; 32] = std::array::from_fn(|lane| {
        let less = (lane_cmp[lane] < 0) as u64;
        let eq_slot = if lane_cmp[lane] == 0 { lane as u64 } else { 0xFFFF };
        (less << 32) | eq_slot
    });
    let red = ctx.warp_reduce(packed, |a, b| {
        let less = (a >> 32) + (b >> 32);
        let slot = (a & 0xFFFF).min(b & 0xFFFF);
        (less << 32) | slot
    });
    let slot = (red & 0xFFFF) as usize;
    let pos = (red >> 32) as usize;
    if slot != 0xFFFF {
        Probe::Found(slot)
    } else {
        Probe::NotHere(pos)
    }
}

/// Shift slots `[pos, count)` one to the right in the shared node image —
/// the paper's parallel shift, one warp-wide read + write per field.
fn shift_right(ctx: &mut BlockCtx, base: usize, pos: usize, count: usize) {
    for field in [OFF_CACHE, OFF_TERM_PTR, OFF_POSTINGS] {
        let read_offs: [u32; 32] =
            std::array::from_fn(|i| (base + field + 4 * i.min(MAX_KEYS - 1)) as u32);
        let vals = ctx.shared_read_vec_u32(read_offs);
        // Lane i writes slot i+1 if i in [pos, count), else rewrites its
        // own slot (unconditional writes keep the warp converged). Lane 31
        // parks on the scratch word past the field arrays.
        let mut write_offs = [0u32; 32];
        let mut write_vals = [0u32; 32];
        let park = |lane: usize| (base + PARK_SCRATCH + 4 * lane) as u32;
        for lane in 0..32 {
            if lane >= MAX_KEYS {
                // Lane 31 is masked off (there are only 31 slots).
                write_offs[lane] = park(lane);
                write_vals[lane] = 0;
                continue;
            }
            let dst = if lane >= pos && lane < count { lane + 1 } else { lane };
            debug_assert!(dst < MAX_KEYS, "insert shift stays inside the slot array");
            write_offs[lane] = (base + field + 4 * dst) as u32;
            write_vals[lane] = vals[lane];
        }
        dedup_park(&mut write_offs, base);
        ctx.shared_write_vec_u32(write_offs, write_vals);
    }
}

/// Shared-memory scratch area (relative to a node image base) where
/// masked-off lanes park their writes; sits far past the three node images.
const PARK_SCRATCH: usize = 8192;

/// Ensure warp-write offsets are distinct by parking masked-off lanes on
/// unique scratch words (real hardware simply masks those lanes; the
/// simulator asserts distinctness instead).
fn dedup_park(offs: &mut [u32; 32], base: usize) {
    let park_base = (base + PARK_SCRATCH + 4 * 64) as u32;
    let mut seen = std::collections::HashSet::new();
    for (lane, o) in offs.iter_mut().enumerate() {
        if !seen.insert(*o) {
            *o = park_base + 4 * lane as u32;
        }
    }
}

/// Insert (term, handle) at `pos` of the shared node image.
fn place_key(
    ctx: &mut BlockCtx,
    mem: &mut DeviceMemory,
    k: &KernelPtrs,
    base: usize,
    pos: usize,
    term: &[u8],
    handle: u32,
) {
    let cache = u32::from_le_bytes(BTreeNode::make_cache(term));
    ctx.shared_write_u32(base + OFF_CACHE + 4 * pos, cache);
    let rem_ptr = if term.len() > 4 {
        let rem = &term[4..];
        let off = ctx.global_read_u32(mem, k.ctr_strings);
        assert!(off as usize + 1 + rem.len() <= k.string_capacity as usize,
            "GPU string arena exhausted");
        ctx.global_write_u32(mem, k.ctr_strings, off + 1 + rem.len() as u32);
        let mut buf = Vec::with_capacity(rem.len() + 1);
        buf.push(rem.len() as u8);
        buf.extend_from_slice(rem);
        ctx.global_write_bytes(mem, DevPtr(k.string_area.0 + off), &buf);
        off
    } else {
        NULL
    };
    ctx.shared_write_u32(base + OFF_TERM_PTR + 4 * pos, rem_ptr);
    ctx.shared_write_u32(base + OFF_POSTINGS + 4 * pos, handle);
    let count = sh_u32(ctx, base, OFF_COUNT);
    sh_set_u32(ctx, base, OFF_COUNT, count + 1);
    ctx.instr(1);
}

/// Split the full child at `child_slot` of the parent in SH_NODE.
/// Loads the child into SH_NODE2, builds the right sibling in SH_NODE3,
/// stores child + sibling, and updates the parent image in place (caller
/// stores the parent).
fn split_child(
    ctx: &mut BlockCtx,
    mem: &mut DeviceMemory,
    k: &KernelPtrs,
    parent_idx: u32,
    child_slot: usize,
) {
    let child_idx = sh_u32(ctx, SH_NODE, OFF_CHILDREN + 4 * child_slot);
    load_node(ctx, mem, k, child_idx, SH_NODE2);
    let right_idx = alloc_node(ctx, mem, k);
    let mid = MAX_KEYS / 2;
    let child_leaf = sh_u32(ctx, SH_NODE2, OFF_LEAF);

    // Build the right sibling in SH_NODE3 with warp-parallel copies.
    ctx.shared_mut()[SH_NODE3..SH_NODE3 + NODE_BYTES]
        .copy_from_slice(&BTreeNode::default().to_bytes());
    ctx.instr(4);
    for field in [OFF_CACHE, OFF_TERM_PTR, OFF_POSTINGS] {
        for i in 0..(MAX_KEYS - mid - 1) {
            let v = sh_u32(ctx, SH_NODE2, field + 4 * (mid + 1 + i));
            sh_set_u32(ctx, SH_NODE3, field + 4 * i, v);
        }
        ctx.instr(1); // one warp op per field (15 lanes active)
        ctx.metrics.shared_accesses += 2;
    }
    if child_leaf == 0 {
        for i in 0..(MAX_KEYS - mid) {
            let v = sh_u32(ctx, SH_NODE2, OFF_CHILDREN + 4 * (mid + 1 + i));
            sh_set_u32(ctx, SH_NODE3, OFF_CHILDREN + 4 * i, v);
        }
        ctx.instr(1);
        ctx.metrics.shared_accesses += 2;
    }
    sh_set_u32(ctx, SH_NODE3, OFF_LEAF, child_leaf);
    sh_set_u32(ctx, SH_NODE3, OFF_COUNT, (MAX_KEYS - mid - 1) as u32);

    // Median key (to move up).
    let med_cache = sh_u32(ctx, SH_NODE2, OFF_CACHE + 4 * mid);
    let med_ptr = sh_u32(ctx, SH_NODE2, OFF_TERM_PTR + 4 * mid);
    let med_post = sh_u32(ctx, SH_NODE2, OFF_POSTINGS + 4 * mid);

    // Truncate the left child (clear upper slots; warp-parallel).
    for field in [OFF_CACHE, OFF_TERM_PTR, OFF_POSTINGS] {
        for i in mid..MAX_KEYS {
            let clear = if field == OFF_CACHE { 0 } else { NULL };
            sh_set_u32(ctx, SH_NODE2, field + 4 * i, clear);
        }
        ctx.instr(1);
        ctx.metrics.shared_accesses += 1;
    }
    if child_leaf == 0 {
        for i in mid + 1..=MAX_KEYS {
            sh_set_u32(ctx, SH_NODE2, OFF_CHILDREN + 4 * i, NULL);
        }
        ctx.instr(1);
        ctx.metrics.shared_accesses += 1;
    }
    sh_set_u32(ctx, SH_NODE2, OFF_COUNT, mid as u32);

    // Store both halves back (coalesced).
    store_node(ctx, mem, k, child_idx, SH_NODE2);
    store_node(ctx, mem, k, right_idx, SH_NODE3);

    // Parent: shift keys/children right from child_slot, insert median.
    let pcount = sh_u32(ctx, SH_NODE, OFF_COUNT) as usize;
    debug_assert!(pcount < MAX_KEYS);
    shift_right(ctx, SH_NODE, child_slot, pcount);
    // Children shift (one extra array).
    for i in (child_slot + 1..=pcount).rev() {
        let v = sh_u32(ctx, SH_NODE, OFF_CHILDREN + 4 * i);
        sh_set_u32(ctx, SH_NODE, OFF_CHILDREN + 4 * (i + 1), v);
    }
    ctx.instr(1);
    ctx.metrics.shared_accesses += 2;
    sh_set_u32(ctx, SH_NODE, OFF_CACHE + 4 * child_slot, med_cache);
    sh_set_u32(ctx, SH_NODE, OFF_TERM_PTR + 4 * child_slot, med_ptr);
    sh_set_u32(ctx, SH_NODE, OFF_POSTINGS + 4 * child_slot, med_post);
    sh_set_u32(ctx, SH_NODE, OFF_CHILDREN + 4 * (child_slot + 1), right_idx);
    sh_set_u32(ctx, SH_NODE, OFF_COUNT, (pcount + 1) as u32);
    ctx.instr(4);
    ctx.metrics.shared_accesses += 5;
    let _ = parent_idx;
}

/// Insert `term` into the collection's B-tree; returns its postings handle.
fn btree_insert(
    ctx: &mut BlockCtx,
    mem: &mut DeviceMemory,
    k: &KernelPtrs,
    root_cell: DevPtr,
    term: &[u8],
) -> u32 {
    let mut root = ctx.global_read_u32(mem, root_cell);
    if root == NULL {
        root = alloc_node(ctx, mem, k);
        write_empty_leaf(ctx, mem, k, root);
        ctx.global_write_u32(mem, root_cell, root);
    }
    // Preemptive root split.
    load_node(ctx, mem, k, root, SH_NODE);
    if sh_u32(ctx, SH_NODE, OFF_COUNT) as usize == MAX_KEYS {
        let new_root = alloc_node(ctx, mem, k);
        // Fresh internal root with the old root as child 0, built in shared.
        let mut fresh = BTreeNode { leaf: 0, ..BTreeNode::default() };
        fresh.children[0] = root;
        ctx.shared_mut()[SH_NODE..SH_NODE + NODE_BYTES].copy_from_slice(&fresh.to_bytes());
        ctx.instr(4);
        split_child(ctx, mem, k, new_root, 0);
        store_node(ctx, mem, k, new_root, SH_NODE);
        ctx.global_write_u32(mem, root_cell, new_root);
        root = new_root;
        load_node(ctx, mem, k, root, SH_NODE);
    }

    let mut node_idx = root;
    loop {
        // Invariant: the current (non-full) node is in SH_NODE.
        match node_probe(ctx, mem, k, SH_NODE, term) {
            Probe::Found(slot) => {
                return sh_u32(ctx, SH_NODE, OFF_POSTINGS + 4 * slot);
            }
            Probe::NotHere(pos) => {
                let leaf = sh_u32(ctx, SH_NODE, OFF_LEAF);
                if leaf != 0 {
                    let count = sh_u32(ctx, SH_NODE, OFF_COUNT) as usize;
                    let handle = ctx.global_read_u32(mem, k.ctr_terms);
                    assert!(handle < k.max_terms, "GPU postings table exhausted");
                    ctx.global_write_u32(mem, k.ctr_terms, handle + 1);
                    shift_right(ctx, SH_NODE, pos, count);
                    place_key(ctx, mem, k, SH_NODE, pos, term, handle);
                    store_node(ctx, mem, k, node_idx, SH_NODE);
                    return handle;
                }
                let child_idx = sh_u32(ctx, SH_NODE, OFF_CHILDREN + 4 * pos);
                load_node(ctx, mem, k, child_idx, SH_NODE2);
                if sh_u32(ctx, SH_NODE2, OFF_COUNT) as usize == MAX_KEYS {
                    split_child(ctx, mem, k, node_idx, pos);
                    store_node(ctx, mem, k, node_idx, SH_NODE);
                    // Re-probe this node: the median moved up into `pos`.
                    continue;
                }
                // Descend: child becomes the current node.
                ctx.shared_mut().copy_within(SH_NODE2..SH_NODE2 + NODE_BYTES, SH_NODE);
                ctx.instr(4);
                node_idx = child_idx;
            }
        }
    }
}

/// On-device postings aggregation: bump tf for a repeat (handle, doc),
/// otherwise retire the previous posting to the log and start a new one.
fn postings_update(
    ctx: &mut BlockCtx,
    mem: &mut DeviceMemory,
    k: &KernelPtrs,
    handle: u32,
    doc: u32,
) {
    let entry = DevPtr(k.table.0 + handle * 8);
    let cur_doc = ctx.global_read_u32(mem, entry);
    if cur_doc == doc {
        let tf = ctx.global_read_u32(mem, entry.add(4));
        ctx.global_write_u32(mem, entry.add(4), tf + 1);
        return;
    }
    if cur_doc != EMPTY_DOC {
        let tf = ctx.global_read_u32(mem, entry.add(4));
        let slot = ctx.global_read_u32(mem, k.ctr_log);
        assert!(slot < k.log_capacity, "GPU postings log exhausted");
        ctx.global_write_u32(mem, k.ctr_log, slot + 1);
        let mut rec = [0u8; 12];
        rec[0..4].copy_from_slice(&handle.to_le_bytes());
        rec[4..8].copy_from_slice(&cur_doc.to_le_bytes());
        rec[8..12].copy_from_slice(&tf.to_le_bytes());
        ctx.global_write_bytes(mem, DevPtr(k.log_area.0 + slot * 12), &rec);
    }
    ctx.global_write_u32(mem, entry, doc);
    ctx.global_write_u32(mem, entry.add(4), 1);
}

/// Stream reader over the Fig 6 term bytes, staging 512 B chunks into
/// shared memory with coalesced loads.
struct ChunkReader {
    bytes_ptr: DevPtr,
    len: u32,
    chunk_base: Option<u32>,
}

impl ChunkReader {
    fn new(bytes_ptr: DevPtr, len: u32) -> Self {
        ChunkReader { bytes_ptr, len, chunk_base: None }
    }

    /// Byte at stream offset `off`, staging its chunk if needed.
    fn byte_at(&mut self, ctx: &mut BlockCtx, mem: &DeviceMemory, off: u32) -> u8 {
        let base = off / CHUNK as u32 * CHUNK as u32;
        if self.chunk_base != Some(base) {
            let n = CHUNK.min((self.len - base) as usize);
            ctx.gts(mem, DevPtr(self.bytes_ptr.0 + base), SH_CHUNK, n);
            self.chunk_base = Some(base);
        }
        ctx.shared()[SH_CHUNK + (off - base) as usize]
    }

    /// Read the length-prefixed term at `*pos`, advancing it.
    fn next_term(&mut self, ctx: &mut BlockCtx, mem: &DeviceMemory, pos: &mut u32) -> Vec<u8> {
        let len = self.byte_at(ctx, mem, *pos) as u32;
        *pos += 1;
        let mut term = Vec::with_capacity(len as usize);
        for i in 0..len {
            term.push(self.byte_at(ctx, mem, *pos + i));
        }
        *pos += len;
        // Lanes cooperatively copied the term (len/32-ish steps).
        ctx.instr(1 + len as u64 / 32);
        term
    }
}

/// The per-trie-collection kernel body.
fn kernel(ctx: &mut BlockCtx, mem: &mut DeviceMemory, k: &KernelPtrs, item: &WorkItem) {
    let root_cell = DevPtr(k.roots.0 + item.trie_index * 4);
    let mut reader = ChunkReader::new(item.bytes_ptr, item.bytes_len);
    for s in 0..item.n_spans {
        // Span record: (doc, byte_start, byte_len, n_terms).
        let rec = ctx.global_read_bytes(mem, DevPtr(item.spans_ptr.0 + s * 16), 16);
        let doc = u32::from_le_bytes(rec[0..4].try_into().unwrap()) + item.doc_offset;
        let byte_start = u32::from_le_bytes(rec[4..8].try_into().unwrap());
        let byte_len = u32::from_le_bytes(rec[8..12].try_into().unwrap());
        let mut pos = byte_start;
        let end = byte_start + byte_len;
        while pos < end {
            let term = reader.next_term(ctx, mem, &mut pos);
            let handle = btree_insert(ctx, mem, k, root_cell, &term);
            postings_update(ctx, mem, k, handle, doc);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cpu::CpuIndexer;
    use ii_corpus::RawDocument;
    use ii_dict::GlobalDictionary;
    use ii_text::parse_documents;

    fn parse(bodies: &[&str]) -> ii_text::ParsedBatch {
        let docs: Vec<RawDocument> = bodies
            .iter()
            .map(|b| RawDocument { url: String::new(), body: (*b).into() })
            .collect();
        parse_documents(&docs, false, 0)
    }

    fn gpu() -> GpuIndexer {
        GpuIndexer::new(0, GpuIndexerConfig::small())
    }

    #[test]
    fn gpu_indexes_simple_batch() {
        let batch = parse(&["zebra zebra quilt", "zebra"]);
        let mut g = gpu();
        let groups: Vec<&TrieGroup> = batch.groups.iter().collect();
        let rep = g.index_batch(&groups, 0);
        assert!(rep.device_seconds > 0.0);
        assert!(rep.transfer_seconds > 0.0);
        assert_eq!(g.term_count(), 2);
        assert_eq!(g.stats.tokens, 4);
        assert_eq!(g.stats.terms, 2);

        let run = g.flush_run(0, Codec::VarByte);
        // Two terms, each with a non-empty list.
        assert_eq!(run.entries.len(), 2);
        let mut dict = g.into_partial_dictionary();
        let zh = dict.lookup(ii_dict::trie_index("zebra").0, b"ra").unwrap();
        let postings = run.get(zh).unwrap();
        assert_eq!(postings.len(), 2);
        assert_eq!(postings[0].doc, DocId(0));
        assert_eq!(postings[0].tf, 2);
        assert_eq!(postings[1].doc, DocId(1));
    }

    #[test]
    fn gpu_matches_cpu_indexer_exactly() {
        // The decisive correctness test: same parsed batches through the
        // GPU kernel and the CPU indexer must give identical dictionaries
        // and postings.
        let text1 = "the quick brown foxes jumped over the lazy dogs \
                     repeatedly 1999 -80 3d zo\u{e9} numbers 042 042";
        let text2 = "quick zebras examine 042 brown quilts and xylophones \
                     examining examination browns";
        let b0 = parse(&[text1, text2]);
        let b1 = parse(&[text2, text1, "foxes foxes foxes"]);

        let mut cpu = CpuIndexer::new(0);
        let mut g = gpu();
        for (batch, off) in [(&b0, 0u32), (&b1, 100u32)] {
            for grp in &batch.groups {
                cpu.index_group(grp, off);
            }
            let groups: Vec<&TrieGroup> = batch.groups.iter().collect();
            g.index_batch(&groups, off);
        }
        assert_eq!(g.stats, cpu.stats, "workload stats must agree");

        let cpu_run = cpu.flush_run(0, Codec::VarByte);
        let gpu_run = g.flush_run(0, Codec::VarByte);
        let mut gdict = g.into_partial_dictionary();
        let cpu_dict = GlobalDictionary::combine(&[cpu.dict.clone()]);
        let gpu_dict = GlobalDictionary::combine(&[gdict.clone()]);

        // Same term set.
        let cpu_terms: Vec<String> =
            cpu_dict.entries().iter().map(|e| e.full_term()).collect();
        let gpu_terms: Vec<String> =
            gpu_dict.entries().iter().map(|e| e.full_term()).collect();
        assert_eq!(cpu_terms, gpu_terms);

        // Same postings for every term.
        for e in cpu_dict.entries() {
            let ch = e.postings;
            let gh = gdict
                .lookup(e.trie_index, &e.suffix)
                .unwrap_or_else(|| panic!("GPU missing {}", e.full_term()));
            let cl = cpu_run.get(ch).unwrap_or_default();
            let gl = gpu_run.get(gh).unwrap_or_default();
            assert_eq!(cl, gl, "postings differ for {}", e.full_term());
        }
    }

    #[test]
    fn gpu_btree_splits_under_volume() {
        // >31 distinct terms in one trie collection forces splits.
        let words: Vec<String> = (0..200).map(|i| format!("zzkey{i:04}")).collect();
        let body = words.join(" ");
        let batch = parse(&[&body]);
        let mut g = gpu();
        let groups: Vec<&TrieGroup> = batch.groups.iter().collect();
        g.index_batch(&groups, 0);
        assert_eq!(g.term_count(), 200);
        assert!(g.node_count() > 1, "splits must allocate nodes");
        // All terms findable after download.
        let mut dict = g.into_partial_dictionary();
        for w in &words {
            let (ti, suffix) = ii_dict::classify(w);
            assert!(dict.lookup(ti.0, suffix.as_bytes()).is_some(), "{w} lost");
        }
    }

    #[test]
    fn postings_survive_run_boundaries() {
        let mut g = gpu();
        let b = parse(&["zebra"]);
        let groups: Vec<&TrieGroup> = b.groups.iter().collect();
        g.index_batch(&groups, 0);
        let r0 = g.flush_run(0, Codec::VarByte);
        g.index_batch(&groups, 50);
        let r1 = g.flush_run(1, Codec::VarByte);
        let h = r0.entries[0].handle;
        assert_eq!(r1.entries[0].handle, h, "handle stable across runs");
        assert_eq!(r0.get(h).unwrap()[0].doc, DocId(0));
        assert_eq!(r1.get(h).unwrap()[0].doc, DocId(50));
    }

    #[test]
    fn kernel_traffic_is_mostly_coalesced() {
        let words: Vec<String> = (0..300).map(|i| format!("zzcoal{i:04}")).collect();
        let body = words.join(" ");
        let batch = parse(&[&body]);
        let mut g = gpu();
        let groups: Vec<&TrieGroup> = batch.groups.iter().collect();
        g.index_batch(&groups, 0);
        let m = g.kernel_metrics;
        assert!(m.global_transactions > 0);
        // Node loads/stores and chunk staging dominate; scalar postings
        // traffic keeps the ratio above 1, but it should stay far from the
        // fully-scattered worst case (16 transactions per segment's worth).
        let ratio = m.transactions_per_segment();
        assert!(ratio < 8.0, "coalescing ratio too poor: {ratio}");
        assert!(m.instructions > 0);
    }
}
