//! Quickstart: generate a small synthetic collection, build the index with
//! the full heterogeneous pipeline, and run a few queries.
//!
//! ```sh
//! cargo run --release -p ii-examples --bin quickstart
//! ```

use ii_core::corpus::{CollectionSpec, StoredCollection};
use ii_core::IndexBuilder;

fn main() -> std::io::Result<()> {
    let dir = std::env::temp_dir().join("ii-quickstart-collection");
    let _ = std::fs::remove_dir_all(&dir);

    println!("== 1. Generate a synthetic Wikipedia-like collection ==");
    let spec = CollectionSpec::wikipedia_like(0.5);
    let stored = StoredCollection::generate(spec, &dir)?;
    let s = &stored.manifest.stats;
    println!(
        "   {} docs, {} tokens, {} distinct terms, {:.1} MB ({:.1} MB compressed)",
        s.documents,
        s.tokens,
        s.distinct_terms,
        s.uncompressed_bytes as f64 / 1e6,
        s.compressed_bytes as f64 / 1e6,
    );

    println!("== 2. Build the index (2 parsers, 1 CPU indexer, 1 simulated GPU) ==");
    let index = IndexBuilder::small().parsers(2).build_from_dir(&dir)?;
    let r = &index.report;
    println!("   {} terms in dictionary, {} docs indexed", index.num_terms(), index.num_docs());
    println!(
        "   build: {:.2}s total ({:.2}s sampling, {:.2}s parser busy, {:.2}s indexing)",
        r.total_seconds, r.sampling_seconds, r.parser_busy_seconds, r.indexing_seconds
    );
    println!(
        "   workload split — CPU: {} tokens / {} terms; GPU: {} tokens / {} terms",
        r.cpu_stats.tokens, r.cpu_stats.terms, r.gpu_stats.tokens, r.gpu_stats.terms
    );
    println!("   throughput on this host: {:.1} MB/s", r.throughput_mb_s());

    println!("== 3. Query ==");
    for query in ["information retrieval", "web search", "music"] {
        let hits = index.search(query);
        match hits.first() {
            Some((doc, score)) => println!(
                "   '{query}': {} hits; best doc {doc} (score {score})",
                hits.len()
            ),
            None => println!("   '{query}': no conjunctive match"),
        }
    }

    println!("== 4. Persist and reopen ==");
    let out = std::env::temp_dir().join("ii-quickstart-index");
    let _ = std::fs::remove_dir_all(&out);
    index.save(&out)?;
    let reopened = ii_core::Index::open(&out)?;
    assert_eq!(reopened.num_terms(), index.num_terms());
    println!("   saved to {} and reopened: {} terms", out.display(), reopened.num_terms());

    let _ = std::fs::remove_dir_all(&dir);
    let _ = std::fs::remove_dir_all(&out);
    Ok(())
}
