//! Compare the paper's system against the baselines on identical input:
//! Ivory MapReduce, Single-Pass MapReduce, SPIMI and sort-based inversion
//! all build the same logical index; all must agree with the heterogeneous
//! pipeline posting-for-posting, and their measured single-core costs are
//! what the Fig 12 harness projects to cluster scale.
//!
//! ```sh
//! cargo run --release -p ii-examples --bin baseline_comparison
//! ```

use ii_baselines::{
    ivory_index, sort_based_index, spimi_index, spmr_index, MapReduceConfig,
};
use ii_core::corpus::{CollectionGenerator, CollectionSpec};
use ii_core::IndexBuilder;
use std::time::Instant;

fn main() -> std::io::Result<()> {
    // One small text collection, shared by all systems.
    let spec = CollectionSpec {
        name: "comparison".into(),
        num_files: 4,
        docs_per_file: 120,
        mean_doc_tokens: 300,
        vocab_size: 20_000,
        zipf_s: 1.0,
        html: false,
        seed: 99,
        shift: None,
    };
    let gen = CollectionGenerator::new(spec.clone());
    let splits: Vec<Vec<ii_core::corpus::RawDocument>> =
        (0..spec.num_files).map(|f| gen.generate_file(f)).collect();
    let flat: Vec<ii_core::corpus::RawDocument> =
        splits.iter().flatten().cloned().collect();
    let bytes: usize = flat.iter().map(|d| d.stored_len()).sum();
    println!(
        "collection: {} docs, {:.2} MB plain text\n",
        flat.len(),
        bytes as f64 / 1e6
    );

    let mr = MapReduceConfig { map_workers: 2, reduce_workers: 2 };

    println!("{:<28}{:>12}{:>12}{:>14}", "system", "seconds", "terms", "MB/s");
    let t0 = Instant::now();
    let (ivory, ivory_stats) = ivory_index(&splits, false, mr);
    let t_ivory = t0.elapsed().as_secs_f64();
    println!(
        "{:<28}{:>12.3}{:>12}{:>14.2}",
        "Ivory MapReduce [9]",
        t_ivory,
        ivory.len(),
        bytes as f64 / 1e6 / t_ivory
    );

    let t0 = Instant::now();
    let (spmr, spmr_stats) = spmr_index(&splits, false, mr);
    let t_spmr = t0.elapsed().as_secs_f64();
    println!(
        "{:<28}{:>12.3}{:>12}{:>14.2}",
        "Single-Pass MapReduce [8]",
        t_spmr,
        spmr.len(),
        bytes as f64 / 1e6 / t_spmr
    );

    let t0 = Instant::now();
    let (spimi, spimi_stats) = spimi_index(&flat, false, 50_000);
    let t_spimi = t0.elapsed().as_secs_f64();
    println!(
        "{:<28}{:>12.3}{:>12}{:>14.2}",
        "SPIMI (serial) [4]",
        t_spimi,
        spimi.len(),
        bytes as f64 / 1e6 / t_spimi
    );

    let t0 = Instant::now();
    let (sortb, _) = sort_based_index(&flat, false, 200_000);
    let t_sort = t0.elapsed().as_secs_f64();
    println!(
        "{:<28}{:>12.3}{:>12}{:>14.2}",
        "Sort-based (serial) [3]",
        t_sort,
        sortb.len(),
        bytes as f64 / 1e6 / t_sort
    );

    // The paper's system over the same data (via a stored collection).
    let dir = std::env::temp_dir().join("ii-baseline-comparison");
    let _ = std::fs::remove_dir_all(&dir);
    ii_core::corpus::StoredCollection::generate(spec, &dir)?;
    let t0 = Instant::now();
    let index = IndexBuilder::small().parsers(2).build_from_dir(&dir)?;
    let t_ours = t0.elapsed().as_secs_f64();
    println!(
        "{:<28}{:>12.3}{:>12}{:>14.2}",
        "This paper (CPU+GPU-sim)",
        t_ours,
        index.num_terms(),
        bytes as f64 / 1e6 / t_ours
    );

    println!(
        "\nemit volume: Ivory {} pairs vs Single-Pass {} pairs ({}x fewer)",
        ivory_stats.pairs_emitted,
        spmr_stats.pairs_emitted,
        ivory_stats.pairs_emitted / spmr_stats.pairs_emitted.max(1)
    );
    println!("SPIMI runs flushed: {}", spimi_stats.runs);

    // Cross-validate: every system agrees on every term's postings.
    println!("\ncross-validating all five indexes...");
    assert_eq!(ivory.len(), spmr.len());
    assert_eq!(ivory.len(), spimi.len());
    assert_eq!(ivory.len(), sortb.len());
    assert_eq!(ivory.len(), index.num_terms());
    let mut checked = 0usize;
    for (term, list) in &ivory.postings {
        assert_eq!(spmr.get(term), Some(list), "spmr disagrees on {term}");
        assert_eq!(spimi.get(term), Some(list), "spimi disagrees on {term}");
        assert_eq!(sortb.get(term), Some(list), "sort-based disagrees on {term}");
        let ours =
            index.postings_stemmed(term).unwrap_or_else(|| panic!("ours missing {term}"));
        assert_eq!(&ours, list, "pipeline disagrees on {term}");
        checked += 1;
    }
    println!("all {checked} terms agree across all five systems ✓");

    let _ = std::fs::remove_dir_all(&dir);
    Ok(())
}
