//! Web-crawl indexing scenario: the workload the paper's introduction
//! motivates — a ClueWeb-like HTML crawl with a distribution shift late in
//! the file sequence (the Wikipedia-origin tail of ClueWeb09's first
//! segment). Builds the index with the full CPU+GPU pipeline and reports
//! per-file indexing behaviour plus GPU kernel statistics.
//!
//! ```sh
//! cargo run --release -p ii-examples --bin web_crawl_index
//! ```

use ii_core::corpus::{CollectionSpec, StoredCollection};
use ii_core::{Index, IndexBuilder};

fn main() -> std::io::Result<()> {
    let dir = std::env::temp_dir().join("ii-webcrawl-collection");
    let _ = std::fs::remove_dir_all(&dir);

    println!("== Generating a ClueWeb09-like HTML crawl (with late-corpus shift) ==");
    let spec = CollectionSpec::clueweb_like(0.8);
    let num_files = spec.num_files;
    let stored = StoredCollection::generate(spec, &dir)?;
    println!(
        "   {} files, {} docs, {:.1} MB uncompressed (HTML)",
        num_files,
        stored.manifest.stats.documents,
        stored.manifest.stats.uncompressed_bytes as f64 / 1e6
    );

    println!("== Indexing with 2 parsers / 1 CPU indexer / 2 simulated GPUs ==");
    let index: Index = IndexBuilder::small()
        .parsers(2)
        .cpu_indexers(1)
        .gpus(2)
        .build_from_dir(&dir)?;
    let r = &index.report;
    println!("   {} distinct terms, {} docs", index.num_terms(), index.num_docs());

    println!("== Per-file indexing times (watch the late-corpus shift) ==");
    println!("   {:>4}  {:>10}  {:>12}", "file", "tokens", "time (ms)");
    for ft in &r.per_file {
        println!(
            "   {:>4}  {:>10}  {:>12.2}",
            ft.file_idx,
            ft.tokens,
            ft.wall_seconds * 1e3
        );
    }

    println!("== Table V-style workload split ==");
    println!(
        "   CPU indexers: {:>10} tokens  {:>8} terms  {:>10} chars",
        r.cpu_stats.tokens, r.cpu_stats.terms, r.cpu_stats.chars
    );
    println!(
        "   GPU indexers: {:>10} tokens  {:>8} terms  {:>10} chars",
        r.gpu_stats.tokens, r.gpu_stats.terms, r.gpu_stats.chars
    );
    if r.cpu_stats.terms > 0 {
        println!(
            "   GPU/CPU ratios — tokens: {:.2}x, terms: {:.2}x (paper: 0.8x / 2.5x)",
            r.gpu_stats.tokens as f64 / r.cpu_stats.tokens.max(1) as f64,
            r.gpu_stats.terms as f64 / r.cpu_stats.terms as f64
        );
    }

    println!("== Sanity queries against crawl boilerplate ==");
    for q in ["search", "news", "home page"] {
        println!("   '{q}': {} conjunctive hits", index.search(q).len());
    }

    let _ = std::fs::remove_dir_all(&dir);
    Ok(())
}
