//! A miniature search engine: index a congressional-crawl-like collection,
//! persist the index (dictionary + run files, the paper's §III.F on-disk
//! layout), reopen it, and serve interactive-style queries including
//! range-narrowed retrieval over document-ID windows.
//!
//! ```sh
//! cargo run --release -p ii-examples --bin search_engine [query terms...]
//! ```

use ii_core::corpus::{CollectionSpec, DocId, StoredCollection};
use ii_core::{Index, IndexBuilder};

fn main() -> std::io::Result<()> {
    let coll_dir = std::env::temp_dir().join("ii-searchengine-collection");
    let index_dir = std::env::temp_dir().join("ii-searchengine-index");
    let _ = std::fs::remove_dir_all(&coll_dir);
    let _ = std::fs::remove_dir_all(&index_dir);

    println!("== Build phase ==");
    let stored = StoredCollection::generate(CollectionSpec::congress_like(0.6), &coll_dir)?;
    println!(
        "   collection: {} docs / {:.1} MB",
        stored.manifest.stats.documents,
        stored.manifest.stats.uncompressed_bytes as f64 / 1e6
    );
    // Multiple batches per run keeps run files fewer and fatter; the
    // index is still a monolithic logical index over partial lists.
    let index = IndexBuilder::small().parsers(3).batches_per_run(2).build_from_dir(&coll_dir)?;
    index.save(&index_dir)?;
    let n_runs: usize = index.run_sets.values().map(|s| s.runs().len()).sum();
    println!(
        "   saved: dictionary ({} terms) + {} run files -> {}",
        index.num_terms(),
        n_runs,
        index_dir.display()
    );

    println!("== Serve phase (reopened from disk) ==");
    let engine: Index = Index::open(&index_dir)?;
    let args: Vec<String> = std::env::args().skip(1).collect();
    let queries: Vec<String> = if args.is_empty() {
        vec!["government report".into(), "committee hearing".into(), "library congress".into()]
    } else {
        vec![args.join(" ")]
    };
    for q in &queries {
        let hits = engine.search(q);
        println!("   query '{q}': {} hits", hits.len());
        for (doc, score) in hits.iter().take(5) {
            let file = engine
                .source_file(*doc)
                .map(|f| format!("file_{f:05}.iic"))
                .unwrap_or_else(|| "?".into());
            println!("      doc {doc:>6}  score {score}  (source {file})");
        }
    }

    println!("== Range-narrowed retrieval (only overlapping runs decoded) ==");
    // Pick the most frequent indexed term for a meaningful demo.
    let busiest = engine
        .dictionary
        .entries()
        .iter()
        .max_by_key(|e| engine.run_sets[&e.indexer].fetch(e.postings).len())
        .expect("non-empty index");
    let term = busiest.full_term();
    let full = engine.run_sets[&busiest.indexer].fetch(busiest.postings);
    let total_docs = engine.num_docs().max(full.postings().last().map(|p| p.doc.0 + 1).unwrap_or(1));
    let window = (DocId(total_docs / 4), DocId(total_docs / 2));
    let narrowed = engine.postings_in_range(&term, window.0, window.1);
    println!(
        "   term '{term}': {} postings total; {} within docs [{}, {}]",
        full.len(),
        narrowed.len(),
        window.0,
        window.1
    );

    let _ = std::fs::remove_dir_all(&coll_dir);
    let _ = std::fs::remove_dir_all(&index_dir);
    Ok(())
}
