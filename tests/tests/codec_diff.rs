//! Differential codec suite: the block-compressed postings formats
//! (BP128, PForDelta, Elias-Fano, and the per-length-class Auto policy)
//! against each other and against the legacy whole-list codecs.
//!
//! The contract under test is logical identity: the codec is a physical
//! encoding choice and must never change *what* the index contains. For
//! the same collection, every codec default must decode to the same
//! postings for every dictionary term and serialize the same dictionary
//! bytes; device mix and worker death must not change run bytes; and a
//! hand-built legacy (v1 wire format, v1 manifest) index must still open,
//! verify, and answer identically.

use ii_core::corpus::{CollectionSpec, StoredCollection};
use ii_core::pipeline::{
    build_index, PipelineConfig, PipelineReport, SupervisorPolicy, WorkerClass, WorkerFaultPlan,
};
use ii_core::postings::{Codec, Posting, PostingsList, RunFile, RunFormat};
use ii_core::store::{Manifest, MANIFEST_NAME};
use ii_core::Index;
use std::collections::{BTreeMap, HashMap};
use std::sync::Arc;
use std::time::Duration;

fn e2e_spec(name: &str, num_files: usize, docs_per_file: usize) -> CollectionSpec {
    CollectionSpec {
        name: name.into(),
        num_files,
        docs_per_file,
        mean_doc_tokens: 70,
        vocab_size: 300,
        zipf_s: 1.0,
        html: true,
        seed: 7272,
        shift: None,
    }
}

/// Every dictionary term's decoded postings, keyed by full surface term.
fn decoded_postings(idx: &Index) -> BTreeMap<String, PostingsList> {
    idx.dictionary
        .entries()
        .iter()
        .map(|e| {
            let term = e.full_term();
            let list = idx
                .postings_stemmed(&term)
                .unwrap_or_else(|| panic!("dictionary term {term:?} has no postings"));
            (term, list)
        })
        .collect()
}

/// Serialized run bytes keyed by (indexer, run) — the physical artifact
/// identity a resume or replica build must reproduce.
fn run_bytes(run_sets: &HashMap<u32, ii_core::postings::RunSet>) -> BTreeMap<(u32, u32), Vec<u8>> {
    run_sets
        .iter()
        .flat_map(|(&indexer, set)| {
            set.runs().iter().map(move |r| ((indexer, r.run_id), r.to_bytes()))
        })
        .collect()
}

// ---------------------------------------------------------------------------
// Codec sweep: every codec decodes to the same logical index.
// ---------------------------------------------------------------------------

/// Build the same collection once per codec default. The dictionary bytes
/// must be identical (the codec never touches the dictionary) and every
/// term's decoded postings must match the varbyte baseline posting for
/// posting. Runs are aggregated across all files so the Auto policy's
/// medium length class (PForDelta) actually engages.
#[test]
fn every_codec_decodes_the_same_postings() {
    let spec = e2e_spec("codec-diff", 8, 40);
    let dir = std::env::temp_dir().join(format!("ii-codec-diff-e2e-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let coll = Arc::new(StoredCollection::generate(spec.clone(), &dir).unwrap());

    let build_with = |codec: Codec| {
        let mut cfg = PipelineConfig::small(2, 1, 1);
        cfg.codec = codec;
        // One run spanning the whole collection: per-run lists reach the
        // medium (>128 postings) length class.
        cfg.batches_per_run = spec.num_files;
        let out =
            build_index(&coll, &cfg).unwrap_or_else(|e| panic!("{codec:?} build died: {e}"));
        let dict_bytes = out.dict_bytes.clone();
        (dict_bytes, Index::from_output(out))
    };

    let (baseline_dict, baseline) = build_with(Codec::VarByte);
    let expected = decoded_postings(&baseline);
    assert!(expected.len() > 50, "collection produced a real vocabulary");
    assert!(
        expected.values().any(|l| l.len() > 128),
        "at least one list crosses a block boundary"
    );

    for codec in [
        Codec::Gamma,
        Codec::Golomb(64),
        Codec::Bp128,
        Codec::PFor,
        Codec::EliasFano,
        Codec::Auto,
    ] {
        let (dict_bytes, idx) = build_with(codec);
        assert_eq!(dict_bytes, baseline_dict, "{codec:?}: dictionary bytes diverged");
        let got = decoded_postings(&idx);
        assert_eq!(
            got.len(),
            expected.len(),
            "{codec:?}: term count diverged"
        );
        for (term, want) in &expected {
            assert_eq!(
                got.get(term),
                Some(want),
                "{codec:?}: postings diverged for term {term:?}"
            );
        }
        if codec == Codec::Auto {
            // The per-length-class policy must actually split: short lists
            // stay varbyte, and the >128-posting lists built above land in
            // the PForDelta class.
            let entry_codecs: Vec<Codec> = idx
                .run_sets
                .values()
                .flat_map(|s| s.runs().iter().flat_map(|r| r.entries.iter().map(|e| e.codec)))
                .collect();
            assert!(
                entry_codecs.contains(&Codec::VarByte),
                "Auto: short lists resolve to varbyte"
            );
            assert!(
                entry_codecs.contains(&Codec::PFor),
                "Auto: medium lists resolve to PForDelta"
            );
        }
    }
    std::fs::remove_dir_all(&dir).unwrap();
}

// ---------------------------------------------------------------------------
// Device mix and worker death: physical run bytes must not move.
// ---------------------------------------------------------------------------

/// CPU-only vs GPU-only builds (same indexer count, so the same shard
/// numbering) and fault-free vs worker-kill builds must produce
/// byte-identical run files, not merely equal decoded postings — the
/// blocked wire format is part of the determinism contract dict_diff
/// already pins for the dictionary.
#[test]
fn device_mix_and_worker_kill_share_run_bytes() {
    let spec = e2e_spec("codec-runs", 6, 12);
    let dir = std::env::temp_dir().join(format!("ii-codec-diff-runs-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let coll = Arc::new(StoredCollection::generate(spec, &dir).unwrap());

    let cpu = build_index(&coll, &PipelineConfig::small(2, 1, 0)).expect("CPU-only build");
    let gpu = build_index(&coll, &PipelineConfig::small(2, 0, 1)).expect("GPU-only build");
    assert_eq!(cpu.dict_bytes, gpu.dict_bytes, "CPU vs GPU dictionary bytes");
    let cpu_runs = run_bytes(&cpu.run_sets);
    assert!(!cpu_runs.is_empty());
    assert_eq!(cpu_runs, run_bytes(&gpu.run_sets), "CPU vs GPU run bytes");

    let mixed_cfg = PipelineConfig::small(2, 1, 1);
    let mixed = build_index(&coll, &mixed_cfg).expect("fault-free mixed build");
    let mut kill_cfg = mixed_cfg.clone();
    kill_cfg.supervision =
        SupervisorPolicy::default().with_stall_timeout(Duration::from_millis(200));
    kill_cfg.worker_faults = WorkerFaultPlan::none().kill(WorkerClass::GpuIndexer, 0, 1);
    let killed = build_index(&coll, &kill_cfg).expect("worker-kill build");
    assert_eq!(mixed.dict_bytes, killed.dict_bytes, "fault-free vs worker-kill dict bytes");
    assert_eq!(
        run_bytes(&mixed.run_sets),
        run_bytes(&killed.run_sets),
        "fault-free vs worker-kill run bytes"
    );
    std::fs::remove_dir_all(&dir).unwrap();
}

// ---------------------------------------------------------------------------
// Legacy format: a v1 index (v1 runs, v1 manifest) still opens + verifies.
// ---------------------------------------------------------------------------

/// Rebuild a blocked index's runs in the legacy whole-list wire format,
/// save it, rewrite the manifest as version 1 without postings metadata —
/// exactly what an index built before the block-compression release looks
/// like on disk — and require it to open, checksum-verify, and decode
/// identically.
#[test]
fn legacy_v1_index_opens_and_verifies() {
    let spec = e2e_spec("codec-legacy", 4, 10);
    let coll_dir =
        std::env::temp_dir().join(format!("ii-codec-diff-legacy-coll-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&coll_dir);
    let coll = Arc::new(StoredCollection::generate(spec, &coll_dir).unwrap());
    let idx = Index::from_output(
        build_index(&coll, &PipelineConfig::small(2, 1, 0)).expect("build"),
    );
    std::fs::remove_dir_all(&coll_dir).unwrap();
    let expected = decoded_postings(&idx);

    // Re-encode every run in the v1 whole-list format.
    let mut legacy_sets: HashMap<u32, ii_core::postings::RunSet> = HashMap::new();
    for (&indexer, set) in &idx.run_sets {
        for run in set.runs() {
            let lists: Vec<(u32, PostingsList)> = run
                .entries
                .iter()
                .map(|e| {
                    let mut l = PostingsList::new();
                    for p in run.decode_entry(e).expect("blocked entry decodes") {
                        l.push(Posting { doc: p.doc, tf: p.tf });
                    }
                    (e.handle, l)
                })
                .collect();
            let mut it = lists.iter().map(|(h, l)| (*h, l));
            let legacy = RunFile::build_legacy(run.run_id, indexer, &mut it, Codec::VarByte);
            assert_eq!(legacy.format, RunFormat::Legacy);
            legacy_sets.entry(indexer).or_default().push(legacy);
        }
    }
    let legacy_idx = Index {
        dictionary: idx.dictionary,
        run_sets: legacy_sets,
        doc_map: idx.doc_map,
        report: PipelineReport::default(),
        obs: Arc::new(ii_core::obs::Registry::new()),
    };

    let dir = std::env::temp_dir().join(format!("ii-codec-diff-legacy-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    legacy_idx.save(&dir).unwrap();

    // Downgrade the manifest to what a v1 writer produced: version 1, no
    // postings metadata on any artifact. Artifact bytes (and so their
    // CRCs) are untouched — `to_bytes` is format-preserving for legacy
    // runs.
    let mut m = Manifest::load(&dir).unwrap();
    m.version = 1;
    for a in &mut m.artifacts {
        a.postings = None;
    }
    std::fs::write(dir.join(MANIFEST_NAME), m.to_bytes()).unwrap();

    let statuses = Index::verify_dir(&dir).expect("v1 manifest verifies");
    assert!(statuses.iter().all(|s| s.ok), "every v1 artifact checksum-clean");

    let loaded = Index::open(&dir).expect("v1 index opens");
    for set in loaded.run_sets.values() {
        for run in set.runs() {
            assert_eq!(run.format, RunFormat::Legacy, "v1 wire format survived the roundtrip");
        }
    }
    assert_eq!(decoded_postings(&loaded), expected, "v1 postings decode identically");

    // And ranked retrieval over the legacy index still works end to end.
    assert!(!loaded.dictionary.entries().is_empty());
    std::fs::remove_dir_all(&dir).unwrap();
}

// ---------------------------------------------------------------------------
// Long congress-preset matrix (CI smoke via --ignored).
// ---------------------------------------------------------------------------

/// The codec sweep at a realistic scale: congress-preset collection, every
/// codec, full decoded-postings identity. Ignored by default; the
/// scheduled CI chaos job smokes it with `--ignored`.
#[test]
#[ignore = "long congress-preset codec matrix; run explicitly or via CI smoke"]
fn congress_matrix_codec_identity() {
    let spec = CollectionSpec::congress_like(0.02);
    let dir =
        std::env::temp_dir().join(format!("ii-codec-diff-congress-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let coll = Arc::new(StoredCollection::generate(spec.clone(), &dir).unwrap());

    let build_with = |codec: Codec| {
        let mut cfg = PipelineConfig::small(2, 2, 1);
        cfg.codec = codec;
        cfg.batches_per_run = spec.num_files;
        let out =
            build_index(&coll, &cfg).unwrap_or_else(|e| panic!("{codec:?} build died: {e}"));
        let dict_bytes = out.dict_bytes.clone();
        (dict_bytes, Index::from_output(out))
    };
    let (baseline_dict, baseline) = build_with(Codec::VarByte);
    let expected = decoded_postings(&baseline);
    for codec in [Codec::Bp128, Codec::PFor, Codec::EliasFano, Codec::Auto] {
        let (dict_bytes, idx) = build_with(codec);
        assert_eq!(dict_bytes, baseline_dict, "{codec:?} dict bytes");
        assert_eq!(decoded_postings(&idx), expected, "{codec:?} decoded postings");
    }
    std::fs::remove_dir_all(&dir).unwrap();
}
