//! Differential dictionary suite: the slotted-node fast path
//! (`PartialDictionary`) against the frozen reference shard
//! (`ReferenceDictionary`, the pre-slotted implementation kept
//! byte-for-byte).
//!
//! The contract under test is total behavioural identity: for any insert
//! stream — unicode-heavy surface terms, long shared prefixes, adversarial
//! streams where every key collides on the 4-byte head — both paths must
//! produce the same per-insert outcomes (same `is_new`, same postings
//! handle, i.e. the same docID/handle assignment), the same lookup
//! results, and byte-identical combined global dictionaries.
//!
//! On top of the property tests, an end-to-end check builds one corpus
//! CPU-only, GPU-only, and with a worker killed mid-build, and requires
//! all three serialized dictionaries to agree byte for byte and to match
//! a serial reference-shard replay of the same token stream.

use ii_core::corpus::{CollectionGenerator, CollectionSpec, StoredCollection};
use ii_core::dict::{
    combine_reference, insert_surface, insert_surface_reference, lookup_surface,
    lookup_surface_reference, GlobalDictionary, PartialDictionary, ReferenceDictionary,
    TRIE_ENTRIES,
};
use ii_core::pipeline::{
    build_index, PipelineConfig, SupervisorPolicy, WorkerClass, WorkerFaultPlan,
};
use ii_core::text::parse_documents;
use proptest::prelude::*;
use std::collections::BTreeSet;
use std::sync::Arc;
use std::time::Duration;

// ---------------------------------------------------------------------------
// Stream-level differential: raw (trie index, suffix) inserts.
// ---------------------------------------------------------------------------

/// Drive the same raw insert stream through both implementations, insert
/// by insert, then through combine. Panics on the first divergence.
fn assert_streams_identical(stream: &[(u32, Vec<u8>)]) {
    let mut fast = PartialDictionary::new(0);
    let mut reference = ReferenceDictionary::new(0);
    for (ti, suffix) in stream {
        let a = fast.insert_term(*ti, suffix);
        let b = reference.insert_reference(*ti, suffix);
        assert_eq!(a, b, "insert diverged on trie {ti} suffix {suffix:?}");
    }
    assert_eq!(fast.term_count(), reference.term_count());
    // The fast path yields trie indices in ascending order; the reference
    // shard iterates a HashMap. The *sets* must agree.
    let mut ref_indices: Vec<u32> = reference.trie_indices().collect();
    ref_indices.sort_unstable();
    assert_eq!(fast.trie_indices().collect::<Vec<_>>(), ref_indices);
    for (ti, suffix) in stream {
        assert_eq!(
            fast.lookup(*ti, suffix),
            reference.lookup_reference(*ti, suffix),
            "lookup diverged on trie {ti} suffix {suffix:?}"
        );
    }
    // Probe keys that were never inserted too.
    assert_eq!(fast.lookup(7, b"neverinserted"), None);
    assert_eq!(reference.lookup_reference(7, b"neverinserted"), None);

    let g_fast = GlobalDictionary::combine(&[fast]);
    let g_ref = combine_reference(&[reference]);
    let (mut fast_bytes, mut ref_bytes) = (Vec::new(), Vec::new());
    g_fast.write_to(&mut fast_bytes).unwrap();
    g_ref.write_to(&mut ref_bytes).unwrap();
    assert_eq!(fast_bytes, ref_bytes, "combined dictionary bytes diverged");
}

/// Suffix strategy for the adversarial head-collision stream: every key
/// shares the 4-byte head "wxyz" (so the branch-free head rank can never
/// settle a comparison alone), with tails from empty up to long, plus the
/// short-key family ""/"w"/"wx"/"wxy" whose heads are zero-padded.
fn head_collision_suffix() -> impl Strategy<Value = Vec<u8>> {
    (0u8..10, "[a-z]{0,10}").prop_map(|(kind, tail)| match kind {
        // Occasionally a short key whose head is zero-padded: these tie
        // with "wxyz..." on the padded head bytes only when equal, but
        // exercise the remainder-emptiness tie-break.
        0 => b"wxyz"[..usize::from(tail.len() as u8 % 5)].to_vec(),
        _ => format!("wxyz{tail}").into_bytes(),
    })
}

/// Shared-prefix strategy: long common prefixes force deep string
/// comparisons past the head on every tie.
fn shared_prefix_suffix() -> impl Strategy<Value = Vec<u8>> {
    (0u8..3, "[a-z]{1,12}").prop_map(|(kind, t)| {
        match kind {
            0 => format!("interconnectedness{}", &t[..t.len().min(4)]),
            1 => format!("inter{t}"),
            _ => t,
        }
        .into_bytes()
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn prop_head_collision_streams_are_identical(
        suffixes in proptest::collection::vec(head_collision_suffix(), 1..300),
        ti in 0u32..TRIE_ENTRIES as u32,
    ) {
        let stream: Vec<(u32, Vec<u8>)> =
            suffixes.into_iter().map(|s| (ti, s)).collect();
        assert_streams_identical(&stream);
    }

    #[test]
    fn prop_shared_prefix_streams_are_identical(
        stream in proptest::collection::vec(
            (0u32..TRIE_ENTRIES as u32, shared_prefix_suffix()),
            1..300,
        ),
    ) {
        assert_streams_identical(&stream);
    }

    #[test]
    fn prop_arbitrary_byte_streams_are_identical(
        stream in proptest::collection::vec(
            (
                0u32..TRIE_ENTRIES as u32,
                proptest::collection::vec(1u8..=255, 0..12),
            ),
            1..200,
        ),
    ) {
        // Arbitrary non-NUL bytes: exercises non-ASCII (and non-UTF-8)
        // suffixes, which the dictionary layer must store verbatim.
        assert_streams_identical(&stream);
    }
}

// ---------------------------------------------------------------------------
// Surface-level differential: classified unicode terms.
// ---------------------------------------------------------------------------

/// Unicode-heavy surface terms: ASCII word shapes mixed with multi-byte
/// scripts and astral-plane characters, all pushed through the trie
/// classifier exactly as real tokens are.
fn unicode_term() -> impl Strategy<Value = String> {
    (
        (0u8..6, "[a-z0-9]{1,14}"),
        (
            "[\u{3b1}-\u{3c9}]{1,6}",   // Greek lowercase
            "[\u{430}-\u{44f}]{1,6}",   // Cyrillic lowercase
            "[\u{4e00}-\u{4eff}]{1,4}", // CJK
        ),
    )
        .prop_map(|((kind, ascii), (greek, cyrillic, cjk))| match kind {
            0 | 1 => ascii,
            2 => greek,
            3 => cyrillic,
            4 => cjk,
            // Mixed-script term: ASCII head, multi-byte tail.
            _ => format!("{}{}", &ascii[..ascii.len().min(3)], greek),
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn prop_unicode_surface_streams_are_identical(
        terms in proptest::collection::vec(unicode_term(), 1..250),
    ) {
        let mut fast = PartialDictionary::new(3);
        let mut reference = ReferenceDictionary::new(3);
        for t in &terms {
            let a = insert_surface(&mut fast, t);
            let b = insert_surface_reference(&mut reference, t);
            prop_assert_eq!(a, b, "insert diverged on {:?}", t);
        }
        for t in &terms {
            prop_assert_eq!(
                lookup_surface(&mut fast, t),
                lookup_surface_reference(&mut reference, t),
                "lookup diverged on {:?}", t
            );
        }
        let g_fast = GlobalDictionary::combine(&[fast]);
        let g_ref = combine_reference(&[reference]);
        let (mut fb, mut rb) = (Vec::new(), Vec::new());
        g_fast.write_to(&mut fb).unwrap();
        g_ref.write_to(&mut rb).unwrap();
        prop_assert_eq!(fb, rb, "combined dictionary bytes diverged");
    }

    #[test]
    fn prop_multi_shard_combines_are_identical(
        shards in proptest::collection::vec(
            proptest::collection::vec("[a-z]{1,10}", 1..80),
            1..4,
        ),
    ) {
        // Several shards with distinct indexer IDs, combined: the global
        // merge (k-way by trie index, then suffix) must agree byte for
        // byte no matter which implementation built the shards.
        let mut fasts = Vec::new();
        let mut refs = Vec::new();
        for (id, terms) in shards.iter().enumerate() {
            let mut f = PartialDictionary::new(id as u32);
            let mut r = ReferenceDictionary::new(id as u32);
            for t in terms {
                prop_assert_eq!(
                    insert_surface(&mut f, t),
                    insert_surface_reference(&mut r, t)
                );
            }
            fasts.push(f);
            refs.push(r);
        }
        let g_fast = GlobalDictionary::combine(&fasts);
        let g_ref = combine_reference(&refs);
        let (mut fb, mut rb) = (Vec::new(), Vec::new());
        g_fast.write_to(&mut fb).unwrap();
        g_ref.write_to(&mut rb).unwrap();
        prop_assert_eq!(fb, rb, "multi-shard combine diverged");
    }
}

// ---------------------------------------------------------------------------
// End-to-end: device mix and worker death must not change dictionary bytes.
// ---------------------------------------------------------------------------

fn e2e_spec(scale_files: usize) -> CollectionSpec {
    CollectionSpec {
        name: "dict-diff".into(),
        num_files: scale_files,
        docs_per_file: 12,
        mean_doc_tokens: 70,
        vocab_size: 1200,
        zipf_s: 1.0,
        html: true,
        seed: 7171,
        shift: None,
    }
}

/// CPU-only, GPU-only, and a supervised build that loses its GPU indexer
/// mid-build all serialize the same dictionary — and that dictionary's
/// term set matches a serial reference-shard replay of the token stream.
#[test]
fn cpu_gpu_and_worker_kill_builds_share_dictionary_bytes() {
    let spec = e2e_spec(6);
    let dir = std::env::temp_dir().join(format!("ii-dict-diff-e2e-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let coll = Arc::new(StoredCollection::generate(spec.clone(), &dir).unwrap());

    // Same device count on both sides => same indexer IDs and sharding, so
    // the dictionaries must agree byte for byte (PR 1 contract, now riding
    // on the slotted fast path end to end).
    let cpu = build_index(&coll, &PipelineConfig::small(2, 1, 0)).expect("CPU-only build");
    let gpu = build_index(&coll, &PipelineConfig::small(2, 0, 1)).expect("GPU-only build");
    assert_eq!(cpu.dict_bytes, gpu.dict_bytes, "CPU vs GPU dictionary bytes");

    // Killing a worker mid-build must not change the bytes of the build it
    // degrades (shard assignment is lifetime-fixed; only the host moves).
    let mixed_cfg = PipelineConfig::small(2, 1, 1);
    let mixed = build_index(&coll, &mixed_cfg).expect("fault-free mixed build");
    let mut kill_cfg = mixed_cfg.clone();
    kill_cfg.supervision =
        SupervisorPolicy::default().with_stall_timeout(Duration::from_millis(200));
    kill_cfg.worker_faults = WorkerFaultPlan::none().kill(WorkerClass::GpuIndexer, 0, 1);
    let killed = build_index(&coll, &kill_cfg).expect("worker-kill build");
    assert_eq!(mixed.dict_bytes, killed.dict_bytes, "fault-free vs worker-kill bytes");

    // Serial reference replay: parse the same files in order and push every
    // trie-group token through the frozen reference shard. The pipeline may
    // shard terms across indexers and reorder inserts, so the comparable
    // core is the *term set*, which must match exactly.
    let gen = CollectionGenerator::new(spec.clone());
    let mut reference = ReferenceDictionary::new(0);
    for f in 0..spec.num_files {
        let batch = parse_documents(&gen.generate_file(f), spec.html, f);
        for g in &batch.groups {
            for (_, term) in g.iter_terms() {
                reference.insert_reference(g.trie_index, term);
            }
        }
    }
    let ref_terms: BTreeSet<String> = combine_reference(&[reference])
        .entries()
        .iter()
        .map(|e| e.full_term())
        .collect();
    let built_terms: BTreeSet<String> =
        cpu.dictionary.entries().iter().map(|e| e.full_term()).collect();
    assert_eq!(built_terms, ref_terms, "pipeline term set diverged from serial reference");

    std::fs::remove_dir_all(dir).unwrap();
}

/// Long congress-preset matrix: the same identity at a realistic scale and
/// across a wider fault matrix. Ignored by default; CI smokes it with
/// `--ignored` in the scheduled chaos job.
#[test]
#[ignore = "long congress-preset matrix; run explicitly or via CI smoke"]
fn congress_matrix_byte_identity() {
    let spec = CollectionSpec::congress_like(0.05);
    let dir = std::env::temp_dir().join(format!("ii-dict-diff-congress-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let coll = Arc::new(StoredCollection::generate(spec, &dir).unwrap());

    let baseline = build_index(&coll, &PipelineConfig::small(2, 2, 1)).expect("baseline build");
    let cpu_only = build_index(&coll, &PipelineConfig::small(2, 3, 0)).expect("CPU-only build");
    // Different device mixes renumber indexers, so bytes can differ
    // between mixes — but each mix must be internally deterministic and
    // the kill matrix below must reproduce the baseline mix exactly.
    assert!(!cpu_only.dict_bytes.is_empty());

    for (class, idx) in [
        (WorkerClass::Parser, 0usize),
        (WorkerClass::CpuIndexer, 1),
        (WorkerClass::GpuIndexer, 0),
    ] {
        let mut c = PipelineConfig::small(2, 2, 1);
        c.supervision =
            SupervisorPolicy::default().with_stall_timeout(Duration::from_millis(300));
        c.worker_faults = WorkerFaultPlan::none().kill(class, idx, 2);
        let out = build_index(&coll, &c)
            .unwrap_or_else(|e| panic!("kill {class} {idx}: build died: {e}"));
        assert_eq!(
            out.dict_bytes, baseline.dict_bytes,
            "dictionary bytes diverged after killing {class} {idx}"
        );
    }
    std::fs::remove_dir_all(dir).unwrap();
}
