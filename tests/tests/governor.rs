//! Memory-governor chaos: OOM pressure as a first-class fault class.
//!
//! The contract under test (DESIGN.md §13): a build under any memory
//! budget, squeezed mid-flight or not, with or without concurrent worker
//! deaths, ends in exactly one of two ways — a *logically identical*
//! index (same dictionary bytes, same term → (doc, tf) postings, same doc
//! map; only physical run boundaries may move), or a typed
//! `MemoryBudgetExceeded` refusal. Never a panic, never divergent output,
//! and the same cell always ends the same way (degradation is
//! deterministic: it keys on content-derived resident bytes probed at
//! batch boundaries, not on thread timing).

use ii_core::corpus::{CollectionSpec, StoredCollection};
use ii_core::pipeline::{
    build_index, build_index_durable, DurableOptions, GovernorPolicy, IndexOutput,
    PipelineConfig, PipelineError, WorkerClass, WorkerFaultPlan,
};
use ii_core::store::{CrashVfs, Store, StoreError};
use ii_core::Index;
use std::collections::BTreeMap;
use std::path::PathBuf;
use std::sync::Arc;

fn spec(seed: u64) -> CollectionSpec {
    CollectionSpec {
        name: format!("governor-{seed}"),
        num_files: 8,
        docs_per_file: 12,
        mean_doc_tokens: 60,
        vocab_size: 800,
        zipf_s: 1.0,
        html: false,
        seed,
        shift: None,
    }
}

fn stored(tag: &str, seed: u64) -> (Arc<StoredCollection>, PathBuf) {
    let dir = std::env::temp_dir().join(format!("ii-governor-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let s = StoredCollection::generate(spec(seed), &dir).unwrap();
    (Arc::new(s), dir)
}

fn base_cfg() -> PipelineConfig {
    let mut cfg = PipelineConfig::small(2, 1, 1);
    cfg.batches_per_run = 2;
    cfg.governor = GovernorPolicy::unlimited();
    cfg
}

/// Term -> sorted (docID, tf) postings: the logical index.
fn fingerprint(out: &IndexOutput) -> BTreeMap<String, Vec<(u32, u32)>> {
    out.dictionary
        .entries()
        .iter()
        .map(|e| {
            let l = out.run_sets[&e.indexer].fetch(e.postings);
            (e.full_term(), l.postings().iter().map(|p| (p.doc.0, p.tf)).collect())
        })
        .collect()
}

fn docmap_bytes(out: &IndexOutput) -> Vec<u8> {
    let mut dm = Vec::new();
    out.doc_map.write_to(&mut dm).unwrap();
    dm
}

/// Dictionary bytes, sorted (shard, run, encoded-run bytes), doc map.
type PhysicalFingerprint = (Vec<u8>, Vec<(u32, u32, Vec<u8>)>, Vec<u8>);

/// Every physical byte: dictionary, each run's encoding, the doc map.
/// Differs across budgets (run boundaries move); must NOT differ across
/// reruns of the same budget.
fn physical_fingerprint(out: &IndexOutput) -> PhysicalFingerprint {
    let mut runs: Vec<(u32, u32, Vec<u8>)> = out
        .run_sets
        .iter()
        .flat_map(|(id, rs)| rs.runs().iter().map(|r| (*id, r.run_id, r.to_bytes())))
        .collect();
    runs.sort();
    (out.dict_bytes.clone(), runs, docmap_bytes(out))
}

fn high_water(out: &IndexOutput) -> u64 {
    out.report.stages.gauge("governor.high_water_bytes") as u64
}

/// Budgets × squeeze schedules × a GPU kill, every cell against the
/// unconstrained baseline.
#[test]
fn budget_matrix_yields_identical_index_or_typed_refusal() {
    let (coll, dir) = stored("matrix", 901);
    let cfg = base_cfg();
    let baseline = build_index(&coll, &cfg).expect("unlimited baseline");
    let want = fingerprint(&baseline);
    let want_docmap = docmap_bytes(&baseline);
    let hw = high_water(&baseline);
    assert!(hw > 0, "accounting must run even unlimited");

    for budget in [hw * 4, hw * 2, hw, hw * 3 / 4] {
        for chaos in 0..3usize {
            let mut cell = cfg.clone();
            cell.governor = GovernorPolicy::default().with_budget(budget);
            cell.worker_faults = match chaos {
                0 => WorkerFaultPlan::none(),
                // Two mid-build squeezes, tightest wins.
                1 => WorkerFaultPlan::none()
                    .squeeze(2, budget * 3 / 4)
                    .squeeze(4, budget / 2),
                // A squeeze compounded with a GPU death: memory pressure
                // and worker failure in the same build.
                _ => WorkerFaultPlan::none()
                    .squeeze(2, budget * 3 / 4)
                    .kill(WorkerClass::GpuIndexer, 0, 3),
            };
            let ctx = format!("cell budget={budget} chaos={chaos}");
            match build_index(&coll, &cell) {
                Ok(out) => {
                    assert_eq!(out.dict_bytes, baseline.dict_bytes, "{ctx}: dictionary");
                    assert_eq!(fingerprint(&out), want, "{ctx}: postings");
                    assert_eq!(docmap_bytes(&out), want_docmap, "{ctx}: doc map");
                    // Generous un-squeezed cells must also keep the
                    // high-water under the budget (tighter cells may
                    // overshoot transiently inside a batch before the
                    // ladder reacts — that is what the CI smoke bound
                    // checks on a realistic corpus).
                    if chaos == 0 && budget >= hw * 2 {
                        assert!(
                            high_water(&out) <= budget,
                            "{ctx}: high water {} over budget",
                            high_water(&out)
                        );
                    }
                }
                Err(PipelineError::MemoryBudgetExceeded { budget: b, needed }) => {
                    assert!(b <= budget, "{ctx}: effective {b} above configured");
                    assert!(needed > 0, "{ctx}");
                    // A refusal is deterministic: the identical cell
                    // refuses identically.
                    match build_index(&coll, &cell) {
                        Err(PipelineError::MemoryBudgetExceeded {
                            budget: b2,
                            needed: n2,
                        }) => assert_eq!((b, needed), (b2, n2), "{ctx}: rerun"),
                        other => {
                            panic!("{ctx}: rerun diverged: {:?}", other.map(|_| "index"))
                        }
                    }
                }
                Err(other) => panic!("{ctx}: unexpected error {other}"),
            }
        }
    }
    std::fs::remove_dir_all(dir).unwrap();
}

/// Two runs at the same tight budget must agree on every physical byte —
/// early flushes move run boundaries deterministically, not randomly.
#[test]
fn same_budget_reruns_are_physically_identical() {
    let (coll, dir) = stored("rerun", 902);
    let cfg = base_cfg();
    let unconstrained = build_index(&coll, &cfg).expect("unlimited build");

    let mut tight = cfg.clone();
    // Force the early-flush rung on every batch without risking the abort
    // rung: a huge budget with a microscopic flush watermark.
    tight.governor =
        GovernorPolicy { budget_bytes: 512 << 20, flush_watermark: 1e-9, shed_watermark: 0.85 };
    let a = build_index(&coll, &tight).expect("pressured build");
    let b = build_index(&coll, &tight).expect("pressured rerun");
    assert!(
        a.report.stages.counter("governor.early_flushes") > 0,
        "watermark must actually trigger"
    );
    assert_eq!(physical_fingerprint(&a), physical_fingerprint(&b));
    // And the physical layout genuinely differs from the unconstrained
    // build (more, smaller runs) while the logical index does not.
    let runs = |o: &IndexOutput| o.run_sets.values().map(|rs| rs.runs().len()).sum::<usize>();
    assert!(runs(&a) > runs(&unconstrained));
    assert_eq!(fingerprint(&a), fingerprint(&unconstrained));
    std::fs::remove_dir_all(dir).unwrap();
}

/// A final commit torn by ENOSPC (every retry also failing) must leave a
/// directory `ii repair` can salvage with zero losses: everything the
/// checkpoint generation committed is intact, only the never-committed
/// final generation is gone.
#[test]
fn repair_salvages_torn_final_commit_after_disk_full() {
    let (coll, dir) = stored("repair-enospc", 903);
    let cfg = base_cfg();

    // Probe a full durable run to learn its op count; its directory also
    // serves as the reference for what a committed index holds.
    let probe = CrashVfs::probe();
    let probe_dir = dir.join("probe");
    let opts = DurableOptions::new(&probe_dir).checkpoint_every(1).with_vfs(&probe);
    build_index_durable(&coll, &cfg, &opts).expect("probe build");
    let total = probe.ops();
    assert!(total > 4, "durable build must touch storage");

    // The volume fills up two ops before the end — inside the final
    // commit, after every periodic checkpoint landed — and never frees.
    let idx_dir = dir.join("index");
    let full = CrashVfs::disk_full(total - 2, u64::MAX);
    let opts = DurableOptions::new(&idx_dir).checkpoint_every(1).with_vfs(&full);
    match build_index_durable(&coll, &cfg, &opts) {
        Err(PipelineError::Store(e)) => {
            assert!(matches!(e, StoreError::DiskFull { .. }), "{e:?}");
        }
        other => panic!("expected typed disk-full, got {:?}", other.map(|_| "index")),
    }

    // `ii repair`: every artifact of the committed checkpoint generation
    // survives validation; nothing is lost; the directory re-commits
    // clean.
    let report = Index::repair(&idx_dir).expect("repair must succeed");
    assert!(report.lost.is_empty(), "nothing committed may be lost: {:?}", report.lost);
    assert!(
        report.kept.iter().any(|n| n == "checkpoint.json"),
        "checkpoint descriptor survives: {:?}",
        report.kept
    );
    assert!(report.kept.iter().any(|n| n == "docmap.bin"), "{:?}", report.kept);
    assert!(report.kept.iter().any(|n| n.ends_with(".iipd")), "{:?}", report.kept);
    let store = Store::open(&idx_dir).expect("repaired store opens");
    for st in store.verify() {
        assert!(st.ok, "{}: {:?}", st.name, st.detail);
    }
    std::fs::remove_dir_all(dir).unwrap();
}
