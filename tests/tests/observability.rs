//! End-to-end checks of the observability layer: the per-stage breakdown a
//! build reports must *conserve* the corpus — stage byte totals equal to
//! the collection's own manifest, item counts equal to file counts — and
//! the counters must be deterministic functions of the input, independent
//! of thread scheduling.

use ii_core::corpus::{CollectionSpec, StoredCollection};
use ii_core::pipeline::{build_index, PipelineConfig, StageBreakdown};
use std::path::PathBuf;
use std::sync::Arc;

fn spec() -> CollectionSpec {
    CollectionSpec {
        name: "obs".into(),
        num_files: 4,
        docs_per_file: 25,
        mean_doc_tokens: 90,
        vocab_size: 2500,
        zipf_s: 1.0,
        html: true,
        seed: 424242,
        shift: None,
    }
}

fn stored(tag: &str) -> (Arc<StoredCollection>, PathBuf) {
    let dir = std::env::temp_dir().join(format!("ii-obs-it-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let s = StoredCollection::generate(spec(), &dir).unwrap();
    (Arc::new(s), dir)
}

#[test]
fn stage_bytes_conserve_the_corpus() {
    let (coll, dir) = stored("conserve");
    let out = build_index(&coll, &PipelineConfig::small(2, 1, 1)).expect("build");
    let stages = &out.report.stages;
    let stats = &coll.manifest.stats;

    // Read stage sees compressed container bytes, one item per file.
    let read = stages.stage("read").expect("read stage recorded");
    assert_eq!(read.bytes, stats.compressed_bytes, "read bytes != compressed corpus");
    assert_eq!(read.items, spec().num_files as u64);

    // Decompress, parse and index each see the full uncompressed corpus.
    for name in ["decompress", "parse", "index"] {
        let s = stages.stage(name).unwrap_or_else(|| panic!("{name} stage recorded"));
        assert_eq!(s.bytes, stats.uncompressed_bytes, "{name} bytes != corpus bytes");
        assert!(s.wall_seconds > 0.0, "{name} wall time must be nonzero");
    }
    assert_eq!(stages.stage("decompress").unwrap().items, spec().num_files as u64);

    // Deep counters agree with the report's own tallies.
    assert_eq!(stages.counter("pipeline.docs"), out.report.docs as u64);
    assert_eq!(stages.counter("pipeline.terms"), out.dictionary.len() as u64);
    assert_eq!(stages.counter("pipeline.files.quarantined"), 0);
    // A GPU was configured, so simulated kernel work must have been metered.
    assert!(stages.counter("gpu.warp_comparisons") > 0);
    assert!(stages.counter("gpu.h2d_bytes") > 0);
    // The 4-byte string cache resolves most comparisons (paper §III.D).
    let hit_rate = stages.cache_hit_rate().expect("CPU indexer ran");
    assert!(hit_rate > 0.5, "string cache hit rate suspiciously low: {hit_rate}");

    // Dictionary combine/write happened exactly once each.
    assert!(stages.stage("dict_combine").unwrap().items >= 1);
    assert_eq!(stages.stage("dict_write").unwrap().items, 1);
    assert_eq!(stages.stage("dict_write").unwrap().bytes, out.dict_bytes.len() as u64);
    std::fs::remove_dir_all(dir).unwrap();
}

#[test]
fn breakdown_counters_are_deterministic_across_configs() {
    // Wall times vary run to run; every byte/item/work counter must not.
    let (coll, dir) = stored("det");
    let deterministic = |b: &StageBreakdown| {
        let mut v: Vec<(String, u64, u64)> = b
            .snapshot
            .stages
            .iter()
            .map(|(name, s)| (name.clone(), s.bytes, s.items))
            .collect();
        for (name, value) in &b.snapshot.counters {
            v.push((name.clone(), *value, 0));
        }
        v
    };
    let base = build_index(&coll, &PipelineConfig::small(1, 1, 1)).expect("build");
    for parsers in [2usize, 4] {
        let out = build_index(&coll, &PipelineConfig::small(parsers, 1, 1)).expect("build");
        assert_eq!(
            deterministic(&out.report.stages),
            deterministic(&base.report.stages),
            "{parsers} parsers changed deterministic counters"
        );
    }
    std::fs::remove_dir_all(dir).unwrap();
}

#[test]
fn rendered_table_and_json_expose_the_breakdown() {
    let (coll, dir) = stored("render");
    let out = build_index(&coll, &PipelineConfig::small(2, 1, 0)).expect("build");
    let table = out.report.stages.render_table();
    for name in ["read", "decompress", "parse", "index", "string cache"] {
        assert!(table.contains(name), "table missing {name}:\n{table}");
    }
    let json = out.report.stages.snapshot.to_json();
    for key in ["\"stages\"", "\"counters\"", "\"pipeline.docs\"", "\"wall_seconds\""] {
        assert!(json.contains(key), "json missing {key}");
    }
    std::fs::remove_dir_all(dir).unwrap();
}

#[test]
fn query_metrics_accumulate_per_index() {
    let (coll, dir) = stored("query");
    let out = build_index(&coll, &PipelineConfig::small(1, 1, 0)).expect("build");
    let index = ii_core::Index::from_output(out);
    assert_eq!(index.obs.snapshot().counters.get("query.postings_scanned"), None);
    let hits = index.search("information");
    let snap = index.obs.snapshot();
    let scanned = snap.counters.get("query.postings_scanned").copied().unwrap_or(0);
    if !hits.is_empty() {
        assert!(scanned > 0, "hits returned but no postings metered");
    }
    let q = snap.stages.get("query").expect("query stage recorded");
    assert_eq!(q.items, 1);
    std::fs::remove_dir_all(dir).unwrap();
}
