//! Chaos suite: fault injection against the full pipeline.
//!
//! Uses the ii-corpus `FaultPlan` harness to corrupt container files in
//! controlled, seeded ways and asserts the pipeline's recovery contract:
//! skip-file builds quarantine exactly the injected files and index
//! everything else with unchanged docIDs and postings; fail-fast builds
//! abort with a typed error naming the file; transient faults below the
//! retry budget are invisible in the output.

use ii_core::corpus::{CollectionSpec, FaultKind, FaultPlan, StoredCollection};
use ii_core::pipeline::{
    build_index, FaultClass, FaultPolicy, IndexOutput, PipelineConfig, PipelineError,
};
use std::collections::BTreeMap;
use std::path::{Path, PathBuf};
use std::sync::Arc;

fn spec(num_files: usize) -> CollectionSpec {
    CollectionSpec {
        name: "chaos".into(),
        num_files,
        docs_per_file: 12,
        mean_doc_tokens: 60,
        vocab_size: 800,
        zipf_s: 1.0,
        html: false,
        seed: 777,
        shift: None,
    }
}

fn stored(tag: &str, num_files: usize) -> (Arc<StoredCollection>, PathBuf) {
    let dir = std::env::temp_dir().join(format!("ii-chaos-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let s = StoredCollection::generate(spec(num_files), &dir).unwrap();
    (Arc::new(s), dir)
}

fn faulty(dir: &Path, plan: FaultPlan) -> Arc<StoredCollection> {
    Arc::new(StoredCollection::open(dir).unwrap().with_faults(plan))
}

fn skip_cfg(parsers: usize) -> PipelineConfig {
    let mut cfg = PipelineConfig::small(parsers, 1, 1);
    cfg.fault_policy = FaultPolicy::skip_file();
    cfg
}

/// Every chaos build — clean or degraded — must still produce a
/// structurally valid combined dictionary (ii-dict's verify pass).
fn assert_dict_valid(out: &IndexOutput, ctx: &str) {
    let violations = ii_core::dict::verify_global(&out.dictionary);
    assert!(violations.is_empty(), "{ctx}: dictionary invariants violated: {violations:?}");
}

/// Term -> sorted (docID, tf) postings for the whole index.
fn fingerprint(out: &IndexOutput) -> BTreeMap<String, Vec<(u32, u32)>> {
    out.dictionary
        .entries()
        .iter()
        .map(|e| {
            let l = out.run_sets[&e.indexer].fetch(e.postings);
            (e.full_term(), l.postings().iter().map(|p| (p.doc.0, p.tf)).collect())
        })
        .collect()
}

/// The clean fingerprint with every posting of the dropped files removed
/// (and then-empty terms dropped). Because a quarantined file keeps an
/// empty docID slot, surviving docIDs are directly comparable.
fn restrict(
    clean: &BTreeMap<String, Vec<(u32, u32)>>,
    clean_out: &IndexOutput,
    dropped_files: &[usize],
) -> BTreeMap<String, Vec<(u32, u32)>> {
    let ranges: Vec<(u32, u32)> = clean_out
        .doc_map
        .entries()
        .iter()
        .filter(|e| dropped_files.contains(&(e.file_idx as usize)))
        .map(|e| (e.first_doc, e.first_doc + e.n_docs))
        .collect();
    clean
        .iter()
        .filter_map(|(term, posts)| {
            let kept: Vec<(u32, u32)> = posts
                .iter()
                .filter(|(doc, _)| !ranges.iter().any(|(lo, hi)| (*lo..*hi).contains(doc)))
                .copied()
                .collect();
            (!kept.is_empty()).then_some((term.clone(), kept))
        })
        .collect()
}

#[test]
fn skip_file_at_every_position_matches_clean_build_restricted() {
    let n = 5;
    let (clean_coll, dir) = stored("every-pos", n);
    let clean = build_index(&clean_coll, &skip_cfg(2)).expect("clean build");
    assert!(clean.report.faults.is_clean());
    assert_dict_valid(&clean, "clean build");
    let clean_fp = fingerprint(&clean);
    for bad in 0..n {
        let coll = faulty(&dir, FaultPlan::new(100 + bad as u64).with_fault(bad, FaultKind::Garbage));
        let out = build_index(&coll, &skip_cfg(2))
            .unwrap_or_else(|e| panic!("skip-file build died at position {bad}: {e}"));
        assert_dict_valid(&out, &format!("file {bad} quarantined"));
        assert_eq!(out.report.faults.quarantined_files(), vec![bad]);
        assert_eq!(
            fingerprint(&out),
            restrict(&clean_fp, &clean, &[bad]),
            "surviving postings diverged with file {bad} quarantined"
        );
        // Surviving docIDs are exactly the clean build's IDs.
        assert_eq!(out.doc_map.entries()[bad].n_docs, 0);
        for (i, e) in out.doc_map.entries().iter().enumerate() {
            if i != bad {
                assert_eq!(e.first_doc, clean.doc_map.entries()[i].first_doc, "file {i}");
            }
        }
    }
    std::fs::remove_dir_all(dir).unwrap();
}

#[test]
fn ten_percent_injection_quarantines_exactly_the_injected_files() {
    // The acceptance scenario: 10% of files corrupted, skip-file policy.
    let n = 10;
    let (_, dir) = stored("ten-pct", n);
    let plan = FaultPlan::sprinkle(2024, n, 0.10, FaultKind::Garbage);
    let injected = plan.faulty_files();
    assert_eq!(injected.len(), 1, "10% of {n} files");
    let coll = faulty(&dir, plan);
    let out = build_index(&coll, &skip_cfg(3)).expect("10% injection must not kill the build");
    assert_dict_valid(&out, "10% injection");
    assert_eq!(out.report.faults.quarantined_files(), injected);
    let clean_coll = Arc::new(StoredCollection::open(&dir).unwrap());
    let clean = build_index(&clean_coll, &skip_cfg(3)).expect("clean build");
    assert_eq!(fingerprint(&out), restrict(&fingerprint(&clean), &clean, &injected));
    let lost: u32 = injected.len() as u32 * 12;
    assert_eq!(out.report.docs, clean.report.docs - lost);
    std::fs::remove_dir_all(dir).unwrap();
}

#[test]
fn fail_fast_aborts_with_a_typed_error_naming_the_file() {
    let (_, dir) = stored("fail-fast", 4);
    let coll = faulty(&dir, FaultPlan::new(5).with_fault(2, FaultKind::Truncate));
    let cfg = PipelineConfig::small(2, 1, 0); // default policy = fail fast
    match build_index(&coll, &cfg) {
        Ok(_) => panic!("fail-fast build must abort on a truncated container"),
        Err(PipelineError::File(fault)) => {
            assert_eq!(fault.file_idx, 2);
            assert_eq!(fault.class, FaultClass::Permanent);
        }
        Err(other) => panic!("expected a file fault, got: {other}"),
    }
    std::fs::remove_dir_all(dir).unwrap();
}

#[test]
fn quarantine_output_is_deterministic_across_parser_counts() {
    let (_, dir) = stored("det", 6);
    let mut fps = Vec::new();
    for parsers in [1usize, 2, 4] {
        let coll = faulty(
            &dir,
            FaultPlan::new(6)
                .with_fault(1, FaultKind::Garbage)
                .with_fault(4, FaultKind::Truncate),
        );
        let out = build_index(&coll, &skip_cfg(parsers)).expect("skip-file build");
        assert_dict_valid(&out, &format!("{parsers} parsers"));
        assert_eq!(out.report.faults.quarantined_files(), vec![1, 4]);
        fps.push(fingerprint(&out));
    }
    assert_eq!(fps[0], fps[1]);
    assert_eq!(fps[0], fps[2]);
    std::fs::remove_dir_all(dir).unwrap();
}

#[test]
fn recovered_transient_faults_leave_no_trace_in_the_output() {
    let (clean_coll, dir) = stored("transient", 4);
    let cfg = PipelineConfig::small(2, 1, 1); // fail-fast: recovery must succeed
    let clean = build_index(&clean_coll, &cfg).expect("clean build");
    let coll = faulty(
        &dir,
        FaultPlan::new(7)
            .with_fault(0, FaultKind::TransientRead { failures: 1 })
            .with_fault(2, FaultKind::TransientRead { failures: 2 }),
    );
    let out = build_index(&coll, &cfg).expect("transient faults under the retry budget");
    assert_dict_valid(&out, "recovered transients");
    assert_eq!(out.dict_bytes, clean.dict_bytes, "dictionary must be byte-identical");
    assert_eq!(fingerprint(&out), fingerprint(&clean));
    assert!(out.report.faults.retries >= 3);
    assert!(out.report.faults.quarantined.is_empty());
    std::fs::remove_dir_all(dir).unwrap();
}

#[test]
fn exhausted_transient_budget_quarantines_as_transient() {
    let (_, dir) = stored("exhausted", 3);
    // Far more failures than sampling + parsing can retry through.
    let coll = faulty(&dir, FaultPlan::new(8).with_fault(1, FaultKind::TransientRead { failures: 50 }));
    let mut cfg = skip_cfg(2);
    cfg.fault_policy = cfg.fault_policy.with_max_retries(2);
    let out = build_index(&coll, &cfg).expect("skip-file build");
    assert_dict_valid(&out, "exhausted retry budget");
    assert_eq!(out.report.faults.quarantined_files(), vec![1]);
    let fault = &out.report.faults.quarantined[0];
    assert_eq!(fault.class, FaultClass::Transient);
    assert_eq!(fault.retries, 2, "gave up after the retry budget");
    std::fs::remove_dir_all(dir).unwrap();
}

#[test]
fn injected_panic_is_contained_and_reported() {
    let (clean_coll, dir) = stored("panic", 4);
    let clean = build_index(&clean_coll, &skip_cfg(2)).expect("clean build");
    let coll = faulty(&dir, FaultPlan::new(9).with_fault(3, FaultKind::Panic));
    let out = build_index(&coll, &skip_cfg(2)).expect("panic must be contained");
    assert_dict_valid(&out, "contained panic");
    assert_eq!(out.report.faults.quarantined_files(), vec![3]);
    assert_eq!(out.report.faults.quarantined[0].class, FaultClass::Panic);
    assert_eq!(out.report.faults.parser_panics, 1);
    assert_eq!(fingerprint(&out), restrict(&fingerprint(&clean), &clean, &[3]));
    std::fs::remove_dir_all(dir).unwrap();
}

#[test]
fn kill_during_save_keeps_committed_index_intact() {
    use ii_core::store::{CrashMode, CrashVfs};
    use ii_core::Index;

    let (coll_a, dir_a) = stored("kill-save-a", 3);
    let first = Index::from_output(build_index(&coll_a, &skip_cfg(2)).expect("first build"));
    let (coll_b, dir_b) = stored("kill-save-b", 4);
    let second = Index::from_output(build_index(&coll_b, &skip_cfg(2)).expect("second build"));

    let out_dir =
        std::env::temp_dir().join(format!("ii-chaos-kill-save-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&out_dir);
    first.save(&out_dir).expect("commit the first index");
    let committed = Index::open(&out_dir).expect("committed index opens");
    assert_eq!(committed.num_terms(), first.num_terms());

    // Kill an overwriting save mid-way with a torn final write: the torn
    // bytes must stay invisible behind the still-committed first manifest.
    let crash = CrashVfs::new(7, CrashMode::TornWrite, 42);
    assert!(second.save_with(&out_dir, &crash).is_err(), "torn save must error");
    assert!(crash.crashed());
    let survivor = Index::open(&out_dir).expect("first index must survive the kill");
    assert_eq!(survivor.num_terms(), first.num_terms());
    let probe = first.dictionary.entries().first().unwrap().full_term();
    assert_eq!(
        survivor.postings_stemmed(&probe),
        first.postings_stemmed(&probe),
        "postings unchanged after killed overwrite"
    );

    // A clean retry of the interrupted save then fully replaces it.
    second.save(&out_dir).expect("retried save");
    let replaced = Index::open(&out_dir).expect("second index committed");
    assert_eq!(replaced.num_terms(), second.num_terms());
    for d in [dir_a, dir_b, out_dir] {
        std::fs::remove_dir_all(d).unwrap();
    }
}
