//! Differential sweep: one synthetic corpus pushed through every
//! independent indexing implementation in the repo must yield the same
//! logical index.
//!
//! Paths compared against the full pipeline:
//!   * a CPU-only build vs a GPU-only build (same dictionary **bytes**);
//!   * the single-pass MapReduce baseline (`spmr_index`);
//!   * the classic sort-based external-memory baseline (`sort_based_index`).
//!
//! (`ivory_index` and `spimi_index` are covered in end_to_end.rs.)
//!
//! Intentional divergences — documented, not bugs:
//!   * Baselines return term → full postings list with no run structure,
//!     so only the `(term, [(doc, tf)])` mapping is comparable; run counts,
//!     runs-per-indexer and dictionary encodings have no baseline analogue.
//!   * Baselines never quarantine: differential equality is only defined
//!     on clean (fault-free) corpora.
//!   * All implementations share ii-text's tokenizer/stemmer/stop list by
//!     design, so the comparison isolates the indexing strategy; a token
//!     split mismatch here would show up as a *term set* difference.

use ii_baselines::{sort_based_index, spmr_index, MapReduceConfig};
use ii_core::corpus::{CollectionGenerator, CollectionSpec, RawDocument, StoredCollection};
use ii_core::pipeline::{build_index, IndexOutput, PipelineConfig};
use std::collections::BTreeMap;
use std::path::PathBuf;
use std::sync::Arc;

fn spec() -> CollectionSpec {
    CollectionSpec {
        name: "differential".into(),
        num_files: 3,
        docs_per_file: 30,
        mean_doc_tokens: 100,
        vocab_size: 3000,
        zipf_s: 1.0,
        html: true,
        seed: 9090,
        shift: None,
    }
}

fn stored(tag: &str) -> (Arc<StoredCollection>, PathBuf) {
    let dir = std::env::temp_dir().join(format!("ii-diff-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let s = StoredCollection::generate(spec(), &dir).unwrap();
    (Arc::new(s), dir)
}

/// Term -> sorted (docID, tf) pairs: the comparable core of any index.
fn pipeline_fingerprint(out: &IndexOutput) -> BTreeMap<String, Vec<(u32, u32)>> {
    out.dictionary
        .entries()
        .iter()
        .map(|e| {
            let l = out.run_sets[&e.indexer].fetch(e.postings);
            (e.full_term(), l.postings().iter().map(|p| (p.doc.0, p.tf)).collect())
        })
        .collect()
}

fn baseline_fingerprint(
    idx: &ii_baselines::BaselineIndex,
) -> BTreeMap<String, Vec<(u32, u32)>> {
    idx.postings
        .iter()
        .map(|(t, l)| (t.clone(), l.postings().iter().map(|p| (p.doc.0, p.tf)).collect()))
        .collect()
}

#[test]
fn cpu_only_and_gpu_only_builds_are_byte_identical() {
    let (coll, dir) = stored("cpu-vs-gpu");
    let cpu = build_index(&coll, &PipelineConfig::small(2, 1, 0)).expect("CPU build");
    let gpu = build_index(&coll, &PipelineConfig::small(2, 0, 1)).expect("GPU build");
    // Same device count on both sides => same indexer IDs, same postings
    // handles (proven per-batch by invariants.rs); the serialized
    // dictionaries must therefore agree byte for byte.
    assert_eq!(cpu.dict_bytes, gpu.dict_bytes, "dictionary bytes diverged");
    assert_eq!(pipeline_fingerprint(&cpu), pipeline_fingerprint(&gpu));
    // And the GPU side really ran on the simulator.
    assert!(gpu.report.stages.counter("gpu.warp_comparisons") > 0);
    assert_eq!(cpu.report.stages.counter("gpu.warp_comparisons"), 0);
    std::fs::remove_dir_all(dir).unwrap();
}

#[test]
fn pipeline_agrees_with_spmr_baseline() {
    let (coll, dir) = stored("vs-spmr");
    let out = build_index(&coll, &PipelineConfig::small(2, 1, 1)).expect("build");
    let gen = CollectionGenerator::new(spec());
    let splits: Vec<Vec<RawDocument>> =
        (0..spec().num_files).map(|f| gen.generate_file(f)).collect();
    let (reference, stats) = spmr_index(&splits, true, MapReduceConfig::default());
    assert!(stats.pairs_emitted > 0);
    assert_eq!(
        pipeline_fingerprint(&out),
        baseline_fingerprint(&reference),
        "pipeline and single-pass MapReduce baseline diverged"
    );
    std::fs::remove_dir_all(dir).unwrap();
}

#[test]
fn pipeline_agrees_with_sort_based_baseline() {
    let (coll, dir) = stored("vs-sort");
    let out = build_index(&coll, &PipelineConfig::small(3, 2, 0)).expect("build");
    let gen = CollectionGenerator::new(spec());
    let flat: Vec<RawDocument> =
        (0..spec().num_files).flat_map(|f| gen.generate_file(f)).collect();
    // Tiny triple budget: force many external-memory runs.
    let (reference, stats) = sort_based_index(&flat, true, 700);
    assert!(stats.runs > 2, "budget should force multiple runs, got {}", stats.runs);
    assert_eq!(
        pipeline_fingerprint(&out),
        baseline_fingerprint(&reference),
        "pipeline and sort-based baseline diverged"
    );
    std::fs::remove_dir_all(dir).unwrap();
}

/// Serialized run files keyed by (indexer, run id).
type RunBytes = Vec<(u32, u32, Vec<u8>)>;

/// Serialized index bytes: dictionary, every run file, and the doc map.
fn index_bytes(out: &IndexOutput) -> (Vec<u8>, RunBytes, Vec<u8>) {
    let mut runs: RunBytes = out
        .run_sets
        .iter()
        .flat_map(|(id, rs)| rs.runs().iter().map(|r| (*id, r.run_id, r.to_bytes())))
        .collect();
    runs.sort();
    let mut dm = Vec::new();
    out.doc_map.write_to(&mut dm).unwrap();
    (out.dict_bytes.clone(), runs, dm)
}

/// The PR-4 hot-path contract: a full `build_index` through the
/// zero-allocation parser is byte-identical — dictionary bytes, every run
/// file, doc map, and the logical term → postings view — to one through
/// the retained naive reference parser.
#[test]
fn optimized_and_reference_parsers_build_identical_indexes() {
    let (coll, dir) = stored("ref-parser");
    let optimized = build_index(&coll, &PipelineConfig::small(2, 1, 1)).expect("hot-path build");
    let reference = build_index(
        &coll,
        &PipelineConfig { reference_parser: true, ..PipelineConfig::small(2, 1, 1) },
    )
    .expect("reference build");
    assert_eq!(
        index_bytes(&optimized),
        index_bytes(&reference),
        "hot-path parser changed the serialized index"
    );
    assert_eq!(pipeline_fingerprint(&optimized), pipeline_fingerprint(&reference));
    std::fs::remove_dir_all(dir).unwrap();
}
