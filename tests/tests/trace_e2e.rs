//! End-to-end trace coverage on the congress preset: a traced build must
//! produce a timeline for *every* worker — each parser thread, the driver,
//! and each logical indexer — with the right span kinds on each, the
//! exported Chrome JSON must round-trip exactly, and the derived report's
//! utilization/stall attribution must sum to wall time on every worker.

use ii_core::corpus::{CollectionSpec, StoredCollection};
use ii_core::obs::{Trace, TraceKind, TraceReport};
use ii_core::pipeline::{build_index, PipelineConfig};
use std::sync::Arc;

const PARSERS: usize = 2;
const CPUS: usize = 1;
const GPUS: usize = 1;

fn traced_build() -> (Trace, std::path::PathBuf) {
    let dir = std::env::temp_dir().join(format!("ii-trace-e2e-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    // The congress preset at a scale small enough for a test: keep the
    // document shape (long congressional records, HTML), shrink the counts.
    let mut spec = CollectionSpec::congress_like(0.5);
    spec.num_files = 6;
    spec.docs_per_file = 20;
    let coll = Arc::new(StoredCollection::generate(spec, &dir).unwrap());
    let mut cfg = PipelineConfig::small(PARSERS, CPUS, GPUS);
    cfg.trace.enabled = true;
    let out = build_index(&coll, &cfg).expect("traced build");
    (out.report.trace.expect("trace present when enabled"), dir)
}

fn kinds_of(trace: &Trace, worker: &str) -> Vec<TraceKind> {
    let w = trace
        .workers
        .iter()
        .find(|w| w.name == worker)
        .unwrap_or_else(|| panic!("worker '{worker}' missing from trace"));
    w.events.iter().map(|e| e.kind).collect()
}

#[test]
fn congress_trace_covers_every_worker_and_round_trips() {
    let (trace, dir) = traced_build();

    // Every pipeline worker shows up: the driver, each parser thread, and
    // each logical indexer timeline.
    let names: Vec<&str> = trace.workers.iter().map(|w| w.name.as_str()).collect();
    assert!(names.contains(&"driver"), "driver timeline missing: {names:?}");
    for p in 0..PARSERS {
        assert!(names.contains(&format!("parser-{p}").as_str()), "parser-{p} missing");
    }
    for c in 0..CPUS {
        assert!(names.contains(&format!("cpu-{c}").as_str()), "cpu-{c} missing");
    }
    for g in 0..GPUS {
        assert!(names.contains(&format!("gpu-{g}").as_str()), "gpu-{g} missing");
    }

    // Each worker records the right span kinds. Parsers read, decompress
    // and parse; the driver samples, indexes, flushes and writes the
    // dictionary; indexers index and flush.
    for p in 0..PARSERS {
        let kinds = kinds_of(&trace, &format!("parser-{p}"));
        assert!(kinds.contains(&TraceKind::Read), "parser-{p} never read");
        assert!(kinds.contains(&TraceKind::Decompress), "parser-{p} never decompressed");
        assert!(kinds.contains(&TraceKind::Parse), "parser-{p} never parsed");
    }
    let driver = kinds_of(&trace, "driver");
    for k in [
        TraceKind::Sample,
        TraceKind::Index,
        TraceKind::Flush,
        TraceKind::DictCombine,
        TraceKind::DictWrite,
    ] {
        assert!(driver.contains(&k), "driver has no {k:?} span");
    }
    for w in ["cpu-0", "gpu-0"] {
        let kinds = kinds_of(&trace, w);
        assert!(kinds.contains(&TraceKind::Index), "{w} never indexed");
        assert!(kinds.contains(&TraceKind::Flush), "{w} never flushed");
    }

    // GPU indexing spans carry simulated kernel counters.
    let gpu = trace.workers.iter().find(|w| w.name == "gpu-0").unwrap();
    let gpu_args = gpu
        .events
        .iter()
        .filter(|e| e.kind == TraceKind::Index)
        .filter_map(|e| e.gpu)
        .collect::<Vec<_>>();
    assert!(!gpu_args.is_empty(), "gpu index spans carry no kernel counters");
    assert!(gpu_args.iter().any(|g| g.warp_comparisons > 0), "no warp comparisons metered");

    // Queue gauges were sampled for every parser buffer.
    for p in 0..PARSERS {
        assert!(
            trace.gauges.iter().any(|g| g.name == format!("queue.parser-{p}")),
            "queue gauge for parser-{p} missing"
        );
    }

    // The exported Chrome JSON parses back to an identical trace.
    let json = trace.to_chrome_json();
    assert!(json.contains("\"traceEvents\""));
    let back = Trace::from_chrome_json(&json).expect("exported JSON parses");
    assert_eq!(back, trace, "chrome export does not round-trip");

    // The report's invariants hold: spans well-formed, busy time on every
    // worker, attribution summing to wall within tolerance.
    let report = TraceReport::from_trace(&trace);
    report.check(&trace).expect("trace report check");
    for w in &report.workers {
        assert_eq!(w.busy_ns + w.stall_ns + w.idle_ns, w.wall_ns, "{} attribution", w.name);
    }
    // The rendered report names every worker and a critical stage.
    let rendered = report.render(&trace, 100);
    for w in &trace.workers {
        assert!(rendered.contains(&w.name), "render omits {}", w.name);
    }
    assert!(rendered.contains("critical stage:"), "render omits the critical stage");

    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn disabled_tracing_reports_no_trace() {
    let dir = std::env::temp_dir().join(format!("ii-trace-e2e-off-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let mut spec = CollectionSpec::congress_like(0.5);
    spec.num_files = 2;
    spec.docs_per_file = 8;
    let coll = Arc::new(StoredCollection::generate(spec, &dir).unwrap());
    let out = build_index(&coll, &PipelineConfig::small(2, 1, 1)).expect("build");
    assert!(out.report.trace.is_none(), "tracing off must not produce a trace");
    std::fs::remove_dir_all(&dir).unwrap();
}
