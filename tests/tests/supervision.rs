//! Supervision chaos suite: worker kills and stalls against the full
//! pipeline.
//!
//! The degradation contract under test: killing or stalling any worker —
//! parser thread, CPU indexer executor, GPU indexer — at any pipeline
//! stage lets the build complete in a degraded mode whose final index is
//! **byte-identical** to the fault-free build (same dictionary encoding,
//! same sealed runs, same doc map). Shard assignment is lifetime-fixed;
//! only the *host* of a shard moves on death, so the artifacts a shard
//! emits cannot change.

use ii_core::corpus::{CollectionSpec, StoredCollection};
use ii_core::pipeline::{
    build_index, IndexOutput, PipelineConfig, SupervisorPolicy, WorkerClass, WorkerFaultPlan,
};
use proptest::prelude::*;
use std::path::PathBuf;
use std::sync::{Arc, OnceLock};
use std::time::Duration;

fn spec(num_files: usize) -> CollectionSpec {
    CollectionSpec {
        name: "supervision".into(),
        num_files,
        docs_per_file: 10,
        mean_doc_tokens: 50,
        vocab_size: 600,
        zipf_s: 1.0,
        html: false,
        seed: 4242,
        shift: None,
    }
}

fn stored(tag: &str, num_files: usize) -> (Arc<StoredCollection>, PathBuf) {
    let dir = std::env::temp_dir().join(format!("ii-supervision-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let s = StoredCollection::generate(spec(num_files), &dir).unwrap();
    (Arc::new(s), dir)
}

/// 2 parsers, 2 CPU indexers, 1 GPU — every worker class present — with a
/// watchdog timeout short enough for tests to exercise stall death.
fn chaos_cfg() -> PipelineConfig {
    let mut cfg = PipelineConfig::small(2, 2, 1);
    cfg.supervision = SupervisorPolicy::default().with_stall_timeout(Duration::from_millis(200));
    cfg
}

/// (dictionary bytes, sorted sealed-run encodings, doc-map bytes) — the
/// byte-level identity of a build.
type Fp = (Vec<u8>, Vec<(u32, u32, Vec<u8>)>, Vec<u8>);

fn fingerprint(out: &IndexOutput) -> Fp {
    let mut runs: Vec<(u32, u32, Vec<u8>)> = out
        .run_sets
        .iter()
        .flat_map(|(id, rs)| rs.runs().iter().map(|r| (*id, r.run_id, r.to_bytes())))
        .collect();
    runs.sort();
    let mut dm = Vec::new();
    out.doc_map.write_to(&mut dm).unwrap();
    (out.dict_bytes.clone(), runs, dm)
}

#[test]
fn kill_matrix_every_worker_class_at_every_stage() {
    let n = 9;
    let (coll, dir) = stored("kill-matrix", n);
    let cfg = chaos_cfg();
    let baseline = build_index(&coll, &cfg).expect("fault-free build");
    assert!(baseline.report.supervision.is_clean());
    let base_fp = fingerprint(&baseline);

    // Kill each worker of each class early, mid-build, and late. (A kill
    // point a worker never reaches — e.g. parser 1 and file 0 — is simply
    // a clean build; identity must hold either way.)
    for at in [0usize, n / 2, n - 1] {
        for (class, count) in [
            (WorkerClass::Parser, 2usize),
            (WorkerClass::CpuIndexer, 2),
            (WorkerClass::GpuIndexer, 1),
        ] {
            for idx in 0..count {
                let mut c = cfg.clone();
                c.worker_faults = WorkerFaultPlan::none().kill(class, idx, at);
                let out = build_index(&coll, &c)
                    .unwrap_or_else(|e| panic!("kill {class} {idx} at {at}: build died: {e}"));
                assert_eq!(
                    fingerprint(&out),
                    base_fp,
                    "index diverged after killing {class} {idx} at stage {at}"
                );
                assert!(
                    out.report.supervision.lossy_incidents.is_empty(),
                    "clean-boundary kills must be lossless"
                );
            }
        }
    }
    std::fs::remove_dir_all(dir).unwrap();
}

#[test]
fn stall_matrix_watchdog_death_and_tolerated_hiccups() {
    let n = 8;
    let (coll, dir) = stored("stall-matrix", n);
    let cfg = chaos_cfg();
    let baseline = build_index(&coll, &cfg).expect("fault-free build");
    let base_fp = fingerprint(&baseline);

    // A parser stalled past the watchdog timeout is declared dead and its
    // files are re-ingested inline — at every stage.
    for at in [0usize, n / 2] {
        let mut c = cfg.clone();
        c.worker_faults =
            WorkerFaultPlan::none().stall(WorkerClass::Parser, 0, at, Duration::from_millis(600));
        let out = build_index(&coll, &c).expect("stalled-parser build");
        assert_eq!(fingerprint(&out), base_fp, "stall at {at} diverged");
        let sup = &out.report.supervision;
        assert!(sup.deaths_of(WorkerClass::Parser) >= 1, "{}", sup.summary());
        assert!(sup.inline_parsed_files >= 1, "{}", sup.summary());
    }

    // An indexer hiccup below the timeout is tolerated, not a death.
    let mut c = cfg.clone();
    c.worker_faults =
        WorkerFaultPlan::none().stall(WorkerClass::CpuIndexer, 0, 2, Duration::from_millis(20));
    let out = build_index(&coll, &c).expect("hiccup build");
    assert_eq!(fingerprint(&out), base_fp);
    assert!(out.report.supervision.deaths.is_empty(), "a hiccup is not a death");

    // A GPU indexer stalled past the timeout is a death: salvage + CPU
    // takeover, still byte-identical.
    let mut c = cfg.clone();
    c.worker_faults =
        WorkerFaultPlan::none().stall(WorkerClass::GpuIndexer, 0, 2, Duration::from_millis(500));
    let out = build_index(&coll, &c).expect("stalled-GPU build");
    assert_eq!(fingerprint(&out), base_fp);
    let sup = &out.report.supervision;
    assert_eq!(sup.deaths_of(WorkerClass::GpuIndexer), 1, "{}", sup.summary());
    assert!(sup.gpu_takeovers >= 1, "{}", sup.summary());
    std::fs::remove_dir_all(dir).unwrap();
}

#[test]
fn compound_failures_degrade_all_the_way_to_the_driver() {
    // Kill every indexer — both CPU executors and the GPU. The build must
    // finish with shards hosted on the driver thread, byte-identically.
    let n = 6;
    let (coll, dir) = stored("compound", n);
    let cfg = chaos_cfg();
    let baseline = build_index(&coll, &cfg).expect("fault-free build");
    let mut c = cfg.clone();
    c.worker_faults = WorkerFaultPlan::none()
        .kill(WorkerClass::CpuIndexer, 0, 1)
        .kill(WorkerClass::CpuIndexer, 1, 2)
        .kill(WorkerClass::GpuIndexer, 0, 3)
        .kill(WorkerClass::Parser, 0, 4);
    let out = build_index(&coll, &c).expect("total indexer loss must still complete");
    assert_eq!(fingerprint(&out), fingerprint(&baseline));
    let sup = &out.report.supervision;
    assert_eq!(sup.deaths.len(), 4, "{}", sup.summary());
    assert!(sup.fallback_seconds > 0.0, "shards must have run on the driver");
    std::fs::remove_dir_all(dir).unwrap();
}

/// Shared fault-free baseline for the property tests (built once).
fn proptest_base() -> &'static (Arc<StoredCollection>, Fp) {
    static BASE: OnceLock<(Arc<StoredCollection>, Fp)> = OnceLock::new();
    BASE.get_or_init(|| {
        let (coll, _dir) = stored("proptest", 8);
        let out = build_index(&coll, &chaos_cfg()).expect("fault-free baseline");
        let fp = fingerprint(&out);
        (coll, fp)
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Any seeded worker-kill/stall schedule — including ones that kill
    /// every indexer (the driver hosts the orphaned shards) or every
    /// parser (the driver re-ingests their files inline) — produces a
    /// byte-identical index.
    #[test]
    fn seeded_fault_schedules_preserve_byte_identity(seed in any::<u64>()) {
        let (coll, base_fp) = proptest_base();
        let mut cfg = chaos_cfg();
        cfg.worker_faults = WorkerFaultPlan::seeded(seed, 2, 2, 1, 8, 3);
        let out = build_index(coll, &cfg).expect("chaos build must complete");
        prop_assert_eq!(&fingerprint(&out), base_fp, "seed {} diverged", seed);
        prop_assert!(out.report.supervision.lossy_incidents.is_empty());
    }
}

/// The CI `chaos-degradation` smoke: the kill matrix on the congress
/// preset (HTML documents, realistic vocabulary). Heavier than the tiny
/// matrices above, so it only runs when asked for:
/// `cargo test -p ii-integration-tests --test supervision -- --ignored`.
#[test]
#[ignore = "chaos-degradation smoke; run explicitly with -- --ignored"]
fn congress_preset_chaos_matrix() {
    let dir = std::env::temp_dir().join(format!("ii-supervision-congress-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let mut s = CollectionSpec::congress_like(0.3);
    s.seed = 0x10C;
    let coll = Arc::new(StoredCollection::generate(s, &dir).unwrap());
    let n = coll.num_files();
    let cfg = chaos_cfg();
    let baseline = build_index(&coll, &cfg).expect("fault-free congress build");
    let base_fp = fingerprint(&baseline);

    for (class, idx, at) in [
        (WorkerClass::Parser, 0, 1),
        (WorkerClass::Parser, 1, n / 2),
        (WorkerClass::CpuIndexer, 0, n / 2),
        (WorkerClass::CpuIndexer, 1, n - 1),
        (WorkerClass::GpuIndexer, 0, n / 2),
    ] {
        let mut c = cfg.clone();
        c.worker_faults = WorkerFaultPlan::none().kill(class, idx, at);
        let out = build_index(&coll, &c)
            .unwrap_or_else(|e| panic!("congress kill {class} {idx} at {at}: {e}"));
        assert_eq!(
            fingerprint(&out),
            base_fp,
            "congress index diverged after killing {class} {idx} at {at}"
        );
    }
    // And a stall-death on the GPU path.
    let mut c = cfg.clone();
    c.worker_faults =
        WorkerFaultPlan::none().stall(WorkerClass::GpuIndexer, 0, n / 2, Duration::from_secs(1));
    let out = build_index(&coll, &c).expect("stalled-GPU congress build");
    assert_eq!(fingerprint(&out), base_fp);
    assert!(out.report.supervision.gpu_takeovers >= 1);
    std::fs::remove_dir_all(dir).unwrap();
}
