//! Crash matrix: power-loss, torn-write, and bit-flip injection at every
//! storage-operation boundary of index persistence.
//!
//! The durability contract under test (DESIGN.md §8): after a crash at ANY
//! write/fsync/rename boundary, reopening the directory yields either the
//! last committed state, the fully committed new state (only when the
//! crash landed at or after the commit point), or a typed
//! [`StoreError`](ii_core::store::StoreError) — never a panic and never a
//! silently partial index. Bit flips are silent at write time and must be
//! caught by the manifest checksum pass at open.

use ii_core::corpus::{CollectionSpec, StoredCollection};
use ii_core::pipeline::{
    build_index_durable, DurableOptions, PipelineConfig, PipelineError,
};
use ii_core::store::{CrashMode, CrashVfs, Store};
use ii_core::{Index, IndexBuilder};
use std::collections::BTreeMap;
use std::path::{Path, PathBuf};
use std::sync::Arc;

fn scratch(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("ii-crash-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn spec(seed: u64, num_files: usize) -> CollectionSpec {
    CollectionSpec {
        name: format!("crash-{seed}"),
        num_files,
        docs_per_file: 8,
        mean_doc_tokens: 40,
        vocab_size: 500,
        zipf_s: 1.0,
        html: false,
        seed,
        shift: None,
    }
}

fn small_index(tag: &str, seed: u64) -> Index {
    let dir = scratch(&format!("coll-{tag}"));
    let coll = Arc::new(StoredCollection::generate(spec(seed, 2), &dir).unwrap());
    let idx = IndexBuilder::small().parsers(1).gpus(1).build(&coll).unwrap();
    std::fs::remove_dir_all(&dir).unwrap();
    idx
}

/// Term -> sorted (docID, tf) postings: what "the same index" means.
fn fingerprint(idx: &Index) -> BTreeMap<String, Vec<(u32, u32)>> {
    idx.dictionary
        .entries()
        .iter()
        .map(|e| {
            let l = idx.run_sets[&e.indexer].fetch(e.postings);
            (e.full_term(), l.postings().iter().map(|p| (p.doc.0, p.tf)).collect())
        })
        .collect()
}

const MODES: [CrashMode; 3] = [CrashMode::PowerLoss, CrashMode::TornWrite, CrashMode::BitFlip];

/// Crash at every op of a first-ever save: open afterwards must yield the
/// complete index (crash at/after the commit point) or a typed error —
/// never a partial run set.
#[test]
fn first_save_crash_matrix_never_loads_partial_state() {
    let idx = small_index("first", 101);
    let want = fingerprint(&idx);

    let probe = CrashVfs::probe();
    let pdir = scratch("first-probe");
    idx.save_with(&pdir, &probe).unwrap();
    let total = probe.ops();
    std::fs::remove_dir_all(&pdir).unwrap();
    assert!(total > 10, "expected a multi-op commit, got {total}");

    for mode in MODES {
        for k in 0..total {
            let dir = scratch("first-hit");
            let vfs = CrashVfs::new(k, mode, 0xC0FFEE ^ k);
            let saved = idx.save_with(&dir, &vfs);
            match Index::open(&dir) {
                Ok(loaded) => {
                    assert_eq!(
                        fingerprint(&loaded),
                        want,
                        "mode {mode:?} op {k}/{total}: open succeeded with WRONG contents"
                    );
                }
                Err(e) => {
                    // Typed refusal is the other legal outcome — but a save
                    // that claimed success must then be openable.
                    assert!(
                        saved.is_err() || mode == CrashMode::BitFlip,
                        "mode {mode:?} op {k}/{total}: save Ok but open failed: {e}"
                    );
                }
            }
            std::fs::remove_dir_all(&dir).unwrap();
        }
    }
}

/// Crash at every op of an overwriting save: the previously committed
/// index must survive every pre-commit-point crash.
#[test]
fn overwrite_crash_matrix_preserves_previous_index() {
    let old = small_index("over-old", 102);
    let new = small_index("over-new", 103);
    let (fp_old, fp_new) = (fingerprint(&old), fingerprint(&new));
    assert_ne!(fp_old, fp_new, "the two indexes must differ for this test to bite");

    let pdir = scratch("over-probe");
    old.save(&pdir).unwrap();
    let probe = CrashVfs::probe();
    new.save_with(&pdir, &probe).unwrap();
    let total = probe.ops();
    std::fs::remove_dir_all(&pdir).unwrap();

    for mode in MODES {
        for k in 0..total {
            let dir = scratch("over-hit");
            old.save(&dir).unwrap();
            let vfs = CrashVfs::new(k, mode, 0xDEAD ^ (k << 8));
            let _ = new.save_with(&dir, &vfs);
            match Index::open(&dir) {
                Ok(loaded) => {
                    let fp = fingerprint(&loaded);
                    if vfs.crashed() && mode != CrashMode::BitFlip && k + 1 < total {
                        // Strictly before the commit point the old manifest
                        // still rules the directory.
                        assert_eq!(
                            fp, fp_old,
                            "mode {mode:?} op {k}/{total}: pre-commit crash published new state"
                        );
                    } else {
                        assert!(
                            fp == fp_old || fp == fp_new,
                            "mode {mode:?} op {k}/{total}: opened a state that is neither"
                        );
                    }
                }
                Err(e) => {
                    // Power loss and torn writes never touch the committed
                    // generation's files, so the old index must stay
                    // openable; only a silent bit flip may corrupt the
                    // store into a typed checksum refusal.
                    assert_eq!(
                        mode,
                        CrashMode::BitFlip,
                        "mode {mode:?} op {k}/{total}: committed index lost: {e}"
                    );
                }
            }
            std::fs::remove_dir_all(&dir).unwrap();
        }
    }
}

fn durable_cfg() -> PipelineConfig {
    PipelineConfig::small(2, 1, 1)
}

/// Logical artifact name -> committed bytes, read through the manifest.
fn store_fingerprint(dir: &Path) -> BTreeMap<String, Vec<u8>> {
    let store = Store::open(dir).expect("committed store");
    store
        .manifest()
        .names()
        .map(|n| (n.to_string(), store.read(n).expect("verified artifact")))
        .collect()
}

/// Kill a checkpointing durable build at storage-op boundaries spread over
/// the whole build, resume each, and require the final committed index to
/// be byte-identical to an uninterrupted build's.
#[test]
fn killed_build_resumes_to_byte_identical_index() {
    let coll_dir = scratch("resume-coll");
    let coll = Arc::new(StoredCollection::generate(spec(104, 6), &coll_dir).unwrap());
    let cfg = durable_cfg();

    let base_dir = scratch("resume-base");
    let opts = DurableOptions::new(&base_dir).checkpoint_every(1);
    build_index_durable(&coll, &cfg, &opts).expect("uninterrupted durable build");
    let want = store_fingerprint(&base_dir);

    let probe_dir = scratch("resume-probe");
    let probe = CrashVfs::probe();
    let opts = DurableOptions::new(&probe_dir).checkpoint_every(1).with_vfs(&probe);
    build_index_durable(&coll, &cfg, &opts).expect("probe build");
    let total = probe.ops();
    std::fs::remove_dir_all(&probe_dir).unwrap();

    // Every op would be ~total builds; a stride keeps this test fast while
    // still covering first-checkpoint, mid-build, and final-commit crashes.
    let stride = (total / 24).max(1);
    let mut k = 0;
    while k < total {
        let dir = scratch("resume-hit");
        let crash = CrashVfs::new(k, CrashMode::PowerLoss, 0xBEEF ^ k);
        let opts = DurableOptions::new(&dir).checkpoint_every(1).with_vfs(&crash);
        assert!(
            build_index_durable(&coll, &cfg, &opts).is_err(),
            "op {k}/{total}: a power-loss crash must surface as a build error"
        );
        let opts = DurableOptions::new(&dir).checkpoint_every(1).resume(true);
        match build_index_durable(&coll, &cfg, &opts) {
            Ok(_) => {}
            // A crash at the final fsync lands after the commit point: the
            // index is already complete, and resume refuses to rebuild it.
            Err(PipelineError::Resume(why)) => {
                assert!(why.contains("completed"), "op {k}/{total}: {why}")
            }
            Err(e) => panic!("op {k}/{total}: resume failed: {e}"),
        }
        assert_eq!(
            store_fingerprint(&dir),
            want,
            "op {k}/{total}: resumed index differs from uninterrupted build"
        );
        std::fs::remove_dir_all(&dir).unwrap();
        k += stride;
    }
    std::fs::remove_dir_all(&coll_dir).unwrap();
}
