//! Cross-crate integration: full pipeline vs the independent baseline
//! implementations, configuration invariance, and persistence.

use ii_baselines::{ivory_index, spimi_index, MapReduceConfig};
use ii_core::corpus::{CollectionGenerator, CollectionSpec, StoredCollection};
use ii_core::{Index, IndexBuilder};
use std::sync::Arc;

fn spec() -> CollectionSpec {
    CollectionSpec {
        name: "integration".into(),
        num_files: 3,
        docs_per_file: 40,
        mean_doc_tokens: 120,
        vocab_size: 4000,
        zipf_s: 1.0,
        html: true,
        seed: 2024,
        shift: None,
    }
}

fn stored(tag: &str) -> (Arc<StoredCollection>, std::path::PathBuf) {
    let dir = std::env::temp_dir().join(format!("ii-it-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let s = StoredCollection::generate(spec(), &dir).unwrap();
    (Arc::new(s), dir)
}

#[test]
fn pipeline_agrees_with_ivory_baseline() {
    let (coll, dir) = stored("vs-ivory");
    let index = IndexBuilder::small().parsers(2).gpus(2).build(&coll).expect("build");

    // Independent reference: the Ivory MapReduce implementation over the
    // same documents (text processing shared, indexing path disjoint).
    let gen = CollectionGenerator::new(spec());
    let splits: Vec<Vec<ii_core::corpus::RawDocument>> =
        (0..spec().num_files).map(|f| gen.generate_file(f)).collect();
    let (reference, _) = ivory_index(&splits, true, MapReduceConfig::default());

    assert_eq!(index.num_terms(), reference.len(), "term counts differ");
    for (term, want) in &reference.postings {
        let got = index
            .postings_stemmed(term)
            .unwrap_or_else(|| panic!("pipeline missing term {term}"));
        assert_eq!(&got, want, "postings differ for {term}");
    }
    std::fs::remove_dir_all(dir).unwrap();
}

#[test]
fn pipeline_agrees_with_spimi_baseline() {
    let (coll, dir) = stored("vs-spimi");
    let index = IndexBuilder::small().parsers(3).cpu_indexers(2).gpus(0).build(&coll).expect("build");
    let gen = CollectionGenerator::new(spec());
    let flat: Vec<ii_core::corpus::RawDocument> =
        (0..spec().num_files).flat_map(|f| gen.generate_file(f)).collect();
    // Tiny memory budget: force many SPIMI runs.
    let (reference, stats) = spimi_index(&flat, true, 500);
    assert!(stats.runs > 3);
    assert_eq!(index.num_terms(), reference.len());
    for (term, want) in &reference.postings {
        assert_eq!(index.postings_stemmed(term).as_ref(), Some(want), "term {term}");
    }
    std::fs::remove_dir_all(dir).unwrap();
}

#[test]
fn every_configuration_builds_the_same_index() {
    let (coll, dir) = stored("configs");
    let fingerprint = |idx: &Index| -> Vec<(String, Vec<(u32, u32)>)> {
        let mut v: Vec<(String, Vec<(u32, u32)>)> = idx
            .dictionary
            .entries()
            .iter()
            .map(|e| {
                let l = idx.run_sets[&e.indexer].fetch(e.postings);
                (e.full_term(), l.postings().iter().map(|p| (p.doc.0, p.tf)).collect())
            })
            .collect();
        v.sort();
        v
    };
    let base = fingerprint(
        &IndexBuilder::small().parsers(1).cpu_indexers(1).gpus(0).build(&coll).expect("build"),
    );
    for (p, c, g) in [(4usize, 1usize, 0usize), (2, 2, 1), (1, 0, 2), (3, 1, 2)] {
        let idx = IndexBuilder::small().parsers(p).cpu_indexers(c).gpus(g).build(&coll).expect("build");
        assert_eq!(fingerprint(&idx), base, "config ({p},{c},{g}) diverged");
    }
    std::fs::remove_dir_all(dir).unwrap();
}

#[test]
fn batches_per_run_does_not_change_results() {
    let (coll, dir) = stored("runs");
    let one = IndexBuilder::small().batches_per_run(1).build(&coll).expect("build");
    let all = IndexBuilder::small().batches_per_run(99).build(&coll).expect("build");
    assert_eq!(one.num_terms(), all.num_terms());
    let probe: Vec<String> = one
        .dictionary
        .entries()
        .iter()
        .step_by(97)
        .map(|e| e.full_term())
        .collect();
    for term in probe {
        assert_eq!(one.postings_stemmed(&term), all.postings_stemmed(&term), "{term}");
    }
    // Many runs vs one run per indexer.
    let runs_one: usize = one.run_sets.values().map(|s| s.runs().len()).sum();
    let runs_all: usize = all.run_sets.values().map(|s| s.runs().len()).sum();
    assert!(runs_one > runs_all);
    std::fs::remove_dir_all(dir).unwrap();
}

#[test]
fn save_open_search_roundtrip() {
    let (coll, dir) = stored("persist");
    let built = IndexBuilder::small().build(&coll).expect("build");
    let out = std::env::temp_dir().join(format!("ii-it-persist-idx-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&out);
    built.save(&out).unwrap();
    let loaded = Index::open(&out).unwrap();
    assert_eq!(loaded.num_terms(), built.num_terms());
    // Queries agree between the in-memory and reloaded index.
    for q in ["information", "search engine", "music video"] {
        assert_eq!(built.search(q), loaded.search(q), "query {q}");
    }
    // The §III.F docID -> file auxiliary map survives persistence: 3 files
    // x 40 docs each.
    for (doc, want_file) in [(0u32, 0u32), (39, 0), (40, 1), (80, 2), (119, 2)] {
        assert_eq!(built.source_file(ii_core::corpus::DocId(doc)), Some(want_file));
        assert_eq!(loaded.source_file(ii_core::corpus::DocId(doc)), Some(want_file));
    }
    assert_eq!(loaded.source_file(ii_core::corpus::DocId(120)), None);
    std::fs::remove_dir_all(dir).unwrap();
    std::fs::remove_dir_all(out).unwrap();
}
