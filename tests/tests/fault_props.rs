//! Property tests for the ingest decoders under corruption.
//!
//! The fault-tolerance contract of the decode path is twofold: on *any*
//! input, `decompress` and `parse_container` return a typed error rather
//! than panicking (or allocating absurdly); and whenever a corrupted
//! container still parses, the documents are identical to the originals —
//! corruption is either detected or provably harmless, never silent.

use ii_core::corpus::{compress, container, RawDocument};
use proptest::prelude::*;

fn docs_strategy() -> impl Strategy<Value = Vec<RawDocument>> {
    proptest::collection::vec(
        ("[a-z:/._]{0,30}", "[a-zA-Z0-9 .,]{0,120}")
            .prop_map(|(url, body)| RawDocument { url, body }),
        0..8,
    )
}

proptest! {
    /// `parse_container` is total: arbitrary bytes produce Ok or a typed
    /// error, never a panic.
    #[test]
    fn parse_container_never_panics(bytes in proptest::collection::vec(any::<u8>(), 0..2048)) {
        let _ = container::parse_container(&bytes);
    }

    /// `decompress` is total on arbitrary bytes — including absurd length
    /// headers, which must be rejected before allocation.
    #[test]
    fn decompress_never_panics(bytes in proptest::collection::vec(any::<u8>(), 0..2048)) {
        if let Ok(out) = compress::decompress(&bytes) {
            // The expansion bound that guards the allocation.
            prop_assert!(out.len() <= bytes.len().saturating_mul(18));
        }
    }

    /// Flipping any single byte of a checksummed container is either
    /// detected or harmless: a successful parse returns the original docs.
    #[test]
    fn container_byte_flip_is_detected_or_harmless(
        docs in docs_strategy(),
        idx in any::<prop::sample::Index>(),
        mask in 1u8..,
    ) {
        let mut buf = container::write_container(&docs);
        let i = idx.index(buf.len());
        buf[i] ^= mask;
        if let Ok(parsed) = container::parse_container(&buf) {
            prop_assert_eq!(parsed, docs, "silent corruption at byte {}", i);
        }
    }

    /// Every proper prefix of a non-empty compressed stream is an error —
    /// truncation can never be mistaken for a complete file.
    #[test]
    fn compressed_truncation_always_detected(
        data in proptest::collection::vec(any::<u8>(), 1..512),
        cut in any::<prop::sample::Index>(),
    ) {
        let c = compress::compress(&data);
        let cut = cut.index(c.len());
        prop_assert!(compress::decompress(&c[..cut]).is_err(), "prefix {} of {}", cut, c.len());
    }

    /// Corrupting the *compressed* bytes of a container never panics either
    /// decoder, and if the full decode chain still succeeds, the documents
    /// are unchanged (the CRC footer catches what LZSS cannot).
    #[test]
    fn compressed_byte_flip_never_panics_decode_chain(
        docs in docs_strategy(),
        idx in any::<prop::sample::Index>(),
        mask in 1u8..,
    ) {
        let packed = compress::compress(&container::write_container(&docs));
        let mut bad = packed;
        let i = idx.index(bad.len());
        bad[i] ^= mask;
        if let Ok(bytes) = compress::decompress(&bad) {
            if let Ok(parsed) = container::parse_container(&bytes) {
                prop_assert_eq!(parsed, docs, "silent corruption via compressed byte {}", i);
            }
        }
    }
}
