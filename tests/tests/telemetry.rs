//! Telemetry integration suite.
//!
//! Two surfaces under test. (1) The OpenMetrics exposition: whatever
//! metric names and values land in a registry — including names that need
//! label escaping — the rendered text must pass the in-tree lint, parse
//! back with exact values, and keep cumulative `le` buckets monotone with
//! `+Inf` equal to the count. (2) Post-mortem bundles: two identically
//! seeded kill-injection builds must produce byte-identical `event`
//! sections (the `telemetry` section holds wall-clock figures and is
//! timing-dependent by design), and the rendered report must attribute
//! the death exactly as the `SupervisionReport` records it.

use ii_core::corpus::{CollectionSpec, StoredCollection};
use ii_core::obs::json::parse_json;
use ii_core::obs::{openmetrics, Registry};
use ii_core::pipeline::{
    build_index, render_bundle_report, PipelineConfig, SupervisorPolicy, WorkerClass,
    WorkerFaultPlan,
};
use proptest::prelude::*;
use std::path::PathBuf;
use std::sync::Arc;

fn name_strategy() -> impl Strategy<Value = String> {
    // Metric names become label *values* in the exposition; mix ordinary
    // dotted names with every character the escaper must handle (quote,
    // backslash, newline).
    "[a-z.\"\\\\\n-]{1,19}"
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn exposition_lints_parses_and_round_trips(
        // Counter values stay under 2^53 so the f64 the parser yields is
        // exact.
        counter_list in proptest::collection::vec((name_strategy(), 0u64..(1 << 53)), 0..6),
        gauge_list in proptest::collection::vec(
            // The vendored proptest only implements `Strategy` for unsigned
            // ranges; recentre to cover negative gauge values.
            (name_strategy(), (0u64..2_000_000).prop_map(|v| v as i64 - 1_000_000)),
            0..6,
        ),
        observations in proptest::collection::vec(0u64..u64::MAX, 0..40),
    ) {
        // Last write wins on duplicate names, matching registry interning.
        let counters: std::collections::BTreeMap<String, u64> = counter_list.into_iter().collect();
        let gauges: std::collections::BTreeMap<String, i64> = gauge_list.into_iter().collect();
        let registry = Registry::new();
        for (name, v) in &counters {
            registry.counter(name).add(*v);
        }
        for (name, v) in &gauges {
            registry.gauge(name).set(*v);
        }
        let h = registry.histogram("latency.ns");
        for v in &observations {
            h.record_ns(*v);
        }
        let snap = registry.snapshot();
        let text = openmetrics::render(&snap);
        let lint = openmetrics::lint(&text);
        prop_assert!(lint.is_ok(), "lint failed: {:?}\n{text}", lint.err());
        let points = openmetrics::parse(&text).unwrap();
        // Label escaping round-trips every name with its exact value.
        for (name, v) in &counters {
            let p = points
                .iter()
                .find(|p| p.name == "ii_counter_total" && p.label("name") == Some(name.as_str()));
            prop_assert!(p.is_some(), "counter {name:?} missing from exposition");
            prop_assert_eq!(p.unwrap().value, *v as f64);
        }
        for (name, v) in &gauges {
            let p = points
                .iter()
                .find(|p| p.name == "ii_gauge" && p.label("name") == Some(name.as_str()));
            prop_assert!(p.is_some(), "gauge {name:?} missing from exposition");
            prop_assert_eq!(p.unwrap().value, *v as f64);
        }
        // Cumulative `le` buckets: monotone nondecreasing, `+Inf` == count.
        let buckets: Vec<f64> = points
            .iter()
            .filter(|p| {
                p.name == "ii_histogram_ns_bucket" && p.label("name") == Some("latency.ns")
            })
            .map(|p| p.value)
            .collect();
        if !observations.is_empty() {
            prop_assert!(!buckets.is_empty());
            prop_assert!(buckets.windows(2).all(|w| w[0] <= w[1]), "buckets not monotone: {buckets:?}");
            prop_assert_eq!(*buckets.last().unwrap(), observations.len() as f64);
        }
        // The JSON snapshot parses with the in-tree reader (the format the
        // bundle embeds).
        prop_assert!(parse_json(&snap.to_json()).is_ok());
    }
}

fn spec(num_files: usize) -> CollectionSpec {
    CollectionSpec {
        name: "telemetry".into(),
        num_files,
        docs_per_file: 10,
        mean_doc_tokens: 50,
        vocab_size: 600,
        zipf_s: 1.0,
        html: false,
        seed: 9142,
        shift: None,
    }
}

fn stored(tag: &str, num_files: usize) -> (Arc<StoredCollection>, PathBuf) {
    let dir = std::env::temp_dir().join(format!("ii-telemetry-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let s = StoredCollection::generate(spec(num_files), &dir).unwrap();
    (Arc::new(s), dir)
}

/// A build that loses its GPU to a seeded kill at batch 1 and writes
/// bundles into `pm_dir`.
fn kill_cfg(pm_dir: &std::path::Path) -> PipelineConfig {
    let mut cfg = PipelineConfig::small(2, 1, 1);
    cfg.supervision = SupervisorPolicy::default();
    cfg.worker_faults = WorkerFaultPlan::none().kill(WorkerClass::GpuIndexer, 0, 1);
    cfg.telemetry.postmortem_dir = Some(pm_dir.to_path_buf());
    cfg
}

/// The deterministic prefix of a bundle: everything before the
/// `"telemetry"` section (which holds wall-clock samples).
fn event_section(bundle: &str) -> &str {
    let cut = bundle.find("\"telemetry\"").expect("bundle has a telemetry section");
    &bundle[..cut]
}

#[test]
fn seeded_kill_bundles_have_byte_identical_event_sections() {
    let (coll, _dir) = stored("determinism", 6);
    let run = |tag: &str| {
        let pm = std::env::temp_dir()
            .join(format!("ii-telemetry-pm-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&pm);
        let out = build_index(&coll, &kill_cfg(&pm)).expect("degraded build completes");
        assert_eq!(out.report.supervision.deaths.len(), 1, "exactly the injected death");
        assert_eq!(
            out.report.postmortem_bundles.len(),
            1,
            "one bundle for the one failure event"
        );
        let text = std::fs::read_to_string(&out.report.postmortem_bundles[0]).unwrap();
        let deaths: Vec<String> =
            out.report.supervision.deaths.iter().map(|d| d.to_string()).collect();
        let _ = std::fs::remove_dir_all(&pm);
        (text, deaths)
    };
    let (a, deaths_a) = run("a");
    let (b, deaths_b) = run("b");
    assert_eq!(deaths_a, deaths_b, "supervision ledger is deterministic");
    assert_eq!(
        event_section(&a),
        event_section(&b),
        "event sections of identically-seeded kill builds must be byte-identical"
    );
}

#[test]
fn bundle_report_attribution_matches_the_supervision_report() {
    let (coll, _dir) = stored("attribution", 6);
    let pm = std::env::temp_dir().join(format!("ii-telemetry-pm-attr-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&pm);
    let out = build_index(&coll, &kill_cfg(&pm)).expect("degraded build completes");
    let text = std::fs::read_to_string(&out.report.postmortem_bundles[0]).unwrap();

    // The bundle's deaths array mirrors the SupervisionReport entry for
    // entry (class, index, cause strings).
    let v = parse_json(&text).expect("bundle is valid JSON");
    let deaths = v
        .get("event")
        .and_then(|e| e.get("deaths"))
        .and_then(|d| d.as_arr())
        .expect("bundle has a deaths array");
    assert_eq!(deaths.len(), out.report.supervision.deaths.len());
    for (j, d) in deaths.iter().zip(&out.report.supervision.deaths) {
        assert_eq!(j.get("class").and_then(|x| x.as_str()), Some(d.class.to_string().as_str()));
        assert_eq!(j.get("index").and_then(|x| x.as_u64()), Some(d.index as u64));
        assert_eq!(j.get("cause").and_then(|x| x.as_str()), Some(d.cause.to_string().as_str()));
    }

    // The rendered report (the `ii postmortem` surface) attributes the
    // cause in the supervisor's own words and carries a timeline.
    let report = render_bundle_report(&text).expect("bundle renders");
    assert!(report.contains("trigger: worker-death"), "{report}");
    for d in &out.report.supervision.deaths {
        assert!(report.contains(&d.to_string()), "missing {d} in:\n{report}");
    }
    assert!(report.contains("flight recorder:"), "{report}");
    assert!(report.contains("timeline"), "{report}");
    let _ = std::fs::remove_dir_all(&pm);
}

#[test]
fn healthy_builds_write_no_bundles() {
    let (coll, _dir) = stored("healthy", 3);
    let pm = std::env::temp_dir().join(format!("ii-telemetry-pm-clean-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&pm);
    let mut cfg = PipelineConfig::small(2, 1, 1);
    cfg.telemetry.postmortem_dir = Some(pm.clone());
    let out = build_index(&coll, &cfg).expect("clean build");
    assert!(out.report.supervision.is_clean());
    assert!(out.report.postmortem_bundles.is_empty());
    assert!(!pm.exists(), "no bundle dir is created for a healthy build");
}
