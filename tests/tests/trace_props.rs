//! Property tests for the event tracer: arbitrary multi-threaded span
//! workloads pushed through the real `Tracer` must come out the other
//! side well-formed — per-worker events sorted and non-overlapping,
//! every span inside its worker's lifetime, the Chrome JSON export
//! parsing back to an identical trace, and the derived report's stall
//! attribution summing to wall time.

use ii_core::obs::trace::ALL_KINDS;
use ii_core::obs::{TraceReport, Tracer};
use proptest::prelude::*;

/// One worker's scripted workload: a span list of (kind index, payload
/// bytes, spin iterations). The first span is forced onto a work kind so
/// the report's per-worker busy-time invariant (`busy > 0`) holds.
fn workload_strategy() -> impl Strategy<Value = Vec<Vec<(usize, u64, u32)>>> {
    let span = (0..ALL_KINDS.len(), 0u64..1_000_000, 0u32..200);
    let worker = proptest::collection::vec(span, 1..12).prop_map(|mut spans| {
        spans[0].0 %= 9; // indices 0..9 are work kinds, 9..12 are stalls
        spans
    });
    proptest::collection::vec(worker, 1..5)
}

/// Run a scripted workload through a real tracer, one thread per worker.
fn record(workloads: &[Vec<(usize, u64, u32)>], capacity: usize) -> ii_core::obs::Trace {
    let tracer = Tracer::new(capacity);
    // Register sinks before spawning so worker order is deterministic.
    let sinks: Vec<_> =
        (0..workloads.len()).map(|w| tracer.sink(&format!("worker-{w}"))).collect();
    std::thread::scope(|scope| {
        for (sink, spans) in sinks.into_iter().zip(workloads) {
            scope.spawn(move || {
                for (batch, &(kind, bytes, spin)) in spans.iter().enumerate() {
                    let mut s = sink.span(ALL_KINDS[kind]);
                    s.set_batch(batch as u32);
                    s.add_bytes(bytes);
                    for _ in 0..spin {
                        std::hint::black_box(batch);
                    }
                }
            });
        }
    });
    tracer.finish().expect("enabled tracer yields a trace")
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Whatever the workload, the merged trace satisfies its invariants:
    /// sorted per-worker events, no overlap between spans on one worker,
    /// every span within the worker's lifetime window.
    #[test]
    fn recorded_traces_are_well_formed(workloads in workload_strategy()) {
        let trace = record(&workloads, 4096);
        prop_assert!(trace.validate().is_ok(), "{:?}", trace.validate());
        prop_assert_eq!(trace.workers.len(), workloads.len());
        for (w, spans) in trace.workers.iter().zip(&workloads) {
            prop_assert_eq!(w.events.len(), spans.len());
            prop_assert_eq!(w.dropped, 0);
        }
    }

    /// The Chrome JSON export round-trips exactly: every timestamp,
    /// payload and counter sample is preserved at nanosecond precision.
    #[test]
    fn chrome_export_round_trips(workloads in workload_strategy()) {
        let trace = record(&workloads, 4096);
        let json = trace.to_chrome_json();
        let back = ii_core::obs::Trace::from_chrome_json(&json)
            .expect("exported trace parses back");
        prop_assert_eq!(&back, &trace);
    }

    /// Stall attribution is an exact partition: busy + stall + idle equals
    /// wall on every worker, and the report's own consistency check holds.
    #[test]
    fn report_attribution_sums_to_wall(workloads in workload_strategy()) {
        let trace = record(&workloads, 4096);
        let report = TraceReport::from_trace(&trace);
        prop_assert!(report.check(&trace).is_ok(), "{:?}", report.check(&trace));
        for w in &report.workers {
            prop_assert_eq!(w.busy_ns + w.stall_ns + w.idle_ns, w.wall_ns);
        }
    }

    /// A deliberately tiny ring (16 events, the tracer's floor) still
    /// yields a valid trace: the newest spans survive, the overwritten
    /// ones are counted, and the kept events remain sorted and
    /// non-overlapping.
    #[test]
    fn tiny_rings_drop_oldest_but_stay_valid(
        lens in proptest::collection::vec(1usize..48, 1..4),
    ) {
        const CAP: usize = 16;
        let workloads: Vec<Vec<(usize, u64, u32)>> = lens
            .iter()
            .map(|&n| (0..n).map(|i| (i % 9, i as u64 * 10, 0u32)).collect())
            .collect();
        let trace = record(&workloads, CAP);
        prop_assert!(trace.validate().is_ok(), "{:?}", trace.validate());
        for (w, spans) in trace.workers.iter().zip(&workloads) {
            let kept = spans.len().min(CAP);
            prop_assert_eq!(w.events.len(), kept);
            prop_assert_eq!(w.dropped, (spans.len() - kept) as u64);
            // The ring keeps the *newest* spans: batch ids form the tail.
            let first_kept = (spans.len() - kept) as u32;
            for (i, e) in w.events.iter().enumerate() {
                prop_assert_eq!(e.batch_id, first_kept + i as u32);
            }
        }
        prop_assert_eq!(
            trace.dropped,
            workloads.iter().map(|s| s.len().saturating_sub(CAP) as u64).sum::<u64>()
        );
    }
}
