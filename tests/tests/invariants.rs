//! Property-based integration tests over the whole stack: arbitrary
//! document sets must produce consistent indexes through every path.

use ii_baselines::{index_with_regrouping, index_without_regrouping};
use ii_core::corpus::{DocId, RawDocument};
use ii_core::indexer::{CpuIndexer, GpuIndexer, GpuIndexerConfig};
use ii_core::postings::Codec;
use ii_core::text::parse_documents;
use proptest::prelude::*;

fn docs_strategy() -> impl Strategy<Value = Vec<RawDocument>> {
    proptest::collection::vec(
        "[a-z0-9 .,\\-]{0,160}".prop_map(|body| RawDocument { url: String::new(), body }),
        1..12,
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// The GPU kernel and the CPU indexer are interchangeable: identical
    /// dictionaries and postings for arbitrary inputs.
    #[test]
    fn gpu_equals_cpu_on_arbitrary_docs(docs in docs_strategy()) {
        let batch = parse_documents(&docs, false, 0);
        let mut cpu = CpuIndexer::new(0);
        let mut gpu = GpuIndexer::new(0, GpuIndexerConfig::small());
        for g in &batch.groups {
            cpu.index_group(g, 0);
        }
        let groups: Vec<&ii_core::text::TrieGroup> = batch.groups.iter().collect();
        gpu.index_batch(&groups, 0);
        prop_assert_eq!(cpu.stats, gpu.stats);
        // The downloaded GPU dictionary must satisfy every CLRS B-tree
        // structural invariant, not merely answer lookups correctly.
        let gdict = gpu.into_partial_dictionary();
        let bad = ii_core::dict::verify_shard(&gdict);
        prop_assert!(bad.is_empty(), "GPU trees violate invariants: {bad:?}");
        let cbad = ii_core::dict::verify_shard(&cpu.dict);
        prop_assert!(cbad.is_empty(), "CPU trees violate invariants: {cbad:?}");
        let cpu_run = cpu.flush_run(0, Codec::VarByte);
        let gpu_run = gpu.flush_run(0, Codec::VarByte);
        prop_assert_eq!(cpu_run.entries.len(), gpu_run.entries.len());
        for e in &cpu_run.entries {
            prop_assert_eq!(
                cpu_run.get(e.handle),
                gpu_run.get(e.handle),
                "handle {}", e.handle
            );
        }
    }

    /// Regrouped and raw-order serial indexing agree on arbitrary inputs.
    #[test]
    fn regrouping_is_order_invariant(docs in docs_strategy()) {
        let a = index_without_regrouping(&docs, false);
        let b = index_with_regrouping(&docs, false);
        prop_assert_eq!(a.tokens, b.tokens);
        let da = ii_core::dict::GlobalDictionary::combine(&[a.dict]);
        let db = ii_core::dict::GlobalDictionary::combine(&[b.dict]);
        let ta: Vec<String> = da.entries().iter().map(|e| e.full_term()).collect();
        let tb: Vec<String> = db.entries().iter().map(|e| e.full_term()).collect();
        prop_assert_eq!(ta, tb);
    }

    /// Postings doc IDs are strictly increasing through encode/decode and
    /// run-set concatenation, for any batch split.
    #[test]
    fn postings_stay_sorted_across_runs(
        docs in docs_strategy(),
        chunk_size in 1usize..8,
    ) {
        let mut cpu = CpuIndexer::new(0);
        let mut set = ii_core::postings::RunSet::new();
        let mut offset = 0u32;
        for (i, chunk) in docs.chunks(chunk_size.max(1)).enumerate() {
            let batch = parse_documents(chunk, false, i);
            for g in &batch.groups {
                cpu.index_group(g, offset);
            }
            offset += batch.num_docs;
            set.push(cpu.flush_run(i as u32, Codec::VarByte));
        }
        for handle in 0..cpu.dict.term_count() {
            let list = set.fetch(handle);
            let ids: Vec<u32> = list.postings().iter().map(|p| p.doc.0).collect();
            prop_assert!(ids.windows(2).all(|w| w[0] < w[1]), "handle {handle}: {ids:?}");
            // Range fetch equals filtering the full fetch.
            if let (Some(&lo), Some(&hi)) = (ids.first(), ids.last()) {
                let mid_lo = DocId(lo + (hi - lo) / 4);
                let mid_hi = DocId(lo + (hi - lo) / 2);
                let (ranged, _) = set.fetch_range(handle, mid_lo, mid_hi);
                let want: Vec<_> = list
                    .postings()
                    .iter()
                    .copied()
                    .filter(|p| p.doc >= mid_lo && p.doc <= mid_hi)
                    .collect();
                prop_assert_eq!(ranged, want);
            }
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Worker death mid-build must leave every surviving shard a
    /// structurally sound slotted B-tree: slot order == key order, head
    /// consistency, sentinel discipline in unused slots, CLRS fill
    /// bounds. `verify_shard` checks all of these (plus the legacy-view
    /// invariants) per tree.
    #[test]
    fn shards_stay_structurally_sound_after_kills(
        docs in docs_strategy(),
        kill_after in 0usize..3,
    ) {
        use ii_core::indexer::{make_plan, sample_counts, IndexerPool};

        let batches: Vec<_> = docs
            .chunks(docs.len().div_ceil(3).max(1))
            .enumerate()
            .map(|(i, chunk)| parse_documents(chunk, false, i))
            .collect();
        let counts = sample_counts(std::slice::from_ref(&batches[0]));
        let plan = make_plan(&counts, 2, 1, 2);
        let mut pool = IndexerPool::new(plan, GpuIndexerConfig::small(), Codec::VarByte);
        for (i, b) in batches.iter().enumerate() {
            if i == kill_after {
                pool.kill_gpu(0);
                pool.kill_cpu(0);
            }
            pool.index_batch(b);
        }
        pool.flush_run();
        for part in pool.finish() {
            let bad = ii_core::dict::verify_shard(&part);
            prop_assert!(
                bad.is_empty(),
                "shard {} violates B-tree invariants after kills: {bad:?}",
                part.indexer_id
            );
        }
    }
}

#[test]
fn dictionary_entries_sorted_and_unique() {
    let docs: Vec<RawDocument> = (0..30)
        .map(|i| RawDocument {
            url: String::new(),
            body: format!("term{i} shared zebra quilt term{}", i % 7),
        })
        .collect();
    let batch = parse_documents(&docs, false, 0);
    let mut cpu = CpuIndexer::new(0);
    for g in &batch.groups {
        cpu.index_group(g, 0);
    }
    let dict = ii_core::dict::GlobalDictionary::combine(&[cpu.dict]);
    let keys: Vec<(u32, Vec<u8>)> =
        dict.entries().iter().map(|e| (e.trie_index, e.suffix.clone())).collect();
    for w in keys.windows(2) {
        assert!(w[0] < w[1], "entries must be strictly sorted: {w:?}");
    }
}
